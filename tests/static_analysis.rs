//! Tier-1 gate: the workspace must carry zero error-severity
//! `plugvolt-lint` findings.
//!
//! This is the test-suite embedding of the same scan `ci.sh` runs via
//! `cargo run -p plugvolt-analysis --bin plugvolt-lint -- --workspace`:
//! no wall-clock reads or ambient RNG in simulation crates, no unordered
//! iteration in result modules, and no raw `0x150`/`0x198` MSR literals
//! outside the `crates/msr` choke point (the software analogue of the
//! paper's Sec. 5 clamp).

use plugvolt_analysis::{human_report, scan_workspace, ScanOptions, Severity};
use std::path::Path;

fn scan() -> plugvolt_analysis::runner::ScanResult {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    scan_workspace(root, &ScanOptions::default()).expect("workspace sources are readable")
}

#[test]
fn workspace_has_zero_error_findings() {
    let result = scan();
    assert!(
        result.passes_gate(),
        "plugvolt-lint gate failed:\n{}",
        human_report(&result)
    );
}

#[test]
fn scan_covers_the_whole_workspace() {
    let result = scan();
    // All crates plus shims, tests and benches; a collapse of this
    // number means the walker broke, not that code disappeared.
    assert!(
        result.files_scanned >= 80,
        "only {} files scanned",
        result.files_scanned
    );
}

#[test]
fn warnings_stay_bounded() {
    // Warnings don't gate, but they must not silently pile up. Raising
    // this bound is a deliberate act with a paper trail, like a snapshot
    // update. (Current tree: 0 — the historical `panic!` sites and the
    // two sanctioned out-of-Scenario machine constructions — the sweep
    // shards and the workloads overhead harness — all carry justified
    // suppressions.)
    let result = scan();
    let warnings = result.count(Severity::Warning);
    assert!(
        warnings <= 4,
        "warning count crept up to {warnings}:\n{}",
        human_report(&result)
    );
}
