//! Tier-1 gate: every error-severity `plugvolt-lint` finding in the
//! workspace must be covered by the committed baseline ratchet.
//!
//! This is the test-suite embedding of the same scan `ci.sh` runs via
//! `cargo run -p plugvolt-analysis --bin plugvolt-lint -- --workspace
//! --baseline results/lint-baseline.json`: no wall-clock reads or
//! ambient RNG in simulation crates, no unordered iteration in result
//! modules, no raw `0x150`/`0x198` MSR literals or call-graph-reachable
//! direct MSR accesses outside the `crates/msr` choke point (the
//! software analogue of the paper's Sec. 5 clamp), deterministic
//! parallel merges, a pinned telemetry key schema, and transcendentals
//! off the characterization hot paths.
//!
//! The baseline only shrinks: a new error finding fails, and so does a
//! stale baseline entry whose finding has been fixed.

use plugvolt_analysis::{baseline, human_report, scan_workspace, ScanOptions, Severity};
use std::path::Path;

fn scan() -> plugvolt_analysis::runner::ScanResult {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    scan_workspace(root, &ScanOptions::default()).expect("workspace sources are readable")
}

fn baseline_entries() -> Vec<plugvolt_analysis::BaselineEntry> {
    let text = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("results/lint-baseline.json"),
    )
    .expect("results/lint-baseline.json is committed");
    baseline::parse(&text).expect("baseline parses")
}

#[test]
fn error_findings_match_the_baseline_ratchet() {
    let result = scan();
    let diff = baseline::diff(&result.findings, &baseline_entries());
    assert!(
        diff.passes(),
        "lint baseline ratchet failed — {} new error finding(s), {} stale entr(y/ies):\n\
         new: {:#?}\nstale: {:#?}\nfull report:\n{}",
        diff.new.len(),
        diff.stale.len(),
        diff.new,
        diff.stale,
        human_report(&result)
    );
}

#[test]
fn baseline_entries_are_justified() {
    // The ratchet is a paper trail, not a dumping ground: every entry
    // carries a real justification, and the file stays small enough to
    // review by hand.
    let entries = baseline_entries();
    assert!(
        entries.len() <= 8,
        "baseline grew to {} entries",
        entries.len()
    );
    for e in &entries {
        assert!(
            !e.justification.trim().is_empty() && !e.justification.contains("TODO"),
            "baseline entry [{}] {} `{}` lacks a real justification",
            e.rule,
            e.path,
            e.snippet
        );
    }
}

#[test]
fn workspace_halves_of_rules_4_and_8_superset_the_per_file_heuristics() {
    // Rules 4 and 8 each have a per-file heuristic half and a call-graph
    // workspace half sharing one rule id. The re-grounding contract:
    // every unsuppressed finding the old heuristics produce on the real
    // tree must also appear in the merged scan — the workspace halves
    // only ever add detection, never lose it.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();
    collect_rs(root, root, &mut files);
    let rules = plugvolt_analysis::registry();
    let mut per_file = Vec::new();
    for path in &files {
        let text = std::fs::read_to_string(path).expect("readable");
        let rel = path
            .strip_prefix(root)
            .expect("under root")
            .to_string_lossy()
            .replace('\\', "/");
        let sf = plugvolt_analysis::SourceFile::new(&rel, &text);
        let mut found = Vec::new();
        for rule in &rules {
            let id = rule.meta().id;
            if id == "msr-write-discipline" || id == "hot-path-transcendentals" {
                rule.check(&sf, &mut found);
            }
        }
        found.retain(|f| !sf.is_suppressed(f.rule, f.line));
        per_file.extend(found);
    }
    let merged = scan();
    for f in &per_file {
        assert!(
            merged
                .findings
                .iter()
                .any(|m| m.rule == f.rule && m.path == f.path && m.line == f.line),
            "per-file finding lost in the merged scan: {f:?}"
        );
    }
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<std::path::PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !matches!(name.as_ref(), "target" | ".git" | "fixtures" | "results") {
                collect_rs(root, &path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

#[test]
fn scan_covers_the_whole_workspace() {
    let result = scan();
    // All crates plus shims, tests and benches; a collapse of this
    // number means the walker broke, not that code disappeared.
    assert!(
        result.files_scanned >= 80,
        "only {} files scanned",
        result.files_scanned
    );
}

#[test]
fn warnings_stay_bounded() {
    // Warnings don't gate, but they must not silently pile up. Raising
    // this bound is a deliberate act with a paper trail, like a snapshot
    // update. (Current tree: 0 — the historical `panic!` sites and the
    // two sanctioned out-of-Scenario machine constructions — the sweep
    // shards and the workloads overhead harness — all carry justified
    // suppressions.)
    let result = scan();
    let warnings = result.count(Severity::Warning);
    assert!(
        warnings <= 4,
        "warning count crept up to {warnings}:\n{}",
        human_report(&result)
    );
}
