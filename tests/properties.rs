//! Property-based tests (proptest) over the core invariants of the
//! reproduction: MSR codecs, characterization-map classification,
//! timing physics, the fault sampler and the VR.

use proptest::prelude::*;

use plugvolt::charmap::{CharacterizationMap, FreqBand};
use plugvolt::state::StateClass;
use plugvolt_circuit::delay::{AlphaPowerModel, DelayModel};
use plugvolt_circuit::fault::{sample_binomial, sample_flip_mask, FaultModel};
use plugvolt_circuit::multiplier::MultiplierUnit;
use plugvolt_circuit::netlist::{array_multiplier, ripple_carry_adder};
use plugvolt_circuit::timing::TimingBudget;
use plugvolt_cpu::energy::EnergyModel;
use plugvolt_cpu::exec::{InstrClass, Rails};
use plugvolt_cpu::freq::{FreqMhz, FreqTable};
use plugvolt_cpu::microcode::MicrocodeUpdate;
use plugvolt_cpu::model::CpuModel;
use plugvolt_cpu::ucode_blob::UpdateBlob;
use plugvolt_cpu::vr::VoltageRegulator;
use plugvolt_des::rng::SimRng;
use plugvolt_des::time::{SimDuration, SimTime};
use plugvolt_msr::oc_mailbox::{encode_offset_request, OcRequest, Plane};
use plugvolt_msr::offset_limit::VoltageOffsetLimit;
use plugvolt_msr::perf_status::PerfStatus;

proptest! {
    // ---------- MSR codecs ----------

    #[test]
    fn mailbox_roundtrip_quantizes_within_1mv(
        offset in -1000i32..=999,
        plane_idx in 0u8..5,
    ) {
        let plane = Plane::from_index(plane_idx).unwrap();
        let req = OcRequest::write_offset(offset, plane);
        let back = OcRequest::decode(req.encode()).unwrap();
        prop_assert_eq!(back.plane(), plane);
        prop_assert!(back.is_write());
        prop_assert!((back.offset_mv() - offset).abs() <= 1,
            "offset {} decoded {}", offset, back.offset_mv());
        // Truncation in Algorithm 1 never deepens an undervolt.
        if offset < 0 {
            prop_assert!(back.offset_mv() >= offset);
        }
    }

    #[test]
    fn mailbox_matches_paper_algorithm1(offset in -999i32..=999, plane in 0u8..5) {
        prop_assert_eq!(
            OcRequest::write_offset(offset, Plane::from_index(plane).unwrap()).encode(),
            encode_offset_request(offset, plane)
        );
    }

    #[test]
    fn perf_status_roundtrip(freq_ratio in 1u32..=255, mv in 0.0f64..7_900.0) {
        let s = PerfStatus::new(freq_ratio * 100, mv);
        let back = PerfStatus::decode(s.encode());
        prop_assert_eq!(back.freq_mhz(), freq_ratio * 100);
        prop_assert!((back.voltage_mv() - mv).abs() < 0.13);
    }

    #[test]
    fn offset_limit_clamp_is_idempotent_and_bounded(
        bound in -900i32..=0,
        offset in -1000i32..=999,
    ) {
        let limit = VoltageOffsetLimit::new(bound);
        let req = OcRequest::write_offset(offset, Plane::Core);
        let once = limit.clamp(req);
        let twice = limit.clamp(once);
        prop_assert_eq!(once, twice, "clamp must be idempotent");
        // Clamped output never deeper than the bound (in native units).
        let bound_units = plugvolt_msr::oc_mailbox::mv_to_units(bound);
        prop_assert!(once.offset_units() >= bound_units);
    }

    // ---------- characterization map ----------

    #[test]
    fn charmap_classification_is_monotone_in_depth(
        onset in -290i32..=-20,
        width in 1i32..=60,
        freq in 500u32..=5_000,
        probe_a in -320i32..=0,
        probe_b in -320i32..=0,
    ) {
        let mut map = CharacterizationMap::new("prop", 0, -300);
        map.insert_band(FreqMhz(freq), FreqBand {
            fault_onset_mv: Some(onset),
            crash_mv: Some(onset - width),
        });
        let rank = |s: StateClass| match s {
            StateClass::Safe => 0,
            StateClass::Unsafe => 1,
            StateClass::Crash => 2,
        };
        let (hi, lo) = if probe_a >= probe_b { (probe_a, probe_b) } else { (probe_b, probe_a) };
        // Going deeper (more negative) never makes the state safer.
        prop_assert!(
            rank(map.classify(FreqMhz(freq), lo)) >= rank(map.classify(FreqMhz(freq), hi)),
            "lo={} hi={}", lo, hi
        );
    }

    #[test]
    fn charmap_interpolation_never_under_protects(
        onset_a in -290i32..=-20,
        onset_b in -290i32..=-20,
        probe in -300i32..=-1,
        mid in 1_100u32..=1_900,
    ) {
        let mut map = CharacterizationMap::new("prop", 0, -300);
        map.insert_band(FreqMhz(1_000), FreqBand { fault_onset_mv: Some(onset_a), crash_mv: None });
        map.insert_band(FreqMhz(2_000), FreqBand { fault_onset_mv: Some(onset_b), crash_mv: None });
        // If either neighbour says unsafe at this depth, the
        // interpolated frequency must too.
        let either_unsafe = probe <= onset_a.max(onset_b);
        let interpolated = map.classify(FreqMhz(mid), probe);
        if either_unsafe {
            prop_assert_ne!(interpolated, StateClass::Safe);
        }
    }

    #[test]
    fn maximal_safe_state_classifies_safe_everywhere(
        onsets in proptest::collection::vec(-290i32..=-20, 1..8),
    ) {
        let mut map = CharacterizationMap::new("prop", 0, -300);
        for (i, onset) in onsets.iter().enumerate() {
            map.insert_band(FreqMhz(1_000 + 500 * i as u32), FreqBand {
                fault_onset_mv: Some(*onset),
                crash_mv: Some(onset - 30),
            });
        }
        let mss = map.maximal_safe_offset_mv(0).unwrap();
        for (f, _) in map.iter() {
            prop_assert_eq!(map.classify(f, mss), StateClass::Safe,
                "mss {} unsafe at {}", mss, f);
        }
    }

    // ---------- circuit physics ----------

    #[test]
    fn alpha_power_delay_monotone(
        vth in 200.0f64..500.0,
        alpha in 1.0f64..2.0,
        v1 in 550.0f64..1_400.0,
        dv in 1.0f64..300.0,
    ) {
        prop_assume!(v1 > vth + 50.0);
        let m = AlphaPowerModel::new(50.0, vth, alpha);
        prop_assert!(m.delay_ps(v1) >= m.delay_ps(v1 + dv));
    }

    #[test]
    fn timing_budget_shrinks_with_frequency(
        f1 in 400u32..4_800,
        df in 100u32..1_000,
    ) {
        let a = TimingBudget::for_frequency_mhz(f1, 30.0, 10.0);
        let b = TimingBudget::for_frequency_mhz(f1 + df, 30.0, 10.0);
        prop_assert!(b.available_ps() <= a.available_ps());
    }

    #[test]
    fn multiplier_depth_monotone_in_operand_width(
        a_bits in 1u32..=64,
        b_bits in 1u32..=64,
    ) {
        let mul = MultiplierUnit::default();
        let mask = |bits: u32| if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
        let narrow = mul.depth_for(mask(a_bits) >> 1, mask(b_bits) >> 1);
        let wide = mul.depth_for(mask(a_bits), mask(b_bits));
        prop_assert!(wide >= narrow);
    }

    #[test]
    fn fault_probability_monotone(slack in -200.0f64..200.0, d in 0.1f64..50.0) {
        let fm = FaultModel::default();
        prop_assert!(fm.fault_probability(slack - d) >= fm.fault_probability(slack));
    }

    #[test]
    fn binomial_within_support(n in 0u64..=2_000_000, p in 0.0f64..=1.0, seed in 0u64..1000) {
        let mut rng = SimRng::from_seed_label(seed, "prop-binom");
        let k = sample_binomial(n, p, &mut rng);
        prop_assert!(k <= n);
    }

    #[test]
    fn flip_masks_are_nonzero_and_in_window(sig in 0u32..=80, seed in 0u64..500) {
        let mut rng = SimRng::from_seed_label(seed, "prop-mask");
        let mask = sample_flip_mask(sig, &mut rng);
        prop_assert_ne!(mask, 0);
        let sig = sig.clamp(2, 64);
        if sig < 64 {
            prop_assert_eq!(mask >> sig, 0, "mask {:#x} beyond window {}", mask, sig);
        }
    }

    // ---------- gate-level ground truth ----------

    #[test]
    fn adder_netlist_equals_integer_add(x in 0u64..256, y in 0u64..256) {
        let add = ripple_carry_adder(8);
        prop_assert_eq!(add.compute(x, y), x + y);
    }

    #[test]
    fn multiplier_netlist_equals_integer_mul(x in 0u64..64, y in 0u64..64) {
        let mul = array_multiplier(6);
        prop_assert_eq!(mul.compute(x, y), x * y);
    }

    // ---------- frequency table ----------

    #[test]
    fn quantize_lands_in_table(f in 0u32..10_000) {
        let table = FreqTable::new(FreqMhz(400), FreqMhz(4_900), 100);
        let q = table.quantize(FreqMhz(f));
        prop_assert!(table.contains(q));
        // Quantization moves by at most half a step (or clamps).
        if (400..=4_900).contains(&f) {
            prop_assert!((i64::from(q.mhz()) - i64::from(f)).abs() <= 50);
        }
    }

    // ---------- microcode blobs ----------

    #[test]
    fn ucode_blob_round_trips(
        revision in 1u32..=0xFFFF,
        bound in -900i32..=0,
        model_idx in 0usize..3,
        date in 0u32..=0x1231_9999,
    ) {
        let model = CpuModel::ALL[model_idx];
        let blob = UpdateBlob::package(
            MicrocodeUpdate::maximal_safe_state(revision, bound),
            model,
            date,
        );
        let back = UpdateBlob::decode(&blob.encode()).unwrap();
        prop_assert_eq!(back, blob);
        prop_assert!(back.validate_for(model).is_ok());
    }

    #[test]
    fn ucode_blob_single_bitflips_never_parse_as_different_update(
        revision in 1u32..=0xFFFF,
        bound in -900i32..=0,
        bit in 0usize..64 * 8,
    ) {
        let blob = UpdateBlob::package(
            MicrocodeUpdate::maximal_safe_state(revision, bound),
            CpuModel::CometLake,
            0x0101_2026,
        );
        let mut bytes = blob.encode();
        let idx = (bit / 8) % bytes.len();
        bytes[idx] ^= 1 << (bit % 8);
        // Either rejected, or (checksum-colliding flips are impossible
        // for single bits) parses back identically — it must never yield
        // a *different* accepted update.
        if let Ok(parsed) = UpdateBlob::decode(&bytes) {
            prop_assert_eq!(parsed, blob);
        }
    }

    // ---------- energy ----------

    #[test]
    fn energy_power_monotone_in_voltage_and_frequency(
        v in 500.0f64..1_300.0,
        dv in 1.0f64..200.0,
        f in 400u32..4_900,
        df in 100u32..1_000,
    ) {
        let m = EnergyModel::default();
        prop_assert!(m.core_power_w(v + dv, f, true) > m.core_power_w(v, f, true));
        prop_assert!(m.core_power_w(v, f + df, true) > m.core_power_w(v, f, true));
        prop_assert!(m.core_power_w(v, f, false) < m.core_power_w(v, f, true));
    }

    // ---------- rails ----------

    #[test]
    fn rails_route_loads_to_cache_plane(core in 500.0f64..1_300.0, cache in 500.0f64..1_300.0) {
        let rails = Rails { core_mv: core, cache_mv: cache };
        prop_assert_eq!(rails.for_class(InstrClass::Load), cache);
        for class in [InstrClass::Imul, InstrClass::Aesenc, InstrClass::Fma, InstrClass::AluAdd] {
            prop_assert_eq!(rails.for_class(class), core);
        }
        let u = Rails::uniform(core);
        prop_assert_eq!(u.core_mv, u.cache_mv);
    }

    // ---------- voltage regulator ----------

    #[test]
    fn vr_stays_between_start_and_target(
        start in 600.0f64..1_300.0,
        target in 600.0f64..1_300.0,
        probe_us in 0u64..5_000,
    ) {
        let mut vr = VoltageRegulator::new(start, SimDuration::from_micros(100), 8.0);
        vr.set_target(SimTime::ZERO, target);
        let v = vr.voltage_mv(SimTime::ZERO + SimDuration::from_micros(probe_us));
        let (lo, hi) = if start <= target { (start, target) } else { (target, start) };
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "v={} outside [{}, {}]", v, lo, hi);
    }

    #[test]
    fn vr_slew_rate_is_respected(
        start in 600.0f64..1_300.0,
        target in 600.0f64..1_300.0,
        t1 in 0u64..3_000,
        dt in 1u64..500,
    ) {
        let mut vr = VoltageRegulator::new(start, SimDuration::from_micros(50), 8.0);
        vr.set_target(SimTime::ZERO, target);
        let a = vr.voltage_mv(SimTime::ZERO + SimDuration::from_micros(t1));
        let b = vr.voltage_mv(SimTime::ZERO + SimDuration::from_micros(t1 + dt));
        prop_assert!((b - a).abs() <= 8.0 * dt as f64 + 1e-6);
    }
}
