//! Randomized property tests over the core invariants of the
//! reproduction: MSR codecs, characterization-map classification,
//! timing physics, the fault sampler and the VR.
//!
//! Cases are driven by the workspace's own seeded [`SimRng`] instead of
//! an external property-testing crate, so the suite stays hermetic and
//! every failure replays from a fixed seed. Each test draws `CASES`
//! inputs from a stream derived from the test's name.

use plugvolt::charmap::{CharacterizationMap, FreqBand};
use plugvolt::state::StateClass;
use plugvolt_circuit::delay::{AlphaPowerModel, DelayModel};
use plugvolt_circuit::fault::{sample_binomial, sample_flip_mask, FaultModel};
use plugvolt_circuit::multiplier::MultiplierUnit;
use plugvolt_circuit::netlist::{array_multiplier, ripple_carry_adder};
use plugvolt_circuit::timing::TimingBudget;
use plugvolt_cpu::energy::EnergyModel;
use plugvolt_cpu::exec::{InstrClass, Rails};
use plugvolt_cpu::freq::{FreqMhz, FreqTable};
use plugvolt_cpu::microcode::MicrocodeUpdate;
use plugvolt_cpu::model::CpuModel;
use plugvolt_cpu::ucode_blob::UpdateBlob;
use plugvolt_cpu::vr::VoltageRegulator;
use plugvolt_des::rng::SimRng;
use plugvolt_des::time::{SimDuration, SimTime};
use plugvolt_msr::oc_mailbox::{encode_offset_request, OcRequest, Plane};
use plugvolt_msr::offset_limit::VoltageOffsetLimit;
use plugvolt_msr::perf_status::PerfStatus;

/// Cases per property; every draw below is deterministic, so the suite
/// exercises the same inputs on every run.
const CASES: u64 = 256;

/// Seed shared by every property stream (varied per test via the label).
const SEED: u64 = 0x706c_7567_766f_6c74; // "plugvolt"

/// Input generator: thin inclusive-range helpers over [`SimRng`].
struct Gen {
    rng: SimRng,
}

impl Gen {
    fn new(test: &str, case: u64) -> Self {
        Gen {
            rng: SimRng::from_seed_label(SEED ^ case, test),
        }
    }

    fn i32_in(&mut self, lo: i32, hi: i32) -> i32 {
        i32::try_from(self.rng.in_range(i64::from(lo), i64::from(hi)))
            .expect("range bounds fit i32")
    }

    fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        u32::try_from(self.rng.in_range(i64::from(lo), i64::from(hi)))
            .expect("range bounds fit u32")
    }

    fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.rng.below(hi - lo + 1)
    }

    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        usize::try_from(self.u64_in(lo as u64, hi as u64)).expect("usize range")
    }

    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.rng.next_f64() * (hi - lo)
    }
}

/// Runs `body` for [`CASES`] deterministic inputs.
fn cases(test: &str, mut body: impl FnMut(&mut Gen)) {
    for case in 0..CASES {
        let mut g = Gen::new(test, case);
        body(&mut g);
    }
}

// ---------- MSR codecs ----------

#[test]
fn mailbox_roundtrip_quantizes_within_1mv() {
    cases("mailbox_roundtrip", |g| {
        let offset = g.i32_in(-1000, 999);
        let plane = Plane::from_index(g.i32_in(0, 4) as u8).unwrap();
        let req = OcRequest::write_offset(offset, plane);
        let back = OcRequest::decode(req.encode()).unwrap();
        assert_eq!(back.plane(), plane);
        assert!(back.is_write());
        assert!(
            (back.offset_mv() - offset).abs() <= 1,
            "offset {} decoded {}",
            offset,
            back.offset_mv()
        );
        // Truncation in Algorithm 1 never deepens an undervolt.
        if offset < 0 {
            assert!(back.offset_mv() >= offset);
        }
    });
}

#[test]
fn mailbox_matches_paper_algorithm1() {
    cases("mailbox_algorithm1", |g| {
        let offset = g.i32_in(-999, 999);
        let plane = g.i32_in(0, 4) as u8;
        assert_eq!(
            OcRequest::write_offset(offset, Plane::from_index(plane).unwrap()).encode(),
            encode_offset_request(offset, plane)
        );
    });
}

#[test]
fn perf_status_roundtrip() {
    cases("perf_status_roundtrip", |g| {
        let freq_ratio = g.u32_in(1, 255);
        let mv = g.f64_in(0.0, 7_900.0);
        let s = PerfStatus::new(freq_ratio * 100, mv);
        let back = PerfStatus::decode(s.encode());
        assert_eq!(back.freq_mhz(), freq_ratio * 100);
        assert!((back.voltage_mv() - mv).abs() < 0.13);
    });
}

#[test]
fn offset_limit_clamp_is_idempotent_and_bounded() {
    cases("offset_limit_clamp", |g| {
        let bound = g.i32_in(-900, 0);
        let offset = g.i32_in(-1000, 999);
        let limit = VoltageOffsetLimit::new(bound);
        let req = OcRequest::write_offset(offset, Plane::Core);
        let once = limit.clamp(req);
        let twice = limit.clamp(once);
        assert_eq!(once, twice, "clamp must be idempotent");
        // Clamped output never deeper than the bound (in native units).
        let bound_units = plugvolt_msr::oc_mailbox::mv_to_units(bound);
        assert!(once.offset_units() >= bound_units);
    });
}

// ---------- characterization map ----------

#[test]
fn charmap_classification_is_monotone_in_depth() {
    cases("charmap_monotone", |g| {
        let onset = g.i32_in(-290, -20);
        let width = g.i32_in(1, 60);
        let freq = g.u32_in(500, 5_000);
        let probe_a = g.i32_in(-320, 0);
        let probe_b = g.i32_in(-320, 0);
        let mut map = CharacterizationMap::new("prop", 0, -300);
        map.insert_band(
            FreqMhz(freq),
            FreqBand {
                fault_onset_mv: Some(onset),
                crash_mv: Some(onset - width),
            },
        );
        let rank = |s: StateClass| match s {
            StateClass::Safe => 0,
            StateClass::Unsafe => 1,
            StateClass::Crash => 2,
        };
        let (hi, lo) = if probe_a >= probe_b {
            (probe_a, probe_b)
        } else {
            (probe_b, probe_a)
        };
        // Going deeper (more negative) never makes the state safer.
        assert!(
            rank(map.classify(FreqMhz(freq), lo)) >= rank(map.classify(FreqMhz(freq), hi)),
            "lo={lo} hi={hi}"
        );
    });
}

#[test]
fn charmap_interpolation_never_under_protects() {
    cases("charmap_interpolation", |g| {
        let onset_a = g.i32_in(-290, -20);
        let onset_b = g.i32_in(-290, -20);
        let probe = g.i32_in(-300, -1);
        let mid = g.u32_in(1_100, 1_900);
        let mut map = CharacterizationMap::new("prop", 0, -300);
        map.insert_band(
            FreqMhz(1_000),
            FreqBand {
                fault_onset_mv: Some(onset_a),
                crash_mv: None,
            },
        );
        map.insert_band(
            FreqMhz(2_000),
            FreqBand {
                fault_onset_mv: Some(onset_b),
                crash_mv: None,
            },
        );
        // If either neighbour says unsafe at this depth, the
        // interpolated frequency must too.
        let either_unsafe = probe <= onset_a.max(onset_b);
        let interpolated = map.classify(FreqMhz(mid), probe);
        if either_unsafe {
            assert_ne!(interpolated, StateClass::Safe);
        }
    });
}

#[test]
fn maximal_safe_state_classifies_safe_everywhere() {
    cases("maximal_safe_state", |g| {
        let n = g.usize_in(1, 7);
        let onsets: Vec<i32> = (0..n).map(|_| g.i32_in(-290, -20)).collect();
        let mut map = CharacterizationMap::new("prop", 0, -300);
        for (i, onset) in onsets.iter().enumerate() {
            map.insert_band(
                FreqMhz(1_000 + 500 * i as u32),
                FreqBand {
                    fault_onset_mv: Some(*onset),
                    crash_mv: Some(onset - 30),
                },
            );
        }
        let mss = map.maximal_safe_offset_mv(0).unwrap();
        for (f, _) in map.iter() {
            assert_eq!(
                map.classify(f, mss),
                StateClass::Safe,
                "mss {mss} unsafe at {f}"
            );
        }
    });
}

// ---------- circuit physics ----------

#[test]
fn alpha_power_delay_monotone() {
    cases("alpha_power_delay", |g| {
        let vth = g.f64_in(200.0, 500.0);
        let alpha = g.f64_in(1.0, 2.0);
        let v1 = g.f64_in(550.0, 1_400.0);
        let dv = g.f64_in(1.0, 300.0);
        if v1 <= vth + 50.0 {
            return; // discard, mirroring the original prop_assume!
        }
        let m = AlphaPowerModel::new(50.0, vth, alpha);
        assert!(m.delay_ps(v1) >= m.delay_ps(v1 + dv));
    });
}

#[test]
fn timing_budget_shrinks_with_frequency() {
    cases("timing_budget", |g| {
        let f1 = g.u32_in(400, 4_799);
        let df = g.u32_in(100, 999);
        let a = TimingBudget::for_frequency_mhz(f1, 30.0, 10.0);
        let b = TimingBudget::for_frequency_mhz(f1 + df, 30.0, 10.0);
        assert!(b.available_ps() <= a.available_ps());
    });
}

#[test]
fn multiplier_depth_monotone_in_operand_width() {
    cases("multiplier_depth", |g| {
        let a_bits = g.u32_in(1, 64);
        let b_bits = g.u32_in(1, 64);
        let mul = MultiplierUnit::default();
        let mask = |bits: u32| {
            if bits == 64 {
                u64::MAX
            } else {
                (1u64 << bits) - 1
            }
        };
        let narrow = mul.depth_for(mask(a_bits) >> 1, mask(b_bits) >> 1);
        let wide = mul.depth_for(mask(a_bits), mask(b_bits));
        assert!(wide >= narrow);
    });
}

#[test]
fn fault_probability_monotone() {
    cases("fault_probability", |g| {
        let slack = g.f64_in(-200.0, 200.0);
        let d = g.f64_in(0.1, 50.0);
        let fm = FaultModel::default();
        assert!(fm.fault_probability(slack - d) >= fm.fault_probability(slack));
    });
}

#[test]
fn binomial_within_support() {
    cases("binomial_support", |g| {
        let n = g.u64_in(0, 2_000_000);
        let p = g.f64_in(0.0, 1.0);
        let seed = g.u64_in(0, 999);
        let mut rng = SimRng::from_seed_label(seed, "prop-binom");
        let k = sample_binomial(n, p, &mut rng);
        assert!(k <= n);
    });
}

#[test]
fn flip_masks_are_nonzero_and_in_window() {
    cases("flip_masks", |g| {
        let sig = g.u32_in(0, 80);
        let seed = g.u64_in(0, 499);
        let mut rng = SimRng::from_seed_label(seed, "prop-mask");
        let mask = sample_flip_mask(sig, &mut rng);
        assert_ne!(mask, 0);
        let sig = sig.clamp(2, 64);
        if sig < 64 {
            assert_eq!(mask >> sig, 0, "mask {mask:#x} beyond window {sig}");
        }
    });
}

// ---------- gate-level ground truth ----------

#[test]
fn adder_netlist_equals_integer_add() {
    cases("adder_netlist", |g| {
        let x = g.u64_in(0, 255);
        let y = g.u64_in(0, 255);
        let add = ripple_carry_adder(8);
        assert_eq!(add.compute(x, y), x + y);
    });
}

#[test]
fn multiplier_netlist_equals_integer_mul() {
    cases("multiplier_netlist", |g| {
        let x = g.u64_in(0, 63);
        let y = g.u64_in(0, 63);
        let mul = array_multiplier(6);
        assert_eq!(mul.compute(x, y), x * y);
    });
}

// ---------- frequency table ----------

#[test]
fn quantize_lands_in_table() {
    cases("quantize_table", |g| {
        let f = g.u32_in(0, 9_999);
        let table = FreqTable::new(FreqMhz(400), FreqMhz(4_900), 100);
        let q = table.quantize(FreqMhz(f));
        assert!(table.contains(q));
        // Quantization moves by at most half a step (or clamps).
        if (400..=4_900).contains(&f) {
            assert!((i64::from(q.mhz()) - i64::from(f)).abs() <= 50);
        }
    });
}

// ---------- microcode blobs ----------

#[test]
fn ucode_blob_round_trips() {
    cases("ucode_roundtrip", |g| {
        let revision = g.u32_in(1, 0xFFFF);
        let bound = g.i32_in(-900, 0);
        let model_idx = g.usize_in(0, 2);
        let date = g.u32_in(0, 0x1231_9999);
        let model = CpuModel::ALL[model_idx];
        let blob = UpdateBlob::package(
            MicrocodeUpdate::maximal_safe_state(revision, bound),
            model,
            date,
        );
        let back = UpdateBlob::decode(&blob.encode()).unwrap();
        assert_eq!(back, blob);
        assert!(back.validate_for(model).is_ok());
    });
}

#[test]
fn ucode_blob_single_bitflips_never_parse_as_different_update() {
    cases("ucode_bitflips", |g| {
        let revision = g.u32_in(1, 0xFFFF);
        let bound = g.i32_in(-900, 0);
        let bit = g.usize_in(0, 64 * 8 - 1);
        let blob = UpdateBlob::package(
            MicrocodeUpdate::maximal_safe_state(revision, bound),
            CpuModel::CometLake,
            0x0101_2026,
        );
        let mut bytes = blob.encode();
        let idx = (bit / 8) % bytes.len();
        bytes[idx] ^= 1 << (bit % 8);
        // Either rejected, or (checksum-colliding flips are impossible
        // for single bits) parses back identically — it must never yield
        // a *different* accepted update.
        if let Ok(parsed) = UpdateBlob::decode(&bytes) {
            assert_eq!(parsed, blob);
        }
    });
}

// ---------- energy ----------

#[test]
fn energy_power_monotone_in_voltage_and_frequency() {
    cases("energy_monotone", |g| {
        let v = g.f64_in(500.0, 1_300.0);
        let dv = g.f64_in(1.0, 200.0);
        let f = g.u32_in(400, 4_899);
        let df = g.u32_in(100, 999);
        let m = EnergyModel::default();
        assert!(m.core_power_w(v + dv, f, true) > m.core_power_w(v, f, true));
        assert!(m.core_power_w(v, f + df, true) > m.core_power_w(v, f, true));
        assert!(m.core_power_w(v, f, false) < m.core_power_w(v, f, true));
    });
}

// ---------- rails ----------

#[test]
fn rails_route_loads_to_cache_plane() {
    cases("rails_routing", |g| {
        let core = g.f64_in(500.0, 1_300.0);
        let cache = g.f64_in(500.0, 1_300.0);
        let rails = Rails {
            core_mv: core,
            cache_mv: cache,
        };
        assert_eq!(rails.for_class(InstrClass::Load), cache);
        for class in [
            InstrClass::Imul,
            InstrClass::Aesenc,
            InstrClass::Fma,
            InstrClass::AluAdd,
        ] {
            assert_eq!(rails.for_class(class), core);
        }
        let u = Rails::uniform(core);
        assert_eq!(u.core_mv, u.cache_mv);
    });
}

// ---------- voltage regulator ----------

#[test]
fn vr_stays_between_start_and_target() {
    cases("vr_bounds", |g| {
        let start = g.f64_in(600.0, 1_300.0);
        let target = g.f64_in(600.0, 1_300.0);
        let probe_us = g.u64_in(0, 4_999);
        let mut vr = VoltageRegulator::new(start, SimDuration::from_micros(100), 8.0);
        vr.set_target(SimTime::ZERO, target);
        let v = vr.voltage_mv(SimTime::ZERO + SimDuration::from_micros(probe_us));
        let (lo, hi) = if start <= target {
            (start, target)
        } else {
            (target, start)
        };
        assert!(
            v >= lo - 1e-9 && v <= hi + 1e-9,
            "v={v} outside [{lo}, {hi}]"
        );
    });
}

#[test]
fn vr_slew_rate_is_respected() {
    cases("vr_slew", |g| {
        let start = g.f64_in(600.0, 1_300.0);
        let target = g.f64_in(600.0, 1_300.0);
        let t1 = g.u64_in(0, 2_999);
        let dt = g.u64_in(1, 499);
        let mut vr = VoltageRegulator::new(start, SimDuration::from_micros(50), 8.0);
        vr.set_target(SimTime::ZERO, target);
        let a = vr.voltage_mv(SimTime::ZERO + SimDuration::from_micros(t1));
        let b = vr.voltage_mv(SimTime::ZERO + SimDuration::from_micros(t1 + dt));
        assert!((b - a).abs() <= 8.0 * dt as f64 + 1e-6);
    });
}

// ---------- event queue (slab + lazy-tombstone heap) ----------

#[test]
fn event_queue_matches_reference_model() {
    // Differential property: random interleavings of schedule / cancel /
    // pop_due (including cancels of already-fired and already-cancelled
    // ids, which exercise slot reuse and the tombstone skim) must match
    // a naive sorted-vector queue operation for operation. Times are
    // drawn from a tiny domain so simultaneous events are common and
    // the FIFO tie-break is genuinely stressed.
    use plugvolt_des::queue::{EventId, EventQueue};
    cases("event_queue_reference", |g| {
        let mut q: EventQueue<Vec<u64>> = EventQueue::new();
        let mut world: Vec<u64> = Vec::new();
        // Reference: pending (at, key) pairs; keys are issued in schedule
        // order, so (at, key) ordering is exactly the queue's
        // (time, sequence) FIFO ordering.
        let mut pending: Vec<(SimTime, u64)> = Vec::new();
        let mut expected_fired: Vec<u64> = Vec::new();
        // Every id ever issued, live or not — cancel targets are drawn
        // from the full history on purpose.
        let mut handles: Vec<(EventId, u64)> = Vec::new();
        let mut next_key = 0u64;
        let ops = g.usize_in(10, 60);
        for _ in 0..ops {
            match g.u32_in(0, 9) {
                // Schedule (half the mix, so the queue keeps churning).
                0..=4 => {
                    let at = SimTime::from_picos(g.u64_in(0, 40));
                    let key = next_key;
                    next_key += 1;
                    let id = q.schedule_at(at, move |w, _| w.push(key));
                    handles.push((id, key));
                    pending.push((at, key));
                }
                // Cancel an arbitrary historical id.
                5..=7 => {
                    if handles.is_empty() {
                        continue;
                    }
                    let (id, key) = handles[g.usize_in(0, handles.len() - 1)];
                    let was_pending = pending.iter().any(|&(_, k)| k == key);
                    assert_eq!(
                        q.cancel(id),
                        was_pending,
                        "cancel(key {key}) disagrees with the reference"
                    );
                    pending.retain(|&(_, k)| k != key);
                }
                // Fire everything due at a random horizon.
                _ => {
                    let horizon = SimTime::from_picos(g.u64_in(0, 50));
                    while let Some((_, f)) = q.pop_due(horizon) {
                        f(&mut world, &mut q);
                    }
                    loop {
                        let Some(&(at, key)) =
                            pending.iter().filter(|&&(at, _)| at <= horizon).min()
                        else {
                            break;
                        };
                        expected_fired.push(key);
                        pending.retain(|&(_, k)| k != key);
                        let _ = at;
                    }
                    assert_eq!(world, expected_fired, "fired order diverged");
                }
            }
            assert_eq!(q.len(), pending.len(), "live count diverged");
            assert_eq!(q.is_empty(), pending.is_empty());
            assert_eq!(
                q.peek_time(),
                pending.iter().min().map(|&(at, _)| at),
                "peek_time diverged"
            );
        }
        // Drain: the tail must fire in exactly the reference order.
        while let Some((_, f)) = q.pop_due(SimTime::MAX) {
            f(&mut world, &mut q);
        }
        pending.sort_unstable();
        expected_fired.extend(pending.iter().map(|&(_, k)| k));
        assert_eq!(world, expected_fired, "drain order diverged");
        assert!(q.is_empty());
    });
}
