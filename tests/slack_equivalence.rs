//! Integration: the precomputed slack table is a cache, not a model.
//!
//! The table short-circuits the alpha-power delay math (`powf`) and the
//! fault-band sigmoid (`exp`) on the batch hot path, so the one
//! invariant that matters is *bit identity*: every cached value must
//! equal what the analytic path computes for the same `(frequency,
//! voltage)` bits, and a machine running with the table attached must
//! be indistinguishable — records, fault counts, RNG stream, timings —
//! from the same machine running the analytic path. These tests pin
//! that across every CPU model and the entire grid.

use plugvolt::characterize::{characterize, SweepConfig};
use plugvolt_bench::scenario::Scenario;
use plugvolt_circuit::multiplier::MultiplierUnit;
use plugvolt_cpu::core::CoreId;
use plugvolt_cpu::exec::{ExecutionEngine, InstrClass};
use plugvolt_cpu::model::CpuModel;
use plugvolt_cpu::slack::{class_index, SlackTable, MIN_OFFSET_UNITS};
use plugvolt_des::time::SimDuration;

/// Every grid point of every model matches the analytic path bit for
/// bit — all 29-ish frequencies × 513 offset steps × both planes, not a
/// sampled subset. This is the exhaustive version of the spot checks in
/// `plugvolt_cpu::slack`'s unit tests.
#[test]
fn full_grid_matches_analytic_bits_for_every_model() {
    for model in CpuModel::ALL {
        let spec = model.spec();
        let table = SlackTable::build(&spec);
        let engine = ExecutionEngine::new(
            spec.multiplier(),
            spec.fault_model(),
            spec.t_setup_ps,
            spec.t_eps_ps,
        );
        let mut checked = 0usize;
        for f in spec.freq_table.iter() {
            let budget = engine.budget(f);
            for units in MIN_OFFSET_UNITS..=0 {
                let offset = f64::from(units) * 1000.0 / 1024.0;
                for v in [
                    spec.nominal_voltage_mv(f) + offset,
                    spec.nominal_cache_voltage_mv(f) + offset,
                ] {
                    let entry = table
                        .entry(f, v)
                        .unwrap_or_else(|| panic!("{model}: missing grid point {f} {v} mV"));
                    for class in InstrClass::ALL {
                        let cached = entry.classes[class_index(class)];
                        let slack = engine.class_slack_ps(class, f, v);
                        assert_eq!(cached.slack_ps.to_bits(), slack.to_bits(), "{model}");
                        assert_eq!(cached.state, engine.fault_model().classify(slack));
                        assert_eq!(
                            cached.fault_p.to_bits(),
                            engine.fault_model().fault_probability(slack).to_bits()
                        );
                    }
                    for (i, (_, a, b)) in MultiplierUnit::IMUL_LOOP_CLASSES.iter().enumerate() {
                        let slack = engine.multiplier().slack_ps(*a, *b, &budget, v);
                        assert_eq!(entry.imul_ops[i].slack_ps.to_bits(), slack.to_bits());
                    }
                    checked += 1;
                }
            }
        }
        assert_eq!(checked, table.len(), "{model}: grid size mismatch");
    }
}

/// A full characterization run with the table attached is identical to
/// the analytic run — including the stochastic fault sampling, because
/// a table hit returns the same fault probability bits and therefore
/// consumes the RNG stream identically.
#[test]
fn characterization_is_identical_with_and_without_table() {
    for model in CpuModel::ALL {
        let cfg = SweepConfig::coarse();
        let run = |table: bool| {
            let mut machine = Scenario::with_seed(77).machine(model);
            if !table {
                machine.set_slack_table(None);
            }
            characterize(&mut machine, &cfg).expect("sweeps")
        };
        let with_table = run(true);
        let analytic = run(false);
        assert_eq!(with_table.records, analytic.records, "{model}");
        assert_eq!(with_table.map, analytic.map, "{model}");
        assert_eq!(with_table.crashes, analytic.crashes, "{model}");
        assert_eq!(with_table.duration, analytic.duration, "{model}");
    }
}

/// The imul loop inside the fault band draws from the RNG; the table
/// path must leave the stream in exactly the same state as the analytic
/// path, which this pins by running a second, RNG-sensitive batch after
/// the first and requiring identical fault counts from both arms.
#[test]
fn rng_stream_is_consumed_identically_across_paths() {
    let model = CpuModel::CometLake;
    let run = |table: bool| {
        let mut machine = Scenario::with_seed(3).machine(model);
        if !table {
            machine.set_slack_table(None);
        }
        // Drop the core rail into the fault band, then run two batches:
        // the second one's faults depend on the RNG state the first one
        // left behind.
        let dev = plugvolt_kernel::msr_dev::MsrDev::open(&machine, CoreId(0)).expect("opens");
        let req = plugvolt_msr::oc_mailbox::OcRequest::write_offset(
            -230,
            plugvolt_msr::oc_mailbox::Plane::Core,
        )
        .encode();
        dev.write(&mut machine, plugvolt_msr::addr::Msr::OC_MAILBOX, req)
            .expect("writes");
        machine.advance(SimDuration::from_millis(1));
        let now = machine.now();
        let a = machine
            .cpu_mut()
            .run_imul_loop(now, CoreId(0), 1_000_000)
            .expect("first batch");
        let b = machine
            .cpu_mut()
            .run_imul_loop(now, CoreId(0), 1_000_000)
            .expect("second batch");
        (a, b)
    };
    assert_eq!(run(true), run(false));
}
