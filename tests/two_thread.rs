//! The paper's two-thread framework (Sec. 4.2) as *actual scheduled
//! threads*: a DVFS thread walking voltage offsets and an EXECUTE thread
//! hammering `imul`, concurrently on different cores — cross-checked
//! against the physics, plus an adversary/victim pairing under the
//! polling module.

use plugvolt::prelude::*;
use plugvolt_bench::scenario::Scenario;
use plugvolt_cpu::prelude::*;
use plugvolt_des::time::{SimDuration, SimTime};
use plugvolt_kernel::machine::{Machine, MachineError};
use plugvolt_kernel::prelude::*;
use plugvolt_kernel::sched::{Scheduler, SimThread, Yield};
use plugvolt_msr::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// The DVFS thread of Algorithm 2: steps the offset deeper every dwell.
struct DvfsThread {
    offsets: Vec<i32>,
    idx: usize,
    dwell: SimDuration,
    applied: Rc<RefCell<Vec<(SimTime, i32)>>>,
}

impl SimThread for DvfsThread {
    fn name(&self) -> &str {
        "dvfs-thread"
    }
    fn run(
        &mut self,
        machine: &mut Machine,
        core: CoreId,
        _quantum: SimDuration,
    ) -> Result<Yield, MachineError> {
        if self.idx >= self.offsets.len() {
            return Ok(Yield::Done);
        }
        let offset = self.offsets[self.idx];
        self.idx += 1;
        let now = machine.now();
        let req = OcRequest::write_offset(offset, Plane::Core).encode();
        machine.cpu_mut().wrmsr(now, core, Msr::OC_MAILBOX, req)?;
        self.applied.borrow_mut().push((now, offset));
        Ok(Yield::Sleep(self.dwell))
    }
}

/// The EXECUTE thread: tight imul batches, windowed fault log.
struct ExecuteThread {
    deadline: SimTime,
    log: Rc<RefCell<Vec<(SimTime, u64)>>>,
    crashed: Rc<RefCell<bool>>,
}

impl SimThread for ExecuteThread {
    fn name(&self) -> &str {
        "execute-thread"
    }
    fn run(
        &mut self,
        machine: &mut Machine,
        core: CoreId,
        quantum: SimDuration,
    ) -> Result<Yield, MachineError> {
        if machine.now() >= self.deadline {
            return Ok(Yield::Done);
        }
        let freq = machine.cpu().core_freq(core)?;
        let n = quantum.cycles_at(freq.mhz()).max(1);
        let now = machine.now();
        match machine.cpu_mut().run_imul_loop(now, core, n) {
            Ok(faults) => {
                self.log.borrow_mut().push((now, faults));
                Ok(Yield::Ready)
            }
            Err(plugvolt_cpu::package::PackageError::Crashed) => {
                *self.crashed.borrow_mut() = true;
                Ok(Yield::Done)
            }
            Err(e) => Err(MachineError::Package(e)),
        }
    }
}

#[test]
fn concurrent_threads_reproduce_the_fault_onset() {
    let model = CpuModel::CometLake;
    let map = plugvolt_bench::scenario::quick_map(model);
    let mut machine = Scenario::with_seed(51).machine(model);
    let mut cpupower = CpuPower::new(&machine);
    let fast = machine.cpu().spec().freq_table.max();
    cpupower.frequency_set_all(&mut machine, fast).unwrap();
    machine.advance(SimDuration::from_millis(1));

    let applied = Rc::new(RefCell::new(Vec::new()));
    let log = Rc::new(RefCell::new(Vec::new()));
    let crashed = Rc::new(RefCell::new(false));
    let mut sched = Scheduler::new(&machine, SimDuration::from_micros(200));
    sched.spawn_on(
        CoreId(1),
        Box::new(DvfsThread {
            offsets: (0..30).map(|i| -100 - 5 * i).collect(),
            idx: 0,
            dwell: SimDuration::from_millis(2),
            applied: Rc::clone(&applied),
        }),
    );
    sched.spawn_on(
        CoreId(0),
        Box::new(ExecuteThread {
            deadline: SimTime::ZERO + SimDuration::from_millis(70),
            log: Rc::clone(&log),
            crashed: Rc::clone(&crashed),
        }),
    );
    match sched.run_until(&mut machine, SimTime::ZERO + SimDuration::from_millis(80)) {
        Ok(()) => {}
        // The sweep legitimately ends in a package crash (the deepest
        // offsets are past the crash line); that is a valid campaign end.
        Err(MachineError::Package(plugvolt_cpu::package::PackageError::Crashed)) => {
            *crashed.borrow_mut() = true;
        }
        Err(e) => panic!("{e}"),
    }

    // Cross-check each fault window against the offset the DVFS thread
    // had applied (allowing the VR latency): faults must only occur once
    // the applied offset is at or past the map's onset.
    let onset = map
        .governing_band(fast)
        .and_then(|b| b.fault_onset_mv)
        .expect("onset at f_max");
    let applied = applied.borrow();
    let mut fault_windows = 0;
    for &(t, faults) in log.borrow().iter() {
        if faults == 0 {
            continue;
        }
        fault_windows += 1;
        // The offset in force ≈ the last one applied ≥ 1 ms before t
        // (mailbox latency + ramp).
        let in_force = applied
            .iter()
            .rev()
            .find(|(ta, _)| t.saturating_duration_since(*ta) >= SimDuration::from_millis(1))
            .map_or(0, |&(_, o)| o);
        assert!(
            in_force <= onset + 10,
            "faults at {t} with only {in_force} mV applied (onset {onset})"
        );
    }
    assert!(
        fault_windows > 0 || *crashed.borrow(),
        "the sweep must eventually fault or crash the EXECUTE thread"
    );
}

#[test]
fn scheduled_adversary_loses_to_the_polling_module() {
    // Adversary thread re-undervolts every 3 ms; victim thread signs
    // continuously; the module runs as a kernel module underneath both.
    struct AdversaryThread;
    impl SimThread for AdversaryThread {
        fn name(&self) -> &str {
            "adversary"
        }
        fn run(
            &mut self,
            machine: &mut Machine,
            core: CoreId,
            _quantum: SimDuration,
        ) -> Result<Yield, MachineError> {
            let now = machine.now();
            // Re-pin the victim core fast (undoing any frequency
            // fallback), then re-apply the deep undervolt.
            let fast = machine.cpu().spec().freq_table.max();
            let ctl = plugvolt_msr::perf_status::encode_perf_ctl(fast.mhz());
            let _ = machine
                .cpu_mut()
                .wrmsr(now, CoreId(0), Msr::IA32_PERF_CTL, ctl)?;
            let req = OcRequest::write_offset(-250, Plane::Core).encode();
            let _ = machine.cpu_mut().wrmsr(now, core, Msr::OC_MAILBOX, req)?;
            Ok(Yield::Sleep(SimDuration::from_millis(3)))
        }
    }
    struct VictimThread {
        faults: Rc<RefCell<u64>>,
        until: SimTime,
    }
    impl SimThread for VictimThread {
        fn name(&self) -> &str {
            "victim"
        }
        fn run(
            &mut self,
            machine: &mut Machine,
            core: CoreId,
            quantum: SimDuration,
        ) -> Result<Yield, MachineError> {
            if machine.now() >= self.until {
                return Ok(Yield::Done);
            }
            let freq = machine.cpu().core_freq(core)?;
            let n = quantum.cycles_at(freq.mhz()).max(1);
            let now = machine.now();
            *self.faults.borrow_mut() += machine.cpu_mut().run_imul_loop(now, core, n)?;
            Ok(Yield::Ready)
        }
    }

    let model = CpuModel::CometLake;
    let map = plugvolt_bench::scenario::quick_map(model);
    let mut machine = Scenario::with_seed(52).machine(model);
    let deployed = deploy(
        &mut machine,
        &map,
        Deployment::PollingModule(PollConfig::default()),
    )
    .unwrap();
    let mut cpupower = CpuPower::new(&machine);
    let fast = machine.cpu().spec().freq_table.max();
    cpupower.frequency_set_all(&mut machine, fast).unwrap();
    machine.advance(SimDuration::from_millis(1));

    let faults = Rc::new(RefCell::new(0u64));
    let mut sched = Scheduler::new(&machine, SimDuration::from_micros(200));
    sched.spawn_on(CoreId(1), Box::new(AdversaryThread));
    sched.spawn_on(
        CoreId(0),
        Box::new(VictimThread {
            faults: Rc::clone(&faults),
            until: machine.now() + SimDuration::from_millis(50),
        }),
    );
    let horizon = machine.now() + SimDuration::from_millis(60);
    sched.run_until(&mut machine, horizon).unwrap();

    assert_eq!(*faults.borrow(), 0, "victim faulted under the module");
    let stats = deployed.poll_stats.unwrap();
    assert!(
        stats.borrow().detections >= 10,
        "module detected {} of ~17 attack rounds",
        stats.borrow().detections
    );
    assert!(stats.borrow().restores >= 10);
}
