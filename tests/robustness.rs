//! Robustness and failure-injection integration tests: the paths a
//! production deployment hits when things go wrong — crashes mid-run,
//! paranoid maps, frequency changes under a running workload, module
//! behaviour on dead machines.

use plugvolt::characterize::{analytic_map, characterize, SweepConfig};
use plugvolt::charmap::CharacterizationMap;
use plugvolt::prelude::*;
use plugvolt_cpu::prelude::*;
use plugvolt_des::time::SimDuration;
use plugvolt_kernel::machine::{KernelModule, Machine, MachineError, ModuleCtx};
use plugvolt_kernel::prelude::*;
use plugvolt_msr::prelude::*;

#[test]
fn workload_faults_are_counted_under_unsafe_rail() {
    let mut m = Machine::new(CpuModel::CometLake, 91);
    let mut cpupower = CpuPower::new(&m);
    cpupower.frequency_set_all(&mut m, FreqMhz(4_900)).unwrap();
    let dev = MsrDev::open(&m, CoreId(0)).unwrap();
    // Inside the unsafe band but above the crash line.
    let req = OcRequest::write_offset(-170, Plane::Core).encode();
    dev.write(&mut m, Msr::OC_MAILBOX, req).unwrap();
    m.advance(SimDuration::from_millis(2));
    let run = m
        .run_workload(CoreId(0), InstrClass::Imul, 1_000_000)
        .unwrap();
    assert!(run.faults > 0, "unsafe rail must corrupt the workload");
    assert_eq!(run.instructions, 1_000_000);
}

#[test]
fn workload_crash_surfaces_as_error_and_reset_recovers() {
    let mut m = Machine::new(CpuModel::CometLake, 91);
    let mut cpupower = CpuPower::new(&m);
    cpupower.frequency_set_all(&mut m, FreqMhz(4_900)).unwrap();
    let dev = MsrDev::open(&m, CoreId(0)).unwrap();
    let req = OcRequest::write_offset(-400, Plane::Core).encode();
    dev.write(&mut m, Msr::OC_MAILBOX, req).unwrap();
    m.advance(SimDuration::from_millis(2));
    let err = m
        .run_workload(CoreId(0), InstrClass::Imul, 1_000_000)
        .unwrap_err();
    assert!(matches!(
        err,
        MachineError::Package(plugvolt_cpu::package::PackageError::Crashed)
    ));
    let now = m.now();
    m.cpu_mut().reset(now);
    m.advance(SimDuration::from_millis(2));
    let run = m
        .run_workload(CoreId(0), InstrClass::Imul, 100_000)
        .unwrap();
    assert_eq!(run.faults, 0);
}

/// A module that bounces core 0 between two frequencies every tick —
/// stress for the workload runner's slicing.
struct FreqBouncer {
    fast: bool,
}

impl KernelModule for FreqBouncer {
    fn name(&self) -> &str {
        "freq-bouncer"
    }
    fn init(&mut self, _ctx: &mut ModuleCtx<'_>) -> Option<SimDuration> {
        Some(SimDuration::from_micros(500))
    }
    fn on_timer(&mut self, ctx: &mut ModuleCtx<'_>) -> Option<SimDuration> {
        self.fast = !self.fast;
        let f = if self.fast { 4_000 } else { 1_000 };
        let _ = ctx.wrmsr_local(
            CoreId(0),
            Msr::IA32_PERF_CTL,
            plugvolt_msr::perf_status::encode_perf_ctl(f),
        );
        Some(SimDuration::from_micros(500))
    }
}

#[test]
fn workload_survives_frequency_bouncing() {
    let mut m = Machine::new(CpuModel::CometLake, 91);
    m.load_module(Box::new(FreqBouncer { fast: false }))
        .unwrap();
    let run = m
        .run_workload(CoreId(0), InstrClass::AluAdd, 20_000_000)
        .unwrap();
    assert_eq!(run.instructions, 20_000_000);
    assert_eq!(run.faults, 0, "nominal voltage tracks both frequencies");
    // Wall time sits between the all-fast and all-slow extremes.
    let fast = SimDuration::from_cycles(5_000_000, 4_000);
    let slow = SimDuration::from_cycles(5_000_000, 1_000);
    assert!(
        run.wall > fast && run.wall < slow + SimDuration::from_millis(2),
        "wall={}",
        run.wall
    );
}

#[test]
fn empty_map_module_is_paranoid_but_stable() {
    // A module deployed with no characterization data treats every
    // undervolt as unsafe: maximum caution, no crashes, benign overvolt
    // untouched.
    let map = CharacterizationMap::new("blank", 0, -300);
    let mut m = Machine::new(CpuModel::CometLake, 92);
    let (module, stats) = PollingModule::new(map, PollConfig::default());
    m.load_module(Box::new(module)).unwrap();
    let dev = MsrDev::open(&m, CoreId(0)).unwrap();
    let req = OcRequest::write_offset(-30, Plane::Core).encode();
    dev.write(&mut m, Msr::OC_MAILBOX, req).unwrap();
    m.advance(SimDuration::from_millis(2));
    assert_eq!(m.cpu().core_offset_mv(), 0, "even −30 mV is rolled back");
    assert!(stats.borrow().detections > 0);
    let now = m.now();
    assert_eq!(m.cpu_mut().run_imul_loop(now, CoreId(0), 100_000), Ok(0));
}

#[test]
fn module_handles_crashed_machine_gracefully() {
    let map = analytic_map(&CpuModel::CometLake.spec());
    let mut m = Machine::new(CpuModel::CometLake, 93);
    let (module, stats) = PollingModule::new(map, PollConfig::default());
    m.load_module(Box::new(module)).unwrap();
    // Crash the package underneath the module (rail collapse).
    let now = m.now();
    let req = OcRequest::write_offset(-999, Plane::Core).encode();
    let _ = m.cpu_mut().wrmsr(now, CoreId(0), Msr::OC_MAILBOX, req);
    // Advance far past the restore window without the module's restore
    // landing (its wrmsr errors on the crashed package): advancing must
    // not panic, and timers must keep firing.
    m.advance(SimDuration::from_millis(10));
    let ticks_mid = stats.borrow().ticks;
    m.advance(SimDuration::from_millis(10));
    assert!(stats.borrow().ticks > ticks_mid, "timers stopped");
    // After reboot the module resumes protecting.
    let now = m.now();
    m.cpu_mut().reset(now);
    let mut cpupower = CpuPower::new(&m);
    cpupower.frequency_set_all(&mut m, FreqMhz(4_900)).unwrap();
    let attack = OcRequest::write_offset(-250, Plane::Core).encode();
    let dev = MsrDev::open(&m, CoreId(0)).unwrap();
    dev.write(&mut m, Msr::OC_MAILBOX, attack).unwrap();
    m.advance(SimDuration::from_millis(1));
    assert_eq!(m.cpu().core_offset_mv(), 0, "post-reboot restore works");
}

#[test]
fn characterize_restores_a_preexisting_benign_offset() {
    let mut m = Machine::new(CpuModel::KabyLakeR, 94);
    let dev = MsrDev::open(&m, CoreId(0)).unwrap();
    let benign = OcRequest::write_offset(-50, Plane::Core).encode();
    dev.write(&mut m, Msr::OC_MAILBOX, benign).unwrap();
    m.advance(SimDuration::from_millis(2));
    assert_eq!(m.cpu().core_offset_mv(), -50);
    let _ = characterize(&mut m, &SweepConfig::coarse()).unwrap();
    assert_eq!(
        m.cpu().core_offset_mv(),
        -50,
        "Algorithm 2 lines 13–14: original offset restored"
    );
}

#[test]
fn polling_module_double_deploy_is_rejected_cleanly() {
    let map = analytic_map(&CpuModel::CometLake.spec());
    let mut m = Machine::new(CpuModel::CometLake, 95);
    let d1 = deploy(
        &mut m,
        &map,
        Deployment::PollingModule(PollConfig::default()),
    )
    .unwrap();
    let err = deploy(
        &mut m,
        &map,
        Deployment::PollingModule(PollConfig::default()),
    )
    .expect_err("second module must be rejected");
    assert!(matches!(err, MachineError::ModuleLoaded(_)));
    // The first deployment still works.
    let dev = MsrDev::open(&m, CoreId(0)).unwrap();
    let mut cpupower = CpuPower::new(&m);
    cpupower.frequency_set_all(&mut m, FreqMhz(4_900)).unwrap();
    let attack = OcRequest::write_offset(-250, Plane::Core).encode();
    dev.write(&mut m, Msr::OC_MAILBOX, attack).unwrap();
    m.advance(SimDuration::from_millis(1));
    assert_eq!(m.cpu().core_offset_mv(), 0);
    drop(d1);
}

#[test]
fn idle_victim_is_protected_on_wake() {
    // Attack lands while the victim core idles; the core wakes into a
    // system the module has already cleaned.
    let map = analytic_map(&CpuModel::CometLake.spec());
    let mut m = Machine::new(CpuModel::CometLake, 96);
    deploy(
        &mut m,
        &map,
        Deployment::PollingModule(PollConfig::default()),
    )
    .unwrap();
    let mut cpupower = CpuPower::new(&m);
    cpupower.frequency_set_all(&mut m, FreqMhz(4_900)).unwrap();
    let mut cpuidle = CpuIdle::new(&m);
    cpuidle.enter(&mut m, CoreId(0), CState::C6).unwrap();
    let dev = MsrDev::open(&m, CoreId(1)).unwrap();
    let attack = OcRequest::write_offset(-250, Plane::Core).encode();
    dev.write(&mut m, Msr::OC_MAILBOX, attack).unwrap();
    m.advance(SimDuration::from_millis(2));
    cpuidle.wake(&mut m, CoreId(0)).unwrap();
    m.advance(SimDuration::from_millis(1));
    let now = m.now();
    let faults = m
        .cpu_mut()
        .run_imul_loop(now, CoreId(0), 1_000_000)
        .unwrap();
    assert_eq!(faults, 0);
    assert_eq!(m.cpu().core_offset_mv(), 0);
}
