//! Integration: bit-for-bit reproducibility of every pipeline stage.
//!
//! The whole point of replacing the authors' bench with a simulator is
//! that anyone can re-run the experiments and get the same numbers;
//! these tests pin that property across crates.

use plugvolt::prelude::*;
use plugvolt_attacks::prelude::*;
use plugvolt_bench::scenario::Scenario;
use plugvolt_cpu::prelude::*;
use plugvolt_des::time::SimDuration;
use plugvolt_kernel::prelude::*;
use plugvolt_workloads::prelude::*;

#[test]
fn characterization_is_reproducible() {
    let run = |seed| {
        let mut machine = Scenario::with_seed(seed).machine(CpuModel::KabyLakeR);
        characterize(&mut machine, &SweepConfig::coarse()).expect("sweeps")
    };
    let a = run(5);
    let b = run(5);
    assert_eq!(a.map, b.map);
    assert_eq!(a.records, b.records);
    assert_eq!(a.crashes, b.crashes);
    assert_eq!(a.duration, b.duration);
    // And a different seed still produces the same *map* (the physics is
    // the same part; only stochastic fault sampling differs, which the
    // million-iteration loop averages out at the map level).
    let c = run(6);
    let onsets = |r: &CharacterizationRun| -> Vec<Option<i32>> {
        r.map.iter().map(|(_, b)| b.fault_onset_mv).collect()
    };
    let diffs = onsets(&a)
        .iter()
        .zip(onsets(&c))
        .filter(|(x, y)| match (x, y) {
            (Some(x), Some(y)) => (*x - y).abs() > 10,
            (None, None) => false,
            _ => true,
        })
        .count();
    assert!(diffs <= 2, "maps diverge across seeds in {diffs} bands");
}

#[test]
fn attack_campaigns_are_reproducible() {
    let run = || {
        let mut machine = Scenario::with_seed(42).machine(CpuModel::CometLake);
        run_rsa_attack(&mut machine, &PlundervoltConfig::default(), 9).expect("runs")
    };
    assert_eq!(run(), run());
}

#[test]
fn table2_is_reproducible() {
    let cfg = OverheadConfig {
        work_divisor: 400,
        ..OverheadConfig::default()
    };
    let a = run_table2(&cfg).expect("runs");
    let b = run_table2(&cfg).expect("runs");
    assert_eq!(a, b);
}

#[test]
fn machine_histories_replay_exactly() {
    let run = || {
        let mut machine = Scenario::with_seed(11).machine(CpuModel::SkyLake);
        let map = plugvolt::characterize::analytic_map(machine.cpu().spec());
        let _ = deploy(
            &mut machine,
            &map,
            Deployment::PollingModule(PollConfig::default()),
        )
        .expect("deploys");
        let dev = MsrDev::open(&machine, CoreId(0)).expect("opens");
        let req = plugvolt_msr::oc_mailbox::OcRequest::write_offset(
            -200,
            plugvolt_msr::oc_mailbox::Plane::Core,
        )
        .encode();
        let _ = dev
            .write(&mut machine, plugvolt_msr::addr::Msr::OC_MAILBOX, req)
            .expect("writes");
        machine.advance(SimDuration::from_millis(3));
        (
            machine.now(),
            machine.cpu().core_offset_mv(),
            machine.stolen_time(CoreId(0)),
            machine.trace().len(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn parallel_matrices_are_worker_count_independent() {
    // Same invariant as the sharded sweep, for the three experiment
    // matrices this PR parallelized: every cell's streams derive from
    // the scenario root seed and the cell's own labels, never from the
    // worker that claimed it, so the merged output is byte-identical
    // for any worker count — including counts that do not divide the
    // cell count evenly (7).
    use plugvolt_bench::experiments::{defense_matrix, deployment_levels, interval_sweep};
    let model = CpuModel::CometLake;
    let scn = Scenario::new();
    let map = scn.quick_map(model);
    let matrix = defense_matrix(&scn, model, &map, 1).expect("serial matrix");
    let levels = deployment_levels(&scn, model, &map, 1).expect("serial levels");
    let sweep = interval_sweep(&scn, model, &map, 1).expect("serial sweep");
    for workers in [2, 7] {
        let m = defense_matrix(&scn, model, &map, workers).expect("parallel matrix");
        assert_eq!(
            serde_json::to_string(&matrix).expect("serializes"),
            serde_json::to_string(&m).expect("serializes"),
            "defense matrix diverged at {workers} workers"
        );
        let l = deployment_levels(&scn, model, &map, workers).expect("parallel levels");
        assert_eq!(levels, l, "deployment levels diverged at {workers} workers");
        let s = interval_sweep(&scn, model, &map, workers).expect("parallel sweep");
        assert_eq!(sweep, s, "interval sweep diverged at {workers} workers");
    }
}

#[test]
fn soak_report_is_byte_deterministic_across_worker_counts() {
    // The soak fuzzer pins the same invariant end to end: schedules
    // are generated from labelled streams on the caller thread, every
    // oracle evaluation boots from one fixed machine label, and the
    // report never mentions the worker count — so the rendered JSON is
    // byte-identical at any parallelism, including a worker count that
    // does not divide the campaign count.
    use plugvolt_bench::soak::{run_soak, SoakConfig};
    let scn = Scenario::new();
    let cfg = |workers| SoakConfig {
        model: CpuModel::CometLake,
        campaigns: 7,
        workers,
        self_test: true,
        weaken_skip_every: 2,
        shrink_budget: 200,
    };
    let a = run_soak(&scn, &cfg(1), None).expect("sequential soak");
    let b = run_soak(&scn, &cfg(3), None).expect("parallel soak");
    assert!(a.passed(), "seed campaigns must hold the oracles");
    assert_eq!(
        a.to_json(),
        b.to_json(),
        "soak report diverged between 1 and 3 workers"
    );
}

#[test]
fn recorded_traces_replay_bit_identically() {
    // The HAL seam invariant: a campaign recorded through the tracing
    // backend, replayed through the replay backend, and re-run on the
    // plain sim backend are three views of one bit-identical execution.
    // Every MSR access checks off against the tape (no divergences, no
    // overrun, no leftover), the soak oracles still hold, and the
    // telemetry profiles and poll stats match byte for byte.
    use plugvolt_bench::trace::{record_fixture, replay_trace};
    let scn = Scenario::new();
    let fixture = record_fixture(&scn, CpuModel::CometLake).expect("records");
    let report = replay_trace(&fixture.jsonl).expect("replays");
    assert!(report.passed(), "{}", report.render_text());
    assert_eq!(
        fixture.captures, report.replay_captures,
        "recorded and replayed runs must expose identical observables"
    );
    assert_eq!(
        report.replay_captures, report.sim_captures,
        "replayed and plain-sim runs must expose identical observables"
    );
    // And the transcript itself is deterministic: recording twice from
    // the same scenario yields the same bytes.
    let again = record_fixture(&scn, CpuModel::CometLake).expect("records again");
    assert_eq!(fixture.jsonl, again.jsonl, "transcript must be stable");
}

#[test]
fn sharded_sweep_is_worker_count_independent() {
    // The tentpole invariant: every frequency shard boots its own
    // machine from a derived, labelled seed, so the merged records are
    // byte-identical whether one worker or many walked the shards.
    use plugvolt::characterize::characterize_sharded;
    for model in CpuModel::ALL {
        let cfg = SweepConfig::coarse();
        let sequential = characterize_sharded(model, 2024, &cfg, 1).expect("sequential sweeps");
        let sharded = characterize_sharded(model, 2024, &cfg, 4).expect("sharded sweeps");
        assert_eq!(sequential.records, sharded.records, "{model}");
        assert_eq!(sequential.map, sharded.map, "{model}");
        assert_eq!(sequential.crashes, sharded.crashes, "{model}");
        assert_eq!(sequential.duration, sharded.duration, "{model}");
        let a = serde_json::to_string(&sequential.records).expect("serializes");
        let b = serde_json::to_string(&sharded.records).expect("serializes");
        assert_eq!(a, b, "{model}: records must be byte-identical");
    }
}
