//! Integration: the §4.3 claim ("completely prevents DVFS faults") as a
//! machine-checked matrix — every published attack family against every
//! deployment level, plus the availability distinction versus Intel's
//! access-control fix.

use plugvolt::prelude::*;
use plugvolt_attacks::prelude::*;
use plugvolt_bench::scenario::Scenario;
use plugvolt_cpu::prelude::*;
use plugvolt_des::time::SimDuration;
use plugvolt_kernel::prelude::*;
use plugvolt_msr::prelude::*;

fn protective_deployments() -> Vec<Deployment> {
    vec![
        Deployment::OcmDisable,
        Deployment::PollingModule(PollConfig::default()),
        Deployment::Microcode {
            revision: 0xf5,
            margin_mv: 5,
        },
        Deployment::HardwareMsr { margin_mv: 5 },
    ]
}

#[test]
fn every_deployment_blocks_plundervolt_rsa() {
    let model = CpuModel::CometLake;
    let map = plugvolt_bench::scenario::quick_map(model);
    for deployment in protective_deployments() {
        let mut machine = Scenario::with_seed(42).machine(model);
        deploy(&mut machine, &map, deployment.clone()).expect("deploys");
        let report = run_rsa_attack(&mut machine, &PlundervoltConfig::default(), 1).expect("runs");
        assert!(!report.success, "{} failed to block", deployment.label());
        assert_eq!(report.faulty_events, 0, "{}", deployment.label());
    }
}

#[test]
fn every_deployment_blocks_plundervolt_aes() {
    let model = CpuModel::CometLake;
    let map = plugvolt_bench::scenario::quick_map(model);
    let cfg = PlundervoltConfig {
        victims_per_step: 100,
        ..PlundervoltConfig::default()
    };
    for deployment in protective_deployments() {
        let mut machine = Scenario::with_seed(43).machine(model);
        deploy(&mut machine, &map, deployment.clone()).expect("deploys");
        let report = run_aes_attack(&mut machine, &cfg, 2).expect("runs");
        assert!(!report.success, "{} failed to block", deployment.label());
    }
}

#[test]
fn every_deployment_blocks_voltjockey() {
    let model = CpuModel::CometLake;
    let map = plugvolt_bench::scenario::quick_map(model);
    for deployment in protective_deployments() {
        let mut machine = Scenario::with_seed(44).machine(model);
        deploy(&mut machine, &map, deployment.clone()).expect("deploys");
        let report =
            run_voltjockey_attack(&mut machine, &VoltJockeyConfig::default(), 3).expect("runs");
        assert!(!report.success, "{} failed to block", deployment.label());
        assert_eq!(report.faulty_events, 0, "{}", deployment.label());
    }
}

#[test]
fn every_deployment_blocks_v0ltpwn() {
    let model = CpuModel::CometLake;
    let map = plugvolt_bench::scenario::quick_map(model);
    for deployment in protective_deployments() {
        let mut machine = Scenario::with_seed(45).machine(model);
        deploy(&mut machine, &map, deployment.clone()).expect("deploys");
        let out = run_v0ltpwn_attack(&mut machine, &V0ltpwnConfig::default()).expect("runs");
        assert!(
            !out.report.success,
            "{} failed to block",
            deployment.label()
        );
        // The whole rate curve must be flat zero.
        assert!(
            out.curve.iter().all(|p| p.violations == 0),
            "{}: {:?}",
            deployment.label(),
            out.curve
        );
    }
}

#[test]
fn every_deployment_blocks_frequency_side_clkscrew() {
    let model = CpuModel::CometLake;
    let map = plugvolt_bench::scenario::quick_map(model);
    let cfg = ClkscrewConfig {
        benign_offset_mv: -170,
        ..ClkscrewConfig::default()
    };
    for deployment in protective_deployments() {
        let mut machine = Scenario::with_seed(46).machine(model);
        deploy(&mut machine, &map, deployment.clone()).expect("deploys");
        let report = run_clkscrew_attack(&mut machine, &cfg).expect("runs");
        assert!(!report.success, "{} failed to block", deployment.label());
    }
}

#[test]
fn only_the_papers_levels_preserve_benign_undervolting() {
    let model = CpuModel::CometLake;
    let map = plugvolt_bench::scenario::quick_map(model);
    let benign = |deployment: Deployment| -> i32 {
        let mut machine = Scenario::with_seed(47).machine(model);
        deploy(&mut machine, &map, deployment).expect("deploys");
        let dev = MsrDev::open(&machine, CoreId(0)).expect("opens");
        let req = OcRequest::write_offset(-40, Plane::Core).encode();
        let _ = dev
            .write(&mut machine, Msr::OC_MAILBOX, req)
            .expect("writes");
        machine.advance(SimDuration::from_millis(5));
        machine.cpu().core_offset_mv()
    };
    assert_eq!(
        benign(Deployment::OcmDisable),
        0,
        "Intel fix denies benign DVFS"
    );
    for deployment in [
        Deployment::PollingModule(PollConfig::default()),
        Deployment::Microcode {
            revision: 0xf5,
            margin_mv: 5,
        },
        Deployment::HardwareMsr { margin_mv: 5 },
    ] {
        let label = deployment.label();
        let applied = benign(deployment);
        assert!(
            (-40..=-39).contains(&applied),
            "{label} altered the benign offset: {applied}"
        );
    }
}

#[test]
fn adversarial_module_unload_is_attestation_visible() {
    // §4.1: the adversary may rmmod the countermeasure, but the verifier
    // sees it missing from the report and refuses the enclave.
    let model = CpuModel::CometLake;
    let map = plugvolt_bench::scenario::quick_map(model);
    let mut machine = Scenario::with_seed(48).machine(model);
    deploy(
        &mut machine,
        &map,
        Deployment::PollingModule(PollConfig::default()),
    )
    .expect("deploys");
    assert!(AttestationReport::collect(&machine).acceptable_to_plugvolt_verifier(MODULE_NAME));

    machine.unload_module(MODULE_NAME).expect("adversary rmmod");
    let report = AttestationReport::collect(&machine);
    assert!(
        !report.acceptable_to_plugvolt_verifier(MODULE_NAME),
        "verifier must notice the unload"
    );
    // And the machine is indeed attackable again.
    let attack = run_rsa_attack(&mut machine, &PlundervoltConfig::default(), 1).expect("runs");
    assert!(attack.success, "attack should work after rmmod");
}

#[test]
fn repeated_attack_rewrites_never_outrun_the_poller() {
    // An adversary re-issuing the unsafe write faster than the polling
    // period still never gets the rail to move: every accepted write
    // restarts the mailbox latency window and the poller clears it again.
    let model = CpuModel::CometLake;
    let map = plugvolt_bench::scenario::quick_map(model);
    let mut machine = Scenario::with_seed(49).machine(model);
    deploy(
        &mut machine,
        &map,
        Deployment::PollingModule(PollConfig::default()),
    )
    .expect("deploys");
    let mut cpupower = CpuPower::new(&machine);
    let fast = machine.cpu().spec().freq_table.max();
    cpupower
        .frequency_set(&mut machine, CoreId(0), fast)
        .expect("pins");
    machine.advance(SimDuration::from_millis(1));
    let nominal = machine.cpu().spec().nominal_voltage_mv(fast);

    let _ = nominal;
    let dev = MsrDev::open(&machine, CoreId(0)).expect("opens");
    let req = OcRequest::write_offset(-250, Plane::Core).encode();
    // The defense's contract is "never in an unsafe state", not "never
    // undervolted": the module's frequency fallback may leave the deep
    // offset standing at a frequency where it is genuinely safe (that is
    // the availability feature). Check the contract directly: at every
    // sample the *effective* (frequency, undervolt) pair must classify
    // safe, and the victim must never fault or crash.
    let mut total_faults = 0u64;
    for i in 0..200 {
        let _ = dev
            .write(&mut machine, Msr::OC_MAILBOX, req)
            .expect("writes");
        machine.advance(SimDuration::from_micros(90)); // faster than the 200 µs poll
        let f_now = machine.cpu().core_freq(CoreId(0)).expect("alive");
        let nominal_now = machine.cpu().spec().nominal_voltage_mv(f_now);
        let effective = (nominal_now - machine.cpu().core_voltage_mv(machine.now())).ceil() as i32;
        if effective > 2 {
            assert_eq!(
                map.classify(f_now, -effective),
                plugvolt::state::StateClass::Safe,
                "unsafe effective state ({f_now}, -{effective} mV) at sample {i}"
            );
        }
        // The victim hammers imuls right through the campaign.
        if i % 10 == 0 {
            let now = machine.now();
            total_faults += machine
                .cpu_mut()
                .run_imul_loop(now, CoreId(0), 100_000)
                .expect("machine must not crash under the defense");
        }
    }
    machine.advance(SimDuration::from_millis(2));
    assert_eq!(total_faults, 0, "victim faulted during the hammering");
}
