//! Integration tests for the span tracer's observability surface:
//! worker-count invariance of the sim-time channel, pinned exporter
//! schemas (Chrome trace JSON, streaming JSONL frames), and the
//! guarantee that none of the opt-in tracing flags can reach the
//! golden-results pipeline.

use plugvolt::characterize::SweepConfig;
use plugvolt_bench::scenario::Scenario;
use plugvolt_cpu::model::CpuModel;
use plugvolt_des::time::{SimDuration, SimTime};
use plugvolt_telemetry::{chrome_trace_json, Sink, SpanProfile, StreamCursor, StreamFrame, Tracer};

/// One traced coarse sweep on a fresh sink; returns the sink.
fn traced_characterize(workers: usize) -> Sink {
    let sink = Sink::new();
    sink.tracer().set_enabled(true);
    let scn = Scenario::new().with_telemetry(sink.clone());
    let run = scn
        .characterize(CpuModel::CometLake, &SweepConfig::coarse(), workers)
        .expect("sweep completes");
    assert!(!run.records.is_empty());
    sink
}

#[test]
fn span_profile_is_byte_identical_across_worker_counts() {
    let single = traced_characterize(1);
    let sharded = traced_characterize(4);
    let a = SpanProfile::from_tracer(single.tracer(), "workers");
    let b = SpanProfile::from_tracer(sharded.tracer(), "workers");
    assert_eq!(
        a.to_json(),
        b.to_json(),
        "sim-time span channel must not depend on the worker count"
    );
    assert!(!a.spans.is_empty(), "the sweep must produce span rows");

    // The streamed frame built from the same sinks is likewise
    // worker-count invariant (same spans, same serialization).
    let frame_a = StreamCursor::new(1).flush(&single, SimTime::ZERO);
    let frame_b = StreamCursor::new(1).flush(&sharded, SimTime::ZERO);
    assert_eq!(frame_a.to_jsonl(), frame_b.to_jsonl());
}

/// A tracer with one fixed parent/child shape, used by both snapshot
/// tests so the pinned bytes share a single source of truth.
fn pinned_tracer() -> Tracer {
    let t = Tracer::new();
    t.set_enabled(true);
    t.enable_capture(8);
    t.set_sim_now(SimTime::ZERO);
    {
        let _point = t.span("characterize/point");
        t.set_sim_now(SimTime::ZERO + SimDuration::from_picos(2_000_000));
        t.record_span("msr/access", 500_000);
    }
    t
}

#[test]
fn chrome_trace_schema_snapshot() {
    let text = chrome_trace_json(&pinned_tracer().capture(), "pinned");
    // Full-byte snapshot of the Trace Event Format export. A diff here
    // is a schema break for every saved Perfetto workflow — bump
    // SPAN_SCHEMA_VERSION and update deliberately.
    let expected = concat!(
        "{\"traceEvents\":[",
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,",
        "\"args\":{\"name\":\"pinned\"}},",
        "{\"name\":\"msr/access\",\"cat\":\"sim\",\"ph\":\"X\",",
        "\"ts\":2.0,\"dur\":0.5,\"pid\":1,\"tid\":1,\"args\":{\"depth\":1}},",
        "{\"name\":\"characterize/point\",\"cat\":\"sim\",\"ph\":\"X\",",
        "\"ts\":0.0,\"dur\":2.0,\"pid\":1,\"tid\":1,\"args\":{\"depth\":0}}",
        "],\"displayTimeUnit\":\"ms\",",
        "\"otherData\":{\"clock\":\"sim\",\"schema_version\":1}}",
    );
    assert_eq!(text, expected);
}

#[test]
fn stream_frame_schema_snapshot() {
    let sink = Sink::new();
    // Splice the pinned spans into a sink-owned tracer via a snapshot
    // merge, then add one counter so the frame exercises both arrays.
    sink.tracer().set_enabled(true);
    sink.tracer().absorb(&pinned_tracer().snapshot());
    sink.add(plugvolt_telemetry::MetricKey::global("unit", "ticks"), 3);
    let frame = StreamCursor::new(1).flush(&sink, SimTime::ZERO + SimDuration::from_millis(7));
    let line = frame.to_jsonl();
    let expected = concat!(
        "{\"schema_version\":1,\"seq\":0,\"sim_ms\":7,",
        "\"counters\":[{\"component\":\"unit\",\"name\":\"ticks\",\"core\":null,\"delta\":3}],",
        "\"spans\":[",
        "{\"path\":\"characterize/point\",\"label\":\"characterize/point\",",
        "\"count\":1,\"total_ps\":2500000,\"self_ps\":2000000},",
        "{\"path\":\"characterize/point;msr/access\",\"label\":\"msr/access\",",
        "\"count\":1,\"total_ps\":500000,\"self_ps\":500000}",
        "],\"spans_dropped\":0}",
    );
    assert_eq!(line, expected);
    let back: StreamFrame = serde_json::from_str(&line).expect("round trip");
    assert_eq!(back, frame);
}

#[test]
fn exporters_carry_no_wall_clock_channel() {
    let t = pinned_tracer();
    let trace = chrome_trace_json(&t.capture(), "pinned");
    assert!(!trace.contains("wall"), "wall channel leaked: {trace}");
    let profile = SpanProfile::from_tracer(&t, "pinned");
    assert!(
        !profile.to_json().contains("wall_ns"),
        "golden-eligible span profile must stay sim-only"
    );
}

#[test]
fn golden_pipeline_never_enables_opt_in_tracing() {
    // The golden gate hashes results/ byte-for-byte; the tracing and
    // streaming surfaces are opt-in precisely so they cannot perturb
    // those artifacts. Pin that the script never opts in.
    let script = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/scripts/golden.sh"))
        .expect("golden.sh exists");
    for flag in ["--attr", "--trace-out", "--flame-out", "--stream"] {
        assert!(
            !script.contains(flag),
            "golden.sh must not pass {flag}: the wall-clock channel and \
             opt-in trace exports are excluded from golden hashing"
        );
    }
}
