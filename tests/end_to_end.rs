//! End-to-end integration: the paper's whole pipeline across crates —
//! characterize (S1) → deploy (S2) → attack → verify prevention and
//! availability, on every CPU generation.

use plugvolt::prelude::*;
use plugvolt_attacks::prelude::*;
use plugvolt_bench::scenario::Scenario;
use plugvolt_cpu::prelude::*;
use plugvolt_des::time::SimDuration;
use plugvolt_kernel::prelude::*;
use plugvolt_msr::prelude::*;

fn coarse_map(model: CpuModel) -> CharacterizationMap {
    let mut machine = Scenario::with_seed(2024).machine(model);
    characterize(&mut machine, &SweepConfig::coarse())
        .expect("sweep completes")
        .map
}

#[test]
fn full_pipeline_blocks_plundervolt_on_every_generation() {
    for model in CpuModel::ALL {
        let map = coarse_map(model);
        let mut machine = Scenario::with_seed(7).machine(model);
        let deployed = deploy(
            &mut machine,
            &map,
            Deployment::PollingModule(PollConfig::default()),
        )
        .expect("deploys");

        let fast = machine.cpu().spec().freq_table.max();
        let cfg = PlundervoltConfig {
            target_freq: fast,
            ..PlundervoltConfig::default()
        };
        let report = run_rsa_attack(&mut machine, &cfg, 1).expect("campaign runs");
        assert!(!report.success, "{model}: attack succeeded: {report:?}");
        assert_eq!(report.faulty_events, 0, "{model}: faults leaked through");
        let stats = deployed.poll_stats.expect("stats");
        assert!(
            stats.borrow().detections > 0,
            "{model}: module never detected the attack"
        );
    }
}

#[test]
fn undefended_machines_fall_on_every_generation() {
    for model in CpuModel::ALL {
        let mut machine = Scenario::with_seed(7).machine(model);
        let fast = machine.cpu().spec().freq_table.max();
        let cfg = PlundervoltConfig {
            target_freq: fast,
            ..PlundervoltConfig::default()
        };
        let report = run_rsa_attack(&mut machine, &cfg, 1).expect("campaign runs");
        assert!(
            report.success,
            "{model}: baseline attack failed: {report:?}"
        );
    }
}

#[test]
fn empirical_map_agrees_with_attack_reality() {
    // Whatever the sweep calls unsafe must actually be attackable, and
    // whatever it calls safe (with margin) must not fault.
    let model = CpuModel::CometLake;
    let map = coarse_map(model);
    let mut machine = Scenario::with_seed(99).machine(model);
    let mut cpupower = CpuPower::new(&machine);
    let f = FreqMhz(4_400);
    cpupower
        .frequency_set(&mut machine, CoreId(0), f)
        .expect("pins");
    let band = map.governing_band(f).expect("characterized");
    let onset = band.fault_onset_mv.expect("faults within sweep at 4.4 GHz");

    // 30 mV above the onset: clean.
    let dev = MsrDev::open(&machine, CoreId(0)).expect("opens");
    let safe_req = OcRequest::write_offset(onset + 30, Plane::Core).encode();
    dev.write(&mut machine, Msr::OC_MAILBOX, safe_req)
        .expect("writes");
    machine.advance(SimDuration::from_millis(2));
    let now = machine.now();
    let faults = machine
        .cpu_mut()
        .run_imul_loop(now, CoreId(0), 1_000_000)
        .expect("runs");
    assert_eq!(faults, 0, "safe-side check at {} mV", onset + 30);

    // 10 mV below the onset: faulty (or crashed).
    let unsafe_req = OcRequest::write_offset(onset - 10, Plane::Core).encode();
    dev.write(&mut machine, Msr::OC_MAILBOX, unsafe_req)
        .expect("writes");
    machine.advance(SimDuration::from_millis(2));
    let now = machine.now();
    if let Ok(faults) = machine.cpu_mut().run_imul_loop(now, CoreId(0), 1_000_000) {
        // (an Err means the machine crashed, which is also "not safe")
        assert!(faults > 0, "unsafe-side check at {} mV", onset - 10);
    }
}

#[test]
fn maximal_safe_state_is_globally_safe() {
    let model = CpuModel::SkyLake;
    let map = coarse_map(model);
    let mss = map.maximal_safe_offset_mv(5).expect("certifiable");
    let mut machine = Scenario::with_seed(31).machine(model);
    let mut cpupower = CpuPower::new(&machine);
    let dev = MsrDev::open(&machine, CoreId(0)).expect("opens");
    // Hold the maximal safe offset at every 4th table frequency: never a fault.
    let freqs: Vec<FreqMhz> = machine.cpu().spec().freq_table.iter().step_by(4).collect();
    for f in freqs {
        cpupower
            .frequency_set(&mut machine, CoreId(0), f)
            .expect("pins");
        let req = OcRequest::write_offset(mss, Plane::Core).encode();
        dev.write(&mut machine, Msr::OC_MAILBOX, req)
            .expect("writes");
        machine.advance(SimDuration::from_millis(2));
        let now = machine.now();
        let faults = machine
            .cpu_mut()
            .run_imul_loop(now, CoreId(0), 1_000_000)
            .unwrap_or_else(|_| panic!("crashed at {f} under maximal safe state"));
        assert_eq!(faults, 0, "faults at {f} under maximal safe state {mss} mV");
    }
}

#[test]
fn microcode_and_hardware_levels_block_without_polling_cost() {
    let model = CpuModel::KabyLakeR;
    let map = coarse_map(model);
    for deployment in [
        Deployment::Microcode {
            revision: 0xf5,
            margin_mv: 5,
        },
        Deployment::HardwareMsr { margin_mv: 5 },
    ] {
        let mut machine = Scenario::with_seed(17).machine(model);
        deploy(&mut machine, &map, deployment.clone()).expect("deploys");
        let fast = machine.cpu().spec().freq_table.max();
        let cfg = PlundervoltConfig {
            target_freq: fast,
            ..PlundervoltConfig::default()
        };
        let report = run_rsa_attack(&mut machine, &cfg, 1).expect("runs");
        assert!(!report.success, "{}", deployment.label());
        // No kernel module loaded: zero stolen time.
        assert_eq!(
            machine.stolen_time(CoreId(0)),
            SimDuration::ZERO,
            "{} stole CPU time",
            deployment.label()
        );
    }
}

#[test]
fn characterization_map_survives_serialization_into_deployment() {
    // The S1 artifact travels as JSON (vendor → admin → kernel module).
    let map = coarse_map(CpuModel::CometLake);
    let json = serde_json::to_string(&map).expect("serializes");
    let loaded: CharacterizationMap = serde_json::from_str(&json).expect("parses");
    assert_eq!(loaded, map);
    let mut machine = Scenario::with_seed(3).machine(CpuModel::CometLake);
    let deployed = deploy(
        &mut machine,
        &loaded,
        Deployment::PollingModule(PollConfig::default()),
    )
    .expect("deploys from the deserialized artifact");
    assert!(machine.is_module_loaded(MODULE_NAME));
    drop(deployed);
}
