//! In-tree, offline stand-in for `serde_json`.
//!
//! Thin facade over the serde shim's [`Value`] model: `to_string`,
//! `to_string_pretty`, `from_str`, `to_value`/`from_value` and a `json!`
//! macro covering literal objects/arrays with embedded expressions.

pub use serde::json::parse;
pub use serde::{Error, Number, Value};

/// Result alias matching the real crate's signature shape.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON text.
///
/// # Errors
///
/// Infallible for this shim's value model; kept fallible for
/// call-site compatibility with the real crate.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_value().to_json())
}

/// Serializes a value to pretty-printed JSON text.
///
/// # Errors
///
/// Infallible for this shim's value model; kept fallible for
/// call-site compatibility with the real crate.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_value().to_json_pretty())
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns a parse or shape-mismatch error.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    T::from_value(&parse(s)?)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Rebuilds a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Returns a shape-mismatch error.
pub fn from_value<T: serde::Deserialize>(v: &Value) -> Result<T> {
    T::from_value(v)
}

/// Builds a [`Value`] from JSON-looking syntax; non-literal positions
/// accept any `serde::Serialize` expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:literal : $val:tt),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (String::from($key), $crate::json!($val)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_objects() {
        let name = "table2";
        let payload = vec![1_u32, 2, 3];
        let v = json!({ "experiment": name, "data": payload, "n": 3, "ok": true });
        assert_eq!(
            v.to_json(),
            r#"{"experiment":"table2","data":[1,2,3],"n":3,"ok":true}"#
        );
    }

    #[test]
    fn json_macro_nested() {
        let v = json!({ "a": [1, 2], "b": { "c": null } });
        assert_eq!(v.to_json(), r#"{"a":[1,2],"b":{"c":null}}"#);
    }

    #[test]
    fn round_trip_typed() {
        let xs: Vec<(u32, i32)> = vec![(2_000, -150), (3_400, -110)];
        let text = to_string(&xs).unwrap();
        let back: Vec<(u32, i32)> = from_str(&text).unwrap();
        assert_eq!(xs, back);
    }
}
