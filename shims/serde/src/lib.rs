//! In-tree, offline stand-in for the `serde` crate.
//!
//! The workspace must build with no registry access (ROADMAP tier-1 runs
//! in a hermetic container), so the real `serde` cannot be downloaded.
//! This shim keeps the subset of the API surface the workspace uses —
//! `#[derive(Serialize, Deserialize)]` plus the `serde_json` entry points
//! — while serializing through a small in-tree JSON [`Value`] model.
//!
//! Design differences from real serde, on purpose:
//!
//! * [`Serialize`] builds a [`Value`] tree instead of driving a streaming
//!   serializer — every consumer in this workspace ends at JSON text, and
//!   the tree keeps the derive macro (hand-rolled, no `syn`) small.
//! * Object fields keep **insertion order** (`Vec<(String, Value)>`), so
//!   derived output is deterministic and follows declaration order, the
//!   same property the `plugvolt-lint` determinism rules enforce
//!   elsewhere.
//! * [`Deserialize`] reads from a parsed `&Value`, so there is no
//!   lifetime plumbing; `&'static str` fields round-trip by leaking,
//!   which only test/report tooling exercises.

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

pub use json::{Number, Value};

/// Serialization/deserialization error: a message plus optional context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from a message.
    #[must_use]
    pub fn msg(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// "expected X, found Y" while deserializing `ty`.
    #[must_use]
    pub fn expected(what: &str, ty: &str, found: &Value) -> Self {
        Error::msg(format!(
            "{ty}: expected {what}, found {}",
            found.kind_name()
        ))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a JSON [`Value`].
pub trait Serialize {
    /// Builds the JSON value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a parsed value.
    ///
    /// # Errors
    ///
    /// Returns an error when the value's shape does not match.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Called by derived code when an object field is absent.
    ///
    /// The default is an error; `Option<T>` overrides it to `None` so
    /// optional fields tolerate omission, mirroring common JSON usage.
    ///
    /// # Errors
    ///
    /// Returns a missing-field error by default.
    fn missing_field(ty: &str, field: &str) -> Result<Self, Error> {
        Err(Error::msg(format!("{ty}: missing field `{field}`")))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::expected("bool", "bool", v))
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U(u64::from(*self)))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::expected("unsigned integer", stringify!($t), v))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::U(*self))
    }
}

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_u64()
            .ok_or_else(|| Error::expected("unsigned integer", "u64", v))
    }
}

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::Number(Number::U(*self as u64))
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let n = v
            .as_u64()
            .ok_or_else(|| Error::expected("unsigned integer", "usize", v))?;
        usize::try_from(n).map_err(|_| Error::msg(format!("{n} out of range for usize")))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::I(i64::from(*self)))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::expected("integer", stringify!($t), v))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32);

impl Serialize for i64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::I(*self))
    }
}

impl Deserialize for i64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_i64()
            .ok_or_else(|| Error::expected("integer", "i64", v))
    }
}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::Number(Number::I(*self as i64))
    }
}

impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let n = v
            .as_i64()
            .ok_or_else(|| Error::expected("integer", "isize", v))?;
        isize::try_from(n).map_err(|_| Error::msg(format!("{n} out of range for isize")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::expected("number", "f64", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        #[allow(clippy::cast_possible_truncation)]
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::expected("number", "f32", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::expected("string", "String", v))
    }
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        // Static tables (e.g. benchmark names) round-trip by leaking the
        // owned string; only report tooling deserializes these.
        String::from_value(v).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing_field(_ty: &str, _field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array", "Vec", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Deserialize> Deserialize for &'static [T] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(|xs| &*Box::leak(xs.into_boxed_slice()))
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let xs = Vec::<T>::from_value(v)?;
        let len = xs.len();
        xs.try_into()
            .map_err(|_| Error::msg(format!("expected array of {N}, found {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+) ;)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let xs = v.as_array().ok_or_else(|| Error::expected("array", "tuple", v))?;
                let want = [$(stringify!($idx)),+].len();
                if xs.len() != want {
                    return Err(Error::msg(format!(
                        "expected tuple of {want}, found array of {}", xs.len()
                    )));
                }
                Ok(($($t::from_value(&xs[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
}

/// Map keys: JSON objects only have string keys, so keyed collections
/// must render their keys as strings and parse them back.
pub trait JsonKey: Sized {
    /// String form of the key.
    fn to_key(&self) -> String;
    /// Parses a key back from its string form.
    ///
    /// # Errors
    ///
    /// Returns an error when the string is not a valid key.
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_owned())
    }
}

macro_rules! impl_int_key {
    ($($t:ty),*) => {$(
        impl JsonKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse()
                    .map_err(|_| Error::msg(format!("bad {} map key `{s}`", stringify!($t))))
            }
        }
    )*};
}

impl_int_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: JsonKey, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: JsonKey + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::expected("object", "BTreeMap", v))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array", "BTreeSet", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_missing_field_defaults_to_none() {
        assert_eq!(Option::<u32>::missing_field("T", "f"), Ok(None));
        assert!(u32::missing_field("T", "f").is_err());
    }

    #[test]
    fn map_keys_round_trip() {
        let mut m = std::collections::BTreeMap::new();
        m.insert(2_000_u32, -150_i32);
        m.insert(3_400_u32, -110_i32);
        let v = m.to_value();
        let back = std::collections::BTreeMap::<u32, i32>::from_value(&v).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn tuples_round_trip() {
        let t = (1_u32, -2_i32, 0.5_f64);
        let back = <(u32, i32, f64)>::from_value(&t.to_value()).unwrap();
        assert_eq!(t, back);
    }
}
