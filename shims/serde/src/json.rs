//! The JSON value model, parser and writers backing the serde shim.
//!
//! Objects are ordered `Vec<(String, Value)>` pairs: serialized output is
//! deterministic and follows struct declaration order, and lookup sets
//! are small enough that linear scans beat hashing anyway.

use std::fmt;

/// A JSON number, kept in its narrowest faithful representation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Anything with a fraction or exponent.
    F(f64),
}

impl Number {
    /// The value as `u64`, if faithfully representable.
    #[must_use]
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::U(n) => Some(n),
            Number::I(n) => u64::try_from(n).ok(),
            Number::F(f) if f >= 0.0 && f.fract() == 0.0 && f <= 2f64.powi(53) => Some(f as u64),
            Number::F(_) => None,
        }
    }

    /// The value as `i64`, if faithfully representable.
    #[must_use]
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::U(n) => i64::try_from(n).ok(),
            Number::I(n) => Some(n),
            Number::F(f) if f.fract() == 0.0 && f.abs() <= 2f64.powi(53) => Some(f as i64),
            Number::F(_) => None,
        }
    }

    /// The value as `f64` (integers convert lossily past 2^53).
    #[must_use]
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U(n) => n as f64,
            Number::I(n) => n as f64,
            Number::F(f) => f,
        }
    }
}

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Human name of the value's kind, for error messages.
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// `Some(b)` for booleans.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// `Some(&str)` for strings.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// `Some(u64)` for faithfully unsigned numbers.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// `Some(i64)` for faithfully integral numbers.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// `Some(f64)` for any number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The elements, for arrays.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(xs) => Some(xs),
            _ => None,
        }
    }

    /// The entries, for objects.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks up an object field by name.
    #[must_use]
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find_map(|(k, v)| (k == name).then_some(v))
    }

    /// The single `(tag, value)` entry of a one-entry object — the shape
    /// of an externally tagged enum variant with data.
    #[must_use]
    pub fn single_entry(&self) -> Option<(&str, &Value)> {
        match self.as_object()? {
            [(k, v)] => Some((k.as_str(), v)),
            _ => None,
        }
    }

    /// Compact JSON text.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        out
    }

    /// Pretty-printed JSON text (two-space indent).
    #[must_use]
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, Some(2), 0);
        out
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(Number::U(n)) => out.push_str(&n.to_string()),
        Value::Number(Number::I(n)) => out.push_str(&n.to_string()),
        Value::Number(Number::F(f)) => {
            if f.is_finite() {
                // `{:?}` is the shortest representation that round-trips.
                out.push_str(&format!("{f:?}"));
            } else {
                // JSON has no NaN/Infinity; match serde_json and emit null.
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(xs) => {
            if xs.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, x, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, x)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, x, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a message with byte offset on malformed input.
pub fn parse(input: &str) -> Result<Value, crate::Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(crate::Error::msg(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> crate::Error {
        crate::Error::msg(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), crate::Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, crate::Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, crate::Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, crate::Error> {
        self.eat(b'[', "expected `[`")?;
        let mut xs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(xs));
        }
        loop {
            self.skip_ws();
            xs.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(xs));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, crate::Error> {
        self.eat(b'{', "expected `{`")?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected `:`")?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, crate::Error> {
        self.eat(b'"', "expected `\"`")?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs: peek a following \uXXXX.
                            let c = if (0xd800..0xdc00).contains(&code) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    let lo_hex = self
                                        .bytes
                                        .get(self.pos + 2..self.pos + 6)
                                        .ok_or_else(|| self.err("truncated surrogate"))?;
                                    let lo_hex = std::str::from_utf8(lo_hex)
                                        .map_err(|_| self.err("bad surrogate"))?;
                                    let lo = u32::from_str_radix(lo_hex, 16)
                                        .map_err(|_| self.err("bad surrogate"))?;
                                    self.pos += 6;
                                    let combined =
                                        0x10000 + ((code - 0xd800) << 10) + (lo - 0xdc00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            s.push(c.ok_or_else(|| self.err("invalid \\u code point"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, crate::Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(n)));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(n)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F(f)))
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_basic_document() {
        let text = r#"{"a":1,"b":[-2,3.5,null,true],"c":{"d":"x\ny"}}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.to_json(), text);
    }

    #[test]
    fn object_order_is_preserved() {
        let v = parse(r#"{"z":1,"a":2}"#).unwrap();
        assert_eq!(v.to_json(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn numbers_keep_integrality() {
        assert_eq!(
            parse("18446744073709551615").unwrap(),
            Value::Number(Number::U(u64::MAX))
        );
        assert_eq!(
            parse("-9007199254740993").unwrap(),
            Value::Number(Number::I(-9_007_199_254_740_993))
        );
        assert_eq!(parse("1e3").unwrap(), Value::Number(Number::F(1000.0)));
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = parse(r#"{"a":[1,2],"b":{"c":true}}"#).unwrap();
        let pretty = v.to_json_pretty();
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1 2").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""é😀""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
    }
}
