//! In-tree, offline stand-in for `criterion`.
//!
//! The workspace builds hermetically (no registry access), so the real
//! criterion cannot be downloaded. This shim keeps the API surface the
//! bench files use — `criterion_group!`/`criterion_main!`, `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`, `black_box` — and
//! reports a simple median ns/iter to stdout. It is a smoke-runner, not
//! a statistics engine: sample counts are small and there is no warm-up
//! model, outlier rejection or HTML report.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Measurement driver handed to bench closures.
#[derive(Debug)]
pub struct Bencher {
    samples: u64,
    /// Median nanoseconds per iteration of the last `iter` call.
    last_ns: f64,
}

impl Bencher {
    /// Times `f`, recording a median over a few batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let mut medians = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            medians.push(start.elapsed().as_nanos() as f64);
        }
        medians.sort_by(f64::total_cmp);
        self.last_ns = medians[medians.len() / 2];
    }
}

/// Top-level bench context, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 5 }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).clamp(1, 100);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named benchmark group.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).clamp(1, 100);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoId,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.into_id()),
            self.sample_size,
            &mut f,
        );
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.0),
            self.sample_size,
            &mut |b| {
                f(b, input);
            },
        );
        self
    }

    /// Ends the group (formatting no-op in the shim).
    pub fn finish(self) {}
}

/// A benchmark identifier within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` identifier.
    #[must_use]
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Identifier from the parameter alone.
    #[must_use]
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Accepts both `&str` names and [`BenchmarkId`]s as bench identifiers.
pub trait IntoId {
    /// The display form of the identifier.
    fn into_id(self) -> String;
}

impl IntoId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoId for BenchmarkId {
    fn into_id(self) -> String {
        self.0
    }
}

fn run_one(name: &str, samples: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        last_ns: 0.0,
    };
    f(&mut b);
    println!("bench {name:<50} {:>14.0} ns/iter", b.last_ns);
}

/// Declares a bench group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
