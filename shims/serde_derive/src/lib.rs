//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the in-tree serde
//! shim.
//!
//! The workspace builds offline, so `syn`/`quote` are unavailable; this
//! macro walks the raw [`proc_macro::TokenStream`] instead. It supports
//! exactly the shapes the workspace uses:
//!
//! * structs with named fields (honoring `#[serde(skip)]`),
//! * tuple structs (newtype and wider),
//! * unit structs,
//! * enums with unit, tuple and struct variants (externally tagged, the
//!   real serde default).
//!
//! Generic types are intentionally rejected — none of the simulation
//! artifacts need them, and refusing keeps the parser honest.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field of a struct or struct variant.
struct Field {
    name: String,
    skip: bool,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Input {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize` (shim) for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let code = match &parsed {
        Input::Struct { name, shape } => serialize_struct(name, shape),
        Input::Enum { name, variants } => serialize_enum(name, variants),
    };
    code.parse()
        .expect("derive(Serialize) generated valid Rust")
}

/// Derives `serde::Deserialize` (shim) for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let code = match &parsed {
        Input::Struct { name, shape } => deserialize_struct(name, shape),
        Input::Enum { name, variants } => deserialize_enum(name, variants),
    };
    code.parse()
        .expect("derive(Deserialize) generated valid Rust")
}

// ---------------------------------------------------------------- parsing

fn parse_input(input: TokenStream) -> Input {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes and visibility to reach `struct` / `enum`.
    let kind = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // The attribute body is the following bracket group.
                tokens.next();
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                // `pub`, possibly followed by a `(crate)` group.
                if s == "pub" {
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
            }
            Some(_) => {}
            None => panic!("serde shim derive: no `struct` or `enum` found"),
        }
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic types are not supported (type `{name}`)");
        }
    }
    let body = tokens.next();
    if kind == "enum" {
        let Some(TokenTree::Group(g)) = body else {
            panic!("serde shim derive: malformed enum `{name}`");
        };
        Input::Enum {
            name,
            variants: parse_variants(g.stream()),
        }
    } else {
        let shape = match body {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => panic!("serde shim derive: malformed struct `{name}`: {other:?}"),
        };
        Input::Struct { name, shape }
    }
}

/// Collects leading `#[...]` attributes, returning whether any of them is
/// `#[serde(skip)]`.
fn take_attrs(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> bool {
    let mut skip = false;
    while let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() != '#' {
            break;
        }
        tokens.next();
        if let Some(TokenTree::Group(g)) = tokens.next() {
            skip |= attr_is_serde_skip(g.stream());
        }
    }
    skip
}

fn attr_is_serde_skip(attr: TokenStream) -> bool {
    let mut tokens = attr.into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match tokens.next() {
        Some(TokenTree::Group(g)) => g.stream().into_iter().any(|t| match t {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                s == "skip" || s == "skip_serializing" || s == "skip_deserializing"
            }
            _ => false,
        }),
        _ => false,
    }
}

fn skip_visibility(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if let Some(TokenTree::Ident(id)) = tokens.peek() {
        if id.to_string() == "pub" {
            tokens.next();
            if let Some(TokenTree::Group(g)) = tokens.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    tokens.next();
                }
            }
        }
    }
}

/// Consumes a type (everything up to a top-level `,`), tracking `<` / `>`
/// depth so commas inside generics don't split fields.
fn skip_type(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut angle_depth = 0_i32;
    while let Some(tt) = tokens.peek() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                tokens.next();
                return;
            }
            _ => {}
        }
        tokens.next();
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let skip = take_attrs(&mut tokens);
        skip_visibility(&mut tokens);
        let Some(tt) = tokens.next() else { break };
        let TokenTree::Ident(id) = tt else {
            panic!("serde shim derive: expected field name, got {tt:?}");
        };
        // `:`
        tokens.next();
        skip_type(&mut tokens);
        fields.push(Field {
            name: id.to_string(),
            skip,
        });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut tokens = stream.into_iter().peekable();
    if tokens.peek().is_none() {
        return 0;
    }
    let mut count = 0;
    loop {
        take_attrs(&mut tokens);
        skip_visibility(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        skip_type(&mut tokens);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        take_attrs(&mut tokens);
        let Some(tt) = tokens.next() else { break };
        let TokenTree::Ident(id) = tt else {
            panic!("serde shim derive: expected variant name, got {tt:?}");
        };
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                Shape::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                tokens.next();
                Shape::Tuple(n)
            }
            _ => Shape::Unit,
        };
        // Explicit discriminant (`= 3`): consume through the expression.
        if let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '=' {
                tokens.next();
                while let Some(tt) = tokens.peek() {
                    if matches!(tt, TokenTree::Punct(p) if p.as_char() == ',') {
                        break;
                    }
                    tokens.next();
                }
            }
        }
        // Trailing `,` if present.
        if let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == ',' {
                tokens.next();
            }
        }
        variants.push(Variant {
            name: id.to_string(),
            shape,
        });
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn serialize_struct(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Unit => "serde::Value::Null".to_string(),
        Shape::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Shape::Named(fields) => named_fields_to_object(fields, "self."),
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{ {body} }}\n\
         }}"
    )
}

/// Builds the `Value::Object(...)` expression for named fields accessed
/// through `prefix` (either `self.` or `` for bound variables).
fn named_fields_to_object(fields: &[Field], prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .filter(|f| !f.skip)
        .map(|f| {
            format!(
                "(String::from(\"{0}\"), serde::Serialize::to_value(&{prefix}{0}))",
                f.name
            )
        })
        .collect();
    format!("serde::Value::Object(vec![{}])", entries.join(", "))
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vname = &v.name;
            match &v.shape {
                Shape::Unit => format!(
                    "{name}::{vname} => serde::Value::String(String::from(\"{vname}\"))"
                ),
                Shape::Tuple(n) => {
                    let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                    let inner = if *n == 1 {
                        "serde::Serialize::to_value(x0)".to_string()
                    } else {
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("serde::Serialize::to_value({b})"))
                            .collect();
                        format!("serde::Value::Array(vec![{}])", elems.join(", "))
                    };
                    format!(
                        "{name}::{vname}({}) => serde::Value::Object(vec![(String::from(\"{vname}\"), {inner})])",
                        binds.join(", ")
                    )
                }
                Shape::Named(fields) => {
                    let binds: Vec<String> =
                        fields.iter().map(|f| f.name.clone()).collect();
                    let inner = named_fields_to_object(fields, "");
                    format!(
                        "{name}::{vname} {{ {} }} => serde::Value::Object(vec![(String::from(\"{vname}\"), {inner})])",
                        binds.join(", ")
                    )
                }
            }
        })
        .collect();
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n\
                 match self {{ {} }}\n\
             }}\n\
         }}",
        arms.join(",\n")
    )
}

/// Builds a struct-literal body (`field: <expr>, ...`) that pulls each
/// non-skipped field out of the object value `src`.
fn named_fields_from_object(ty_label: &str, fields: &[Field], src: &str) -> String {
    fields
        .iter()
        .map(|f| {
            if f.skip {
                format!("{}: ::std::default::Default::default()", f.name)
            } else {
                format!(
                    "{0}: match {src}.get_field(\"{0}\") {{\n\
                         Some(x) => serde::Deserialize::from_value(x)?,\n\
                         None => serde::Deserialize::missing_field(\"{ty_label}\", \"{0}\")?,\n\
                     }}",
                    f.name
                )
            }
        })
        .collect::<Vec<_>>()
        .join(",\n")
}

fn deserialize_struct(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Unit => format!("let _ = v; Ok({name})"),
        Shape::Tuple(1) => format!("Ok({name}(serde::Deserialize::from_value(v)?))"),
        Shape::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_value(&xs[{i}])?"))
                .collect();
            format!(
                "let xs = v.as_array().ok_or_else(|| serde::Error::expected(\"array\", \"{name}\", v))?;\n\
                 if xs.len() != {n} {{\n\
                     return Err(serde::Error::msg(format!(\"{name}: expected {n} elements, found {{}}\", xs.len())));\n\
                 }}\n\
                 Ok({name}({}))",
                elems.join(", ")
            )
        }
        Shape::Named(fields) => {
            format!(
                "if v.as_object().is_none() {{\n\
                     return Err(serde::Error::expected(\"object\", \"{name}\", v));\n\
                 }}\n\
                 Ok({name} {{\n{}\n}})",
                named_fields_from_object(name, fields, "v")
            )
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
             fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.shape, Shape::Unit))
        .map(|v| format!("\"{0}\" => return Ok({name}::{0})", v.name))
        .collect();
    let data_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let vname = &v.name;
            match &v.shape {
                Shape::Unit => None,
                Shape::Tuple(1) => Some(format!(
                    "\"{vname}\" => Ok({name}::{vname}(serde::Deserialize::from_value(inner)?))"
                )),
                Shape::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("serde::Deserialize::from_value(&xs[{i}])?"))
                        .collect();
                    Some(format!(
                        "\"{vname}\" => {{\n\
                             let xs = inner.as_array().ok_or_else(|| serde::Error::expected(\"array\", \"{name}::{vname}\", inner))?;\n\
                             if xs.len() != {n} {{\n\
                                 return Err(serde::Error::msg(format!(\"{name}::{vname}: expected {n} elements, found {{}}\", xs.len())));\n\
                             }}\n\
                             Ok({name}::{vname}({}))\n\
                         }}",
                        elems.join(", ")
                    ))
                }
                Shape::Named(fields) => Some(format!(
                    "\"{vname}\" => Ok({name}::{vname} {{\n{}\n}})",
                    named_fields_from_object(&format!("{name}::{vname}"), fields, "inner")
                )),
            }
        })
        .collect();
    format!(
        "impl serde::Deserialize for {name} {{\n\
             fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                 if let Some(s) = v.as_str() {{\n\
                     match s {{\n\
                         {unit_arms}\n\
                         _ => return Err(serde::Error::msg(format!(\"{name}: unknown variant `{{s}}`\"))),\n\
                     }}\n\
                 }}\n\
                 let (tag, inner) = v.single_entry().ok_or_else(|| serde::Error::expected(\"variant string or single-entry object\", \"{name}\", v))?;\n\
                 match tag {{\n\
                     {data_arms}\n\
                     _ => Err(serde::Error::msg(format!(\"{name}: unknown variant `{{tag}}`\"))),\n\
                 }}\n\
             }}\n\
         }}",
        unit_arms = if unit_arms.is_empty() {
            String::new()
        } else {
            format!("{},", unit_arms.join(",\n"))
        },
        data_arms = if data_arms.is_empty() {
            String::new()
        } else {
            format!("{},", data_arms.join(",\n"))
        },
    )
}
