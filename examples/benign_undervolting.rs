//! The paper's availability argument, from a laptop power-user's seat.
//!
//! A battery-conscious user undervolts by −80 mV (a classic laptop
//! tweak worth real watts) while an SGX workload runs. Under Intel's
//! CVE-2019-11157 fix the undervolt is denied outright; under the
//! paper's countermeasure it keeps working — and a later attack attempt
//! is still stopped. Attestation tells the story to the remote verifier.
//!
//! Run with: `cargo run --release --example benign_undervolting`

use plugvolt::prelude::*;
use plugvolt_bench::scenario::Scenario;
use plugvolt_cpu::prelude::*;
use plugvolt_des::time::SimDuration;
use plugvolt_kernel::prelude::*;
use plugvolt_msr::prelude::*;

const BENIGN_OFFSET_MV: i32 = -80;

fn try_user_undervolt(machine: &mut Machine) -> Result<i32, MachineError> {
    let dev = MsrDev::open(machine, CoreId(0))?;
    let req = OcRequest::write_offset(BENIGN_OFFSET_MV, Plane::Core).encode();
    let _ = dev.write(machine, Msr::OC_MAILBOX, req)?;
    machine.advance(SimDuration::from_millis(5));
    Ok(machine.cpu().core_offset_mv())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = CpuModel::KabyLakeR; // the paper's laptop part
    let scn = Scenario::with_seed(7);
    let map = scn.quick_map(model);

    for (label, deployment) in [
        (
            "Intel access-control fix (OCM disable)",
            Deployment::OcmDisable,
        ),
        (
            "Plug-Your-Volt polling module",
            Deployment::PollingModule(PollConfig::default()),
        ),
    ] {
        println!("== {label} ==");
        let mut machine = scn.machine(model);
        let deployed = scn.deploy(&mut machine, &map, deployment)?;

        // The user applies the power-saving undervolt.
        let applied = try_user_undervolt(&mut machine)?;
        println!("  user requests {BENIGN_OFFSET_MV} mV → applied offset: {applied} mV");

        // The remote verifier inspects the attestation report.
        let report = AttestationReport::collect(&machine);
        println!(
            "  attestation: OCM disabled = {}, modules = {:?}",
            report.ocm_disabled, report.loaded_modules
        );
        println!(
            "  paper verifier accepts: {} | Intel verifier accepts: {}",
            report.acceptable_to_plugvolt_verifier(MODULE_NAME),
            report.acceptable_to_intel_verifier()
        );

        // Sanity: the machine computes correctly under the user setting.
        let now = machine.now();
        let faults = machine.cpu_mut().run_imul_loop(now, CoreId(0), 1_000_000)?;
        println!("  1M imuls under the user setting: {faults} faults");

        // Later, malware escalates to a deep undervolt at high frequency.
        let mut cpupower = CpuPower::new(&machine);
        cpupower.frequency_set(&mut machine, CoreId(0), FreqMhz(3_400))?;
        let dev = MsrDev::open(&machine, CoreId(0))?;
        let attack = OcRequest::write_offset(-260, Plane::Core).encode();
        let _ = dev.write(&mut machine, Msr::OC_MAILBOX, attack)?;
        machine.advance(SimDuration::from_millis(5));
        let now = machine.now();
        let attack_faults = machine.cpu_mut().run_imul_loop(now, CoreId(0), 1_000_000)?;
        println!(
            "  malware writes −260 mV @ 3.4 GHz → offset now {} mV, victim faults: {}",
            machine.cpu().core_offset_mv(),
            attack_faults
        );
        assert_eq!(attack_faults, 0, "{label} must stop the attack");
        if let Some(stats) = &deployed.poll_stats {
            let s = stats.borrow();
            println!(
                "  module: {} detections, {} restores",
                s.detections, s.restores
            );
        }
        println!();
    }

    println!("both configurations stop the attack; only the paper's keeps");
    println!("the user's {BENIGN_OFFSET_MV} mV power saving alive.");
    Ok(())
}
