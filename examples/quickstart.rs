//! Quickstart: the paper's full pipeline in one sitting.
//!
//! 1. Boot a simulated Comet Lake.
//! 2. Characterize its safe/unsafe states (S1, Algorithms 1–2).
//! 3. Deploy the polling countermeasure kernel module (S2, Algorithm 3).
//! 4. Mount a Plundervolt-style undervolt and watch it get neutralized.
//!
//! Run with: `cargo run --release --example quickstart`

use plugvolt::prelude::*;
use plugvolt_bench::scenario::Scenario;
use plugvolt_cpu::prelude::*;
use plugvolt_des::time::SimDuration;
use plugvolt_kernel::prelude::*;
use plugvolt_msr::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Boot through a scenario session: one root seed from which
    //    every machine and stream of this run derives.
    let scn = Scenario::with_seed(42);
    let mut machine = scn.machine(CpuModel::CometLake);
    let spec = machine.cpu().spec().clone();
    println!(
        "booted {} ({} cores, microcode {:#x})",
        spec.name, spec.cores, spec.microcode
    );

    // 2. Characterize (coarse grid for the quickstart; the repro binary
    //    runs the paper's full 1 mV × 0.1 GHz sweep).
    println!("\ncharacterizing safe/unsafe states…");
    let run = characterize(&mut machine, &SweepConfig::coarse())?;
    println!(
        "  {} grid points, {} crashes, {} simulated",
        run.records.len(),
        run.crashes,
        run.duration
    );
    for (f, band) in run.map.iter().filter(|(f, _)| f.mhz() % 1_000 == 0) {
        println!(
            "  {f}: first faults at {} mV, crash at {} mV",
            band.fault_onset_mv.map_or("—".into(), |o| o.to_string()),
            band.crash_mv.map_or("—".into(), |c| c.to_string()),
        );
    }
    let mss = run.map.maximal_safe_offset_mv(5).expect("characterized");
    println!("  maximal safe state (5 mV margin): {mss} mV");

    // 3. Deploy the polling countermeasure.
    let deployed = scn.deploy(
        &mut machine,
        &run.map,
        Deployment::PollingModule(PollConfig::default()),
    )?;
    println!("\ndeployed '{MODULE_NAME}' (200 µs polling)");
    let report = AttestationReport::collect(&machine);
    println!(
        "  attestation: module visible = {}, OCM still enabled = {}",
        report.acceptable_to_plugvolt_verifier(MODULE_NAME),
        !report.ocm_disabled
    );

    // 4. Attack: pin fast, undervolt deep, wait, then watch.
    let mut cpupower = CpuPower::new(&machine);
    cpupower.frequency_set(&mut machine, CoreId(0), spec.freq_table.max())?;
    machine.advance(SimDuration::from_millis(1)); // rail settles at the new P-state
    let dev = MsrDev::open(&machine, CoreId(0))?;
    let attack = OcRequest::write_offset(-250, Plane::Core).encode();
    println!(
        "\nadversary writes −250 mV to MSR 0x150 at {}…",
        spec.freq_table.max()
    );
    dev.write(&mut machine, Msr::OC_MAILBOX, attack)?;

    let nominal = spec.nominal_voltage_mv(spec.freq_table.max());
    let mut min_v = f64::INFINITY;
    for _ in 0..500 {
        machine.advance(SimDuration::from_micros(10));
        min_v = min_v.min(machine.cpu().core_voltage_mv(machine.now()));
    }
    let stats = deployed.poll_stats.expect("polling stats");
    let stats = stats.borrow();
    println!(
        "  module detections: {}, restores: {}",
        stats.detections, stats.restores
    );
    println!(
        "  offset now: {} mV; rail never dipped below {:.1} mV (nominal {:.1})",
        machine.cpu().core_offset_mv(),
        min_v,
        nominal
    );

    // Victim integrity check.
    let now = machine.now();
    let faults = machine.cpu_mut().run_imul_loop(now, CoreId(0), 1_000_000)?;
    println!("  victim ran 1M imuls: {faults} faults");
    assert_eq!(faults, 0, "countermeasure must keep the victim fault-free");
    println!("\nattack neutralized; benign DVFS remains available.");
    Ok(())
}
