//! Plundervolt end to end: extract an RSA private key from an
//! *undefended* machine via DVFS faults + the Bellcore gcd, then show
//! the identical campaign failing against every countermeasure level.
//!
//! Run with: `cargo run --release --example plundervolt_key_extraction`

use plugvolt::prelude::*;
use plugvolt_attacks::prelude::*;
use plugvolt_bench::scenario::Scenario;
use plugvolt_cpu::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = CpuModel::CometLake;
    let scn = Scenario::with_seed(42);
    let map = scn.quick_map(model);

    println!("== phase 1: undefended machine ==");
    let mut machine = scn.machine(model);
    let report = run_rsa_attack(&mut machine, &PlundervoltConfig::default(), 1)?;
    println!(
        "  attack '{}': success={} after {} offset steps, {} faulty signatures, {} crashes",
        report.attack, report.success, report.attempts, report.faulty_events, report.crashes
    );
    if let Some(extracted) = &report.extracted {
        println!("  EXTRACTED: {extracted}");
    }
    assert!(report.success, "the undefended baseline must fall");

    println!("\n== phase 2: the same campaign against each deployment ==");
    for deployment in [
        Deployment::PollingModule(PollConfig::default()),
        Deployment::Microcode {
            revision: 0xf5,
            margin_mv: 5,
        },
        Deployment::HardwareMsr { margin_mv: 5 },
        Deployment::OcmDisable,
    ] {
        let mut machine = scn.machine(model);
        let deployed = scn.deploy(&mut machine, &map, deployment.clone())?;
        let report = run_rsa_attack(&mut machine, &PlundervoltConfig::default(), 1)?;
        let detections = deployed
            .poll_stats
            .as_ref()
            .map_or(0, |s| s.borrow().detections);
        println!(
            "  {:>14}: success={} faulty={} detections={} benign-DVFS-kept={}",
            deployment.label(),
            report.success,
            report.faulty_events,
            detections,
            deployment.preserves_benign_dvfs()
        );
        assert!(
            !report.success,
            "{} must block the attack",
            deployment.label()
        );
    }

    println!("\nall countermeasure levels neutralize Plundervolt; only the");
    println!("paper's levels keep DVFS available to benign software.");
    Ok(())
}
