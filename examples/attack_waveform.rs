//! Dump an attack/defense timeline as a VCD waveform.
//!
//! Records the core rail, the requested offset, the core frequency and
//! the characterized state classification while a Plundervolt write is
//! detected and neutralized — then writes an IEEE-1364 VCD you can open
//! in GTKWave (or any EDA waveform viewer) to *see* the countermeasure
//! win the race.
//!
//! Run with: `cargo run --release --example attack_waveform`

use plugvolt::prelude::*;
use plugvolt_bench::scenario::Scenario;
use plugvolt_cpu::prelude::*;
use plugvolt_des::time::SimDuration;
use plugvolt_des::vcd::{SignalKind, Value, VcdRecorder};
use plugvolt_kernel::prelude::*;
use plugvolt_msr::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = CpuModel::CometLake;
    let scn = Scenario::with_seed(7);
    let map = scn.quick_map(model);

    let mut vcd = VcdRecorder::new("plugvolt");
    let sig_rail = vcd.declare("core_rail_mv", SignalKind::Real);
    let sig_offset = vcd.declare("requested_offset_mv", SignalKind::Real);
    let sig_ratio = vcd.declare("core0_freq_ratio", SignalKind::Bus(8));
    let sig_unsafe = vcd.declare("state_unsafe", SignalKind::Wire);
    let sig_restores = vcd.declare("module_restores", SignalKind::Bus(16));

    for (label, defended) in [("undefended", false), ("defended", true)] {
        let mut machine = scn.machine(model);
        let stats = if defended {
            scn.deploy(
                &mut machine,
                &map,
                Deployment::PollingModule(PollConfig::default()),
            )?
            .poll_stats
        } else {
            None
        };
        let mut cpupower = CpuPower::new(&machine);
        cpupower.frequency_set_all(&mut machine, FreqMhz(4_900))?;
        machine.advance(SimDuration::from_millis(1));

        // One sampler closure, reused across the timeline.
        let sample = |machine: &Machine, vcd: &mut VcdRecorder, base: u64| {
            let t = plugvolt_des::time::SimTime::from_picos(base + machine.now().as_picos());
            let f = machine.cpu().core_freq(CoreId(0)).expect("alive");
            let offset = machine.cpu().core_offset_mv();
            vcd.record(
                t,
                sig_rail,
                Value::Real(machine.cpu().core_voltage_mv(machine.now())),
            );
            vcd.record(t, sig_offset, Value::Real(f64::from(offset)));
            vcd.record(t, sig_ratio, Value::Bits(u64::from(f.mhz() / 100)));
            let unsafe_now = map.classify(f, offset) != StateClass::Safe;
            vcd.record(t, sig_unsafe, Value::Bits(u64::from(unsafe_now)));
            let restores = stats.as_ref().map_or(0, |s| s.borrow().restores);
            vcd.record(t, sig_restores, Value::Bits(restores));
        };

        // Timeline: 0.5 ms quiet, attack write, 4 ms observed.
        let base = if defended { 10_000_000_000 } else { 0 }; // 10 ms apart
        for _ in 0..50 {
            machine.advance(SimDuration::from_micros(10));
            sample(&machine, &mut vcd, base);
        }
        let dev = MsrDev::open(&machine, CoreId(0))?;
        let attack = OcRequest::write_offset(-250, Plane::Core).encode();
        dev.write(&mut machine, Msr::OC_MAILBOX, attack)?;
        for _ in 0..400 {
            machine.advance(SimDuration::from_micros(10));
            sample(&machine, &mut vcd, base);
        }
        println!(
            "{label}: final offset {} mV, min-rail sampled in VCD",
            machine.cpu().core_offset_mv()
        );
    }

    let out = std::env::temp_dir().join("plugvolt-attack.vcd");
    std::fs::write(&out, vcd.render())?;
    println!(
        "\nwrote {} ({} value changes) — open with `gtkwave {}`",
        out.display(),
        vcd.change_count(),
        out.display()
    );
    println!("the undefended window (0–5 ms) shows the rail sagging 250 mV;");
    println!("the defended window (10–15 ms) shows the offset cleared within");
    println!("one 200 µs poll and the rail never moving.");
    Ok(())
}
