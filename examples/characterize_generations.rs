//! Characterize all three evaluated CPU generations (Figures 2–4) and
//! persist the maps as JSON artifacts — the S1 step a vendor or admin
//! would run once per SKU before deploying the countermeasure.
//!
//! Uses the frequency-sharded sweep engine: each frequency shard runs
//! on its own worker thread with a derived, labelled seed, so the
//! result is byte-identical whatever the worker count.
//!
//! Run with: `cargo run --release --example characterize_generations`

use plugvolt::prelude::*;
use plugvolt_bench::scenario::Scenario;
use plugvolt_cpu::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::env::temp_dir().join("plugvolt-maps");
    std::fs::create_dir_all(&out_dir)?;

    let scn = Scenario::with_seed(2024);
    let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    for model in CpuModel::ALL {
        let spec = model.spec();
        println!(
            "== {} ({}, microcode {:#x}) ==",
            spec.codename, spec.name, spec.microcode
        );
        let cfg = SweepConfig {
            offset_step_mv: 2,
            freq_step_mhz: 200,
            ..SweepConfig::default()
        };
        let run = scn.characterize(model, &cfg, workers)?;

        println!("  freq      onset(mV)  crash(mV)");
        for (f, band) in run.map.iter() {
            println!(
                "  {:<8}  {:>9}  {:>9}",
                f.to_string(),
                band.fault_onset_mv.map_or("-".into(), |o| o.to_string()),
                band.crash_mv.map_or("-".into(), |c| c.to_string()),
            );
        }
        let mss = MaximalSafeState::from_map(&run.map, 5);
        match &mss {
            Some(m) => println!(
                "  maximal safe state: {} mV (margin {} mV)",
                m.offset_mv, m.margin_mv
            ),
            None => println!("  maximal safe state: not certifiable"),
        }

        // Persist the artifact the kernel module would consume.
        let path = out_dir.join(format!(
            "{}.json",
            spec.codename.replace(' ', "-").to_lowercase()
        ));
        std::fs::write(&path, serde_json::to_string_pretty(&run.map)?)?;
        // Round-trip check: the countermeasure loads exactly what S1 wrote.
        let loaded: CharacterizationMap = serde_json::from_str(&std::fs::read_to_string(&path)?)?;
        assert_eq!(loaded, run.map);
        println!("  map persisted to {}\n", path.display());
    }
    println!("artifacts in {}", out_dir.display());
    Ok(())
}
