//! A laptop battery-saver daemon's afternoon, in simulation.
//!
//! Combines the whole power-management surface the paper wants to keep
//! available: C-states when idle, frequency scaling under partial load,
//! a benign undervolt on top — all while the Plug-Your-Volt polling
//! module guards the machine. RAPL-style energy accounting shows what
//! each measure is worth.
//!
//! Run with: `cargo run --release --example battery_saver`

use plugvolt::prelude::*;
use plugvolt_bench::scenario::Scenario;
use plugvolt_cpu::prelude::*;
use plugvolt_des::time::SimDuration;
use plugvolt_kernel::prelude::*;
use plugvolt_msr::prelude::*;

fn measure_window(machine: &mut Machine, window: SimDuration) -> f64 {
    let t0 = machine.now();
    let e0 = machine.cpu().package_energy_j(t0);
    machine.advance(window);
    let t1 = machine.now();
    machine.cpu().package_energy_j(t1) - e0
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = CpuModel::KabyLakeR;
    let scn = Scenario::with_seed(99);
    let map = scn.quick_map(model);
    let window = SimDuration::from_millis(400);

    let mut machine = scn.machine(model);
    scn.deploy(
        &mut machine,
        &map,
        Deployment::PollingModule(PollConfig::default()),
    )?;
    let mut cpupower = CpuPower::new(&machine);
    let mut cpuidle = CpuIdle::new(&machine);
    machine.advance(SimDuration::from_millis(2));

    println!("phase 1: flat out — all 4 cores at f_max, nominal voltage");
    cpupower.frequency_set_all(&mut machine, FreqMhz(3_400))?;
    machine.advance(SimDuration::from_millis(2));
    let e_burst = measure_window(&mut machine, window);
    println!(
        "  {:.2} J over {window} ({:.2} W)",
        e_burst,
        e_burst / window.as_secs_f64()
    );

    println!("\nphase 2: background load — 1.4 GHz on all cores");
    cpupower.frequency_set_all(&mut machine, FreqMhz(1_400))?;
    machine.advance(SimDuration::from_millis(2));
    let e_low = measure_window(&mut machine, window);
    println!(
        "  {:.2} J ({:.2} W) — frequency scaling saved {:.0}%",
        e_low,
        e_low / window.as_secs_f64(),
        (1.0 - e_low / e_burst) * 100.0
    );

    println!("\nphase 3: + benign undervolt (maximal safe state)");
    let mss = map.maximal_safe_offset_mv(10).expect("certifiable");
    let dev = MsrDev::open(&machine, CoreId(0))?;
    let req = OcRequest::write_offset(mss, Plane::Core).encode();
    dev.write(&mut machine, Msr::OC_MAILBOX, req)?;
    machine.advance(SimDuration::from_millis(3));
    let e_uv = measure_window(&mut machine, window);
    println!(
        "  {:.2} J ({:.2} W) at {mss} mV — undervolt saved another {:.0}%",
        e_uv,
        e_uv / window.as_secs_f64(),
        (1.0 - e_uv / e_low) * 100.0
    );
    assert_eq!(
        machine.cpu().core_offset_mv(),
        mss,
        "guard left the benign offset alone"
    );

    println!("\nphase 4: lid closed — three cores to C6");
    for c in 1..4 {
        cpuidle.enter(&mut machine, CoreId(c), CState::C6)?;
    }
    machine.advance(SimDuration::from_millis(3));
    let e_idle = measure_window(&mut machine, window);
    println!(
        "  {:.2} J ({:.2} W) — idling saved another {:.0}%",
        e_idle,
        e_idle / window.as_secs_f64(),
        (1.0 - e_idle / e_uv) * 100.0
    );

    println!("\nphase 5: malware strikes anyway (−260 mV at 3.4 GHz)");
    cpupower.frequency_set(&mut machine, CoreId(0), FreqMhz(3_400))?;
    let attack = OcRequest::write_offset(-260, Plane::Core).encode();
    dev.write(&mut machine, Msr::OC_MAILBOX, attack)?;
    machine.advance(SimDuration::from_millis(5));
    let now = machine.now();
    let faults = machine.cpu_mut().run_imul_loop(now, CoreId(0), 1_000_000)?;
    println!(
        "  offset now {} mV, victim faults: {faults}",
        machine.cpu().core_offset_mv()
    );
    assert_eq!(faults, 0, "the module must still protect");

    println!("\nfull power management remained available; the attack did not.");
    Ok(())
}
