#!/usr/bin/env bash
# Local CI for the Plug Your Volt reproduction. Entirely offline: every
# dependency is an in-tree path crate (see shims/), so this runs with no
# registry access. The GitHub workflow (.github/workflows/ci.yml) runs
# exactly this script — keep every gate here so CI and a developer's
# pre-push check can never disagree.
#
#   1. formatting          cargo fmt --check
#   2. static analysis     plugvolt-lint SARIF + baseline ratchet gate
#   3. lint-wall coverage  every workspace member opts into [workspace.lints]
#   4. hygiene             no build artifacts tracked by git
#   5. build               cargo build --release (whole workspace)
#   6. tests               cargo test -q (tier-1 suite + all members)
#   7. bench gate          plugvolt-cli bench --smoke vs committed BENCH.json
#   8. attribution smoke   plugvolt-cli bench --attr --smoke + Chrome trace
#   9. soak gate           plugvolt-cli soak --smoke + corpus replay
#  10. trace replay gate   committed MSR transcript replayed through the
#                          HAL replay backend (tape-clean + oracles +
#                          sim-differential byte identity)
#  11. golden gate         results/ regenerate bit-for-bit vs golden.manifest
set -euo pipefail
cd "$(dirname "$0")"

# Each step prints how long the previous one took, so a CI log doubles
# as a coarse per-stage timing profile.
ci_started=$SECONDS
step_started=$SECONDS
step() {
    printf '\n==> %s (previous step: %ds)\n' "$1" "$((SECONDS - step_started))"
    step_started=$SECONDS
}

step "cargo fmt --check"
cargo fmt --all --check

step "plugvolt-lint --workspace (SARIF + baseline ratchet)"
# Whole-workspace scan: symbol index, call graph, and the cross-file
# rules, reported as SARIF 2.1.0 and gated by the committed baseline.
# The exit status is the gate: a new error-severity finding fails, and
# so does a stale baseline entry whose finding has been fixed — the
# ratchet only shrinks. The SARIF log lands in target/plugvolt-lint.sarif
# and is uploaded as a CI artifact; the baseline gates the exit code but
# never censors the report. Suppressions: // plugvolt-lint: allow(<rule>)
mkdir -p target
cargo run -q -p plugvolt-analysis --bin plugvolt-lint -- --workspace \
    --format sarif --baseline results/lint-baseline.json \
    > target/plugvolt-lint.sarif

step "plugvolt-lint crates/telemetry"
# The telemetry crate instruments every hot path; hold it to the same
# determinism gate explicitly so a workspace-list regression cannot
# silently skip it.
cargo run -q -p plugvolt-analysis --bin plugvolt-lint -- --root crates/telemetry --json

step "every member opts into workspace lints"
# Portable replacement for the old GNU-only `grep -Pzq` probe, and it
# covers the whole workspace instead of one crate: the lint wall
# ([workspace.lints]: forbid unsafe_code, deny unused_must_use) only
# applies to members that carry `[lints] workspace = true`.
cargo run -q -p plugvolt-analysis --bin plugvolt-lint -- --check-workspace-lints

step "no build artifacts in git"
# target/ was purged from the index once; keep it out forever.
tracked=$(git ls-files target/ | wc -l)
if [ "$tracked" -ne 0 ]; then
    echo "git tracks $tracked file(s) under target/ — run 'git rm -r --cached target/'" >&2
    exit 1
fi

step "cargo build --release"
cargo build --release --workspace

step "host backend builds (plugvolt-hal)"
# The read-only Linux host backend (/dev/cpu/*/msr + sysfs cpufreq) is
# compile-gated on target_os = "linux"; build the HAL crate explicitly
# so a cfg regression can never hide behind the workspace build, and so
# the gate is self-describing in the CI log.
cargo build --release -p plugvolt-hal

step "cargo test -q"
cargo test -q --workspace

step "plugvolt-cli bench --smoke"
# Smoke-size perf harness run: validates the pinned BENCH.json schema
# and fails if any before/after speedup decayed to less than half the
# ratio the committed report records (speedups are host-normalized, so
# the comparison is meaningful on any machine).
./target/release/plugvolt-cli bench --smoke --baseline BENCH.json

step "plugvolt-cli bench --attr --smoke"
# Span-tracer attribution pass over a coarse characterize-grid run:
# prints the per-subsystem hot-path table (the DESIGN.md §5d evidence)
# and exports the Chrome trace-event JSON, which the workflow uploads
# as an artifact so any CI run's hot paths can be opened in Perfetto.
./target/release/plugvolt-cli bench --attr --smoke \
    --trace-out target/bench-smoke.trace.json

step "plugvolt-cli soak --smoke"
# Randomized attack campaigns vs all four deployment levels, judged by
# the three soak oracles (zero faults under §5 deployments, bounded
# exposure under polling, none-vs-polling non-interference), after
# replaying every pinned reproducer in results/fuzz-corpus/. Exits
# nonzero on any oracle violation or corpus regression; the run's own
# self-test (deliberately weakened poller) guards against the harness
# rotting into a rubber stamp.
./target/release/plugvolt-cli soak --smoke --corpus results/fuzz-corpus \
    --out target/soak-report.json

step "plugvolt-cli soak --backend replay (trace fixture)"
# Replays the committed MSR transcript through the HAL replay backend
# across all four deployment levels. Fails on any tape divergence,
# overrun or leftover, on any soak-oracle violation, and unless the
# replayed run's telemetry profiles and poll stats are byte-identical
# to a plain sim run — the differential proof that the sim and trace
# backends sit behind one seam with no behavioral drift.
./target/release/plugvolt-cli soak --backend replay \
    --trace results/traces/fixture.trace.jsonl

step "golden results match"
# Regenerates every results/ artifact into a temp dir and diffs the
# SHA-256 manifest; any drift in any pinned number fails the build.
# Intended drift: scripts/golden.sh update && git add results/
scripts/golden.sh check

step "all green"
printf 'total: %ds\n' "$((SECONDS - ci_started))"
