#!/usr/bin/env bash
# Local CI for the Plug Your Volt reproduction. Entirely offline: every
# dependency is an in-tree path crate (see shims/), so this runs with no
# registry access.
#
#   1. formatting          cargo fmt --check
#   2. static analysis     plugvolt-lint (determinism & MSR-safety gate)
#   3. hygiene             no build artifacts tracked by git
#   4. build               cargo build --release (whole workspace)
#   5. tests               cargo test -q (tier-1 suite + all members)
#   6. bench gate          plugvolt-cli bench --smoke vs committed BENCH.json
set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n==> %s\n' "$1"; }

step "cargo fmt --check"
cargo fmt --all --check

step "plugvolt-lint --workspace"
# JSON report for tooling; exit status is the gate (nonzero on any
# error-severity finding). Suppressions: // plugvolt-lint: allow(<rule>)
cargo run -q -p plugvolt-analysis --bin plugvolt-lint -- --workspace --json

step "plugvolt-lint crates/telemetry"
# The telemetry crate instruments every hot path; hold it to the same
# determinism gate explicitly so a workspace-list regression cannot
# silently skip it.
cargo run -q -p plugvolt-analysis --bin plugvolt-lint -- --root crates/telemetry --json

step "telemetry crate opts into workspace lints"
grep -Pzq '\[lints\]\nworkspace = true' crates/telemetry/Cargo.toml || {
    echo "crates/telemetry/Cargo.toml must contain '[lints] workspace = true'" >&2
    exit 1
}

step "no build artifacts in git"
# target/ was purged from the index once; keep it out forever.
tracked=$(git ls-files target/ | wc -l)
if [ "$tracked" -ne 0 ]; then
    echo "git tracks $tracked file(s) under target/ — run 'git rm -r --cached target/'" >&2
    exit 1
fi

step "cargo build --release"
cargo build --release --workspace

step "cargo test -q"
cargo test -q --workspace

step "plugvolt-cli bench --smoke"
# Smoke-size perf harness run: validates the pinned BENCH.json schema
# and fails if any before/after speedup decayed to less than half the
# ratio the committed report records (speedups are host-normalized, so
# the comparison is meaningful on any machine).
./target/release/plugvolt-cli bench --smoke --baseline BENCH.json

step "all green"
