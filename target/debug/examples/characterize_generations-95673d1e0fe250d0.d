/root/repo/target/debug/examples/characterize_generations-95673d1e0fe250d0.d: examples/characterize_generations.rs

/root/repo/target/debug/examples/characterize_generations-95673d1e0fe250d0: examples/characterize_generations.rs

examples/characterize_generations.rs:
