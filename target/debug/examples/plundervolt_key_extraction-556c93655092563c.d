/root/repo/target/debug/examples/plundervolt_key_extraction-556c93655092563c.d: examples/plundervolt_key_extraction.rs

/root/repo/target/debug/examples/plundervolt_key_extraction-556c93655092563c: examples/plundervolt_key_extraction.rs

examples/plundervolt_key_extraction.rs:
