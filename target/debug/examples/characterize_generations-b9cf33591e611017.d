/root/repo/target/debug/examples/characterize_generations-b9cf33591e611017.d: examples/characterize_generations.rs

/root/repo/target/debug/examples/characterize_generations-b9cf33591e611017: examples/characterize_generations.rs

examples/characterize_generations.rs:
