/root/repo/target/debug/examples/benign_undervolting-a2b5a419c61c236c.d: examples/benign_undervolting.rs

/root/repo/target/debug/examples/benign_undervolting-a2b5a419c61c236c: examples/benign_undervolting.rs

examples/benign_undervolting.rs:
