/root/repo/target/debug/examples/benign_undervolting-39bef9ecfbcec291.d: examples/benign_undervolting.rs

/root/repo/target/debug/examples/benign_undervolting-39bef9ecfbcec291: examples/benign_undervolting.rs

examples/benign_undervolting.rs:
