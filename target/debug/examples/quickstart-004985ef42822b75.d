/root/repo/target/debug/examples/quickstart-004985ef42822b75.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-004985ef42822b75: examples/quickstart.rs

examples/quickstart.rs:
