/root/repo/target/debug/examples/attack_waveform-d11ebf00e0c9d70f.d: examples/attack_waveform.rs

/root/repo/target/debug/examples/attack_waveform-d11ebf00e0c9d70f: examples/attack_waveform.rs

examples/attack_waveform.rs:
