/root/repo/target/debug/examples/attack_waveform-10893577f3959115.d: examples/attack_waveform.rs

/root/repo/target/debug/examples/attack_waveform-10893577f3959115: examples/attack_waveform.rs

examples/attack_waveform.rs:
