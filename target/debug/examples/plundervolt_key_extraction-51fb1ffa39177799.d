/root/repo/target/debug/examples/plundervolt_key_extraction-51fb1ffa39177799.d: examples/plundervolt_key_extraction.rs

/root/repo/target/debug/examples/plundervolt_key_extraction-51fb1ffa39177799: examples/plundervolt_key_extraction.rs

examples/plundervolt_key_extraction.rs:
