/root/repo/target/debug/examples/battery_saver-8562162275bab42d.d: examples/battery_saver.rs

/root/repo/target/debug/examples/battery_saver-8562162275bab42d: examples/battery_saver.rs

examples/battery_saver.rs:
