/root/repo/target/debug/examples/battery_saver-2ed792d0a018e5a5.d: examples/battery_saver.rs

/root/repo/target/debug/examples/battery_saver-2ed792d0a018e5a5: examples/battery_saver.rs

examples/battery_saver.rs:
