/root/repo/target/debug/examples/quickstart-171a07d9609d3ee4.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-171a07d9609d3ee4: examples/quickstart.rs

examples/quickstart.rs:
