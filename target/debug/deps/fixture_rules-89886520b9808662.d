/root/repo/target/debug/deps/fixture_rules-89886520b9808662.d: crates/analysis/tests/fixture_rules.rs crates/analysis/tests/fixtures/no_wall_clock.rs crates/analysis/tests/fixtures/no_ambient_rng.rs crates/analysis/tests/fixtures/no_unordered_iteration.rs crates/analysis/tests/fixtures/msr_write_discipline.rs crates/analysis/tests/fixtures/no_unwrap_in_lib.rs crates/analysis/tests/fixtures/float_accumulation_order.rs crates/analysis/tests/fixtures/clean.rs crates/analysis/tests/fixtures/suppressed.rs

/root/repo/target/debug/deps/fixture_rules-89886520b9808662: crates/analysis/tests/fixture_rules.rs crates/analysis/tests/fixtures/no_wall_clock.rs crates/analysis/tests/fixtures/no_ambient_rng.rs crates/analysis/tests/fixtures/no_unordered_iteration.rs crates/analysis/tests/fixtures/msr_write_discipline.rs crates/analysis/tests/fixtures/no_unwrap_in_lib.rs crates/analysis/tests/fixtures/float_accumulation_order.rs crates/analysis/tests/fixtures/clean.rs crates/analysis/tests/fixtures/suppressed.rs

crates/analysis/tests/fixture_rules.rs:
crates/analysis/tests/fixtures/no_wall_clock.rs:
crates/analysis/tests/fixtures/no_ambient_rng.rs:
crates/analysis/tests/fixtures/no_unordered_iteration.rs:
crates/analysis/tests/fixtures/msr_write_discipline.rs:
crates/analysis/tests/fixtures/no_unwrap_in_lib.rs:
crates/analysis/tests/fixtures/float_accumulation_order.rs:
crates/analysis/tests/fixtures/clean.rs:
crates/analysis/tests/fixtures/suppressed.rs:
