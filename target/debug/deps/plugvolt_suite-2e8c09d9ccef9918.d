/root/repo/target/debug/deps/plugvolt_suite-2e8c09d9ccef9918.d: src/lib.rs

/root/repo/target/debug/deps/plugvolt_suite-2e8c09d9ccef9918: src/lib.rs

src/lib.rs:
