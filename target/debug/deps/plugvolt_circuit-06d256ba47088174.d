/root/repo/target/debug/deps/plugvolt_circuit-06d256ba47088174.d: crates/circuit/src/lib.rs crates/circuit/src/delay.rs crates/circuit/src/fault.rs crates/circuit/src/flipflop.rs crates/circuit/src/multiplier.rs crates/circuit/src/netlist.rs crates/circuit/src/path.rs crates/circuit/src/timing.rs

/root/repo/target/debug/deps/plugvolt_circuit-06d256ba47088174: crates/circuit/src/lib.rs crates/circuit/src/delay.rs crates/circuit/src/fault.rs crates/circuit/src/flipflop.rs crates/circuit/src/multiplier.rs crates/circuit/src/netlist.rs crates/circuit/src/path.rs crates/circuit/src/timing.rs

crates/circuit/src/lib.rs:
crates/circuit/src/delay.rs:
crates/circuit/src/fault.rs:
crates/circuit/src/flipflop.rs:
crates/circuit/src/multiplier.rs:
crates/circuit/src/netlist.rs:
crates/circuit/src/path.rs:
crates/circuit/src/timing.rs:
