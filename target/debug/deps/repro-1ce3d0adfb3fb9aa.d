/root/repo/target/debug/deps/repro-1ce3d0adfb3fb9aa.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-1ce3d0adfb3fb9aa: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
