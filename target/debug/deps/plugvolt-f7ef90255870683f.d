/root/repo/target/debug/deps/plugvolt-f7ef90255870683f.d: crates/core/src/lib.rs crates/core/src/characterize.rs crates/core/src/charmap.rs crates/core/src/deploy.rs crates/core/src/maximal.rs crates/core/src/poll.rs crates/core/src/state.rs

/root/repo/target/debug/deps/libplugvolt-f7ef90255870683f.rlib: crates/core/src/lib.rs crates/core/src/characterize.rs crates/core/src/charmap.rs crates/core/src/deploy.rs crates/core/src/maximal.rs crates/core/src/poll.rs crates/core/src/state.rs

/root/repo/target/debug/deps/libplugvolt-f7ef90255870683f.rmeta: crates/core/src/lib.rs crates/core/src/characterize.rs crates/core/src/charmap.rs crates/core/src/deploy.rs crates/core/src/maximal.rs crates/core/src/poll.rs crates/core/src/state.rs

crates/core/src/lib.rs:
crates/core/src/characterize.rs:
crates/core/src/charmap.rs:
crates/core/src/deploy.rs:
crates/core/src/maximal.rs:
crates/core/src/poll.rs:
crates/core/src/state.rs:
