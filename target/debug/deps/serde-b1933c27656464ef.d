/root/repo/target/debug/deps/serde-b1933c27656464ef.d: shims/serde/src/lib.rs shims/serde/src/json.rs

/root/repo/target/debug/deps/libserde-b1933c27656464ef.rlib: shims/serde/src/lib.rs shims/serde/src/json.rs

/root/repo/target/debug/deps/libserde-b1933c27656464ef.rmeta: shims/serde/src/lib.rs shims/serde/src/json.rs

shims/serde/src/lib.rs:
shims/serde/src/json.rs:
