/root/repo/target/debug/deps/plugvolt_suite-3bb128f3be9a3b75.d: src/lib.rs

/root/repo/target/debug/deps/libplugvolt_suite-3bb128f3be9a3b75.rlib: src/lib.rs

/root/repo/target/debug/deps/libplugvolt_suite-3bb128f3be9a3b75.rmeta: src/lib.rs

src/lib.rs:
