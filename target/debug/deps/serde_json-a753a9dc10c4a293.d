/root/repo/target/debug/deps/serde_json-a753a9dc10c4a293.d: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-a753a9dc10c4a293.rlib: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-a753a9dc10c4a293.rmeta: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
