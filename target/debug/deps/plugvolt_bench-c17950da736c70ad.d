/root/repo/target/debug/deps/plugvolt_bench-c17950da736c70ad.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/text.rs

/root/repo/target/debug/deps/plugvolt_bench-c17950da736c70ad: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/text.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/text.rs:
