/root/repo/target/debug/deps/end_to_end-45d2ac69d19872d2.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-45d2ac69d19872d2: tests/end_to_end.rs

tests/end_to_end.rs:
