/root/repo/target/debug/deps/repro-b6396f574d0c3b36.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-b6396f574d0c3b36: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
