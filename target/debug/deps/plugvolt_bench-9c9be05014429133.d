/root/repo/target/debug/deps/plugvolt_bench-9c9be05014429133.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/text.rs

/root/repo/target/debug/deps/libplugvolt_bench-9c9be05014429133.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/text.rs

/root/repo/target/debug/deps/libplugvolt_bench-9c9be05014429133.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/text.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/text.rs:
