/root/repo/target/debug/deps/determinism-c972fb164e222798.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-c972fb164e222798: tests/determinism.rs

tests/determinism.rs:
