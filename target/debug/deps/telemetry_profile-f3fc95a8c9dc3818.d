/root/repo/target/debug/deps/telemetry_profile-f3fc95a8c9dc3818.d: crates/bench/tests/telemetry_profile.rs

/root/repo/target/debug/deps/telemetry_profile-f3fc95a8c9dc3818: crates/bench/tests/telemetry_profile.rs

crates/bench/tests/telemetry_profile.rs:
