/root/repo/target/debug/deps/plugvolt_des-8da3a989639ee78d.d: crates/des/src/lib.rs crates/des/src/queue.rs crates/des/src/rng.rs crates/des/src/sim.rs crates/des/src/stats.rs crates/des/src/time.rs crates/des/src/trace.rs crates/des/src/vcd.rs

/root/repo/target/debug/deps/plugvolt_des-8da3a989639ee78d: crates/des/src/lib.rs crates/des/src/queue.rs crates/des/src/rng.rs crates/des/src/sim.rs crates/des/src/stats.rs crates/des/src/time.rs crates/des/src/trace.rs crates/des/src/vcd.rs

crates/des/src/lib.rs:
crates/des/src/queue.rs:
crates/des/src/rng.rs:
crates/des/src/sim.rs:
crates/des/src/stats.rs:
crates/des/src/time.rs:
crates/des/src/trace.rs:
crates/des/src/vcd.rs:
