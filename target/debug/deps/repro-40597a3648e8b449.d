/root/repo/target/debug/deps/repro-40597a3648e8b449.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-40597a3648e8b449: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
