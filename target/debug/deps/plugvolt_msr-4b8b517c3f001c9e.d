/root/repo/target/debug/deps/plugvolt_msr-4b8b517c3f001c9e.d: crates/msr/src/lib.rs crates/msr/src/addr.rs crates/msr/src/file.rs crates/msr/src/oc_mailbox.rs crates/msr/src/offset_limit.rs crates/msr/src/perf_status.rs crates/msr/src/power_limit.rs

/root/repo/target/debug/deps/plugvolt_msr-4b8b517c3f001c9e: crates/msr/src/lib.rs crates/msr/src/addr.rs crates/msr/src/file.rs crates/msr/src/oc_mailbox.rs crates/msr/src/offset_limit.rs crates/msr/src/perf_status.rs crates/msr/src/power_limit.rs

crates/msr/src/lib.rs:
crates/msr/src/addr.rs:
crates/msr/src/file.rs:
crates/msr/src/oc_mailbox.rs:
crates/msr/src/offset_limit.rs:
crates/msr/src/perf_status.rs:
crates/msr/src/power_limit.rs:
