/root/repo/target/debug/deps/plugvolt_lint-7373d3f6310c007b.d: crates/analysis/src/bin/plugvolt-lint.rs

/root/repo/target/debug/deps/plugvolt_lint-7373d3f6310c007b: crates/analysis/src/bin/plugvolt-lint.rs

crates/analysis/src/bin/plugvolt-lint.rs:
