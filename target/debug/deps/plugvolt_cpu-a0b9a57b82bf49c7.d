/root/repo/target/debug/deps/plugvolt_cpu-a0b9a57b82bf49c7.d: crates/cpu/src/lib.rs crates/cpu/src/core.rs crates/cpu/src/energy.rs crates/cpu/src/exec.rs crates/cpu/src/freq.rs crates/cpu/src/microcode.rs crates/cpu/src/model.rs crates/cpu/src/package.rs crates/cpu/src/ucode_blob.rs crates/cpu/src/vr.rs

/root/repo/target/debug/deps/libplugvolt_cpu-a0b9a57b82bf49c7.rlib: crates/cpu/src/lib.rs crates/cpu/src/core.rs crates/cpu/src/energy.rs crates/cpu/src/exec.rs crates/cpu/src/freq.rs crates/cpu/src/microcode.rs crates/cpu/src/model.rs crates/cpu/src/package.rs crates/cpu/src/ucode_blob.rs crates/cpu/src/vr.rs

/root/repo/target/debug/deps/libplugvolt_cpu-a0b9a57b82bf49c7.rmeta: crates/cpu/src/lib.rs crates/cpu/src/core.rs crates/cpu/src/energy.rs crates/cpu/src/exec.rs crates/cpu/src/freq.rs crates/cpu/src/microcode.rs crates/cpu/src/model.rs crates/cpu/src/package.rs crates/cpu/src/ucode_blob.rs crates/cpu/src/vr.rs

crates/cpu/src/lib.rs:
crates/cpu/src/core.rs:
crates/cpu/src/energy.rs:
crates/cpu/src/exec.rs:
crates/cpu/src/freq.rs:
crates/cpu/src/microcode.rs:
crates/cpu/src/model.rs:
crates/cpu/src/package.rs:
crates/cpu/src/ucode_blob.rs:
crates/cpu/src/vr.rs:
