/root/repo/target/debug/deps/plugvolt_suite-82a1081858a83687.d: src/lib.rs

/root/repo/target/debug/deps/plugvolt_suite-82a1081858a83687: src/lib.rs

src/lib.rs:
