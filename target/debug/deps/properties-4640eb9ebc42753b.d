/root/repo/target/debug/deps/properties-4640eb9ebc42753b.d: tests/properties.rs

/root/repo/target/debug/deps/properties-4640eb9ebc42753b: tests/properties.rs

tests/properties.rs:
