/root/repo/target/debug/deps/defense_matrix-3222f02d5f15a064.d: tests/defense_matrix.rs

/root/repo/target/debug/deps/defense_matrix-3222f02d5f15a064: tests/defense_matrix.rs

tests/defense_matrix.rs:
