/root/repo/target/debug/deps/robustness-e8d92534d02799fc.d: tests/robustness.rs

/root/repo/target/debug/deps/robustness-e8d92534d02799fc: tests/robustness.rs

tests/robustness.rs:
