/root/repo/target/debug/deps/plugvolt_msr-8bca13f480b01dae.d: crates/msr/src/lib.rs crates/msr/src/addr.rs crates/msr/src/file.rs crates/msr/src/oc_mailbox.rs crates/msr/src/offset_limit.rs crates/msr/src/perf_status.rs crates/msr/src/power_limit.rs

/root/repo/target/debug/deps/libplugvolt_msr-8bca13f480b01dae.rlib: crates/msr/src/lib.rs crates/msr/src/addr.rs crates/msr/src/file.rs crates/msr/src/oc_mailbox.rs crates/msr/src/offset_limit.rs crates/msr/src/perf_status.rs crates/msr/src/power_limit.rs

/root/repo/target/debug/deps/libplugvolt_msr-8bca13f480b01dae.rmeta: crates/msr/src/lib.rs crates/msr/src/addr.rs crates/msr/src/file.rs crates/msr/src/oc_mailbox.rs crates/msr/src/offset_limit.rs crates/msr/src/perf_status.rs crates/msr/src/power_limit.rs

crates/msr/src/lib.rs:
crates/msr/src/addr.rs:
crates/msr/src/file.rs:
crates/msr/src/oc_mailbox.rs:
crates/msr/src/offset_limit.rs:
crates/msr/src/perf_status.rs:
crates/msr/src/power_limit.rs:
