/root/repo/target/debug/deps/plugvolt_circuit-3e4812c13e67a25f.d: crates/circuit/src/lib.rs crates/circuit/src/delay.rs crates/circuit/src/fault.rs crates/circuit/src/flipflop.rs crates/circuit/src/multiplier.rs crates/circuit/src/netlist.rs crates/circuit/src/path.rs crates/circuit/src/timing.rs

/root/repo/target/debug/deps/libplugvolt_circuit-3e4812c13e67a25f.rlib: crates/circuit/src/lib.rs crates/circuit/src/delay.rs crates/circuit/src/fault.rs crates/circuit/src/flipflop.rs crates/circuit/src/multiplier.rs crates/circuit/src/netlist.rs crates/circuit/src/path.rs crates/circuit/src/timing.rs

/root/repo/target/debug/deps/libplugvolt_circuit-3e4812c13e67a25f.rmeta: crates/circuit/src/lib.rs crates/circuit/src/delay.rs crates/circuit/src/fault.rs crates/circuit/src/flipflop.rs crates/circuit/src/multiplier.rs crates/circuit/src/netlist.rs crates/circuit/src/path.rs crates/circuit/src/timing.rs

crates/circuit/src/lib.rs:
crates/circuit/src/delay.rs:
crates/circuit/src/fault.rs:
crates/circuit/src/flipflop.rs:
crates/circuit/src/multiplier.rs:
crates/circuit/src/netlist.rs:
crates/circuit/src/path.rs:
crates/circuit/src/timing.rs:
