/root/repo/target/debug/deps/plugvolt-b515de10d0d83eba.d: crates/core/src/lib.rs crates/core/src/characterize.rs crates/core/src/charmap.rs crates/core/src/deploy.rs crates/core/src/maximal.rs crates/core/src/poll.rs crates/core/src/state.rs

/root/repo/target/debug/deps/libplugvolt-b515de10d0d83eba.rlib: crates/core/src/lib.rs crates/core/src/characterize.rs crates/core/src/charmap.rs crates/core/src/deploy.rs crates/core/src/maximal.rs crates/core/src/poll.rs crates/core/src/state.rs

/root/repo/target/debug/deps/libplugvolt-b515de10d0d83eba.rmeta: crates/core/src/lib.rs crates/core/src/characterize.rs crates/core/src/charmap.rs crates/core/src/deploy.rs crates/core/src/maximal.rs crates/core/src/poll.rs crates/core/src/state.rs

crates/core/src/lib.rs:
crates/core/src/characterize.rs:
crates/core/src/charmap.rs:
crates/core/src/deploy.rs:
crates/core/src/maximal.rs:
crates/core/src/poll.rs:
crates/core/src/state.rs:
