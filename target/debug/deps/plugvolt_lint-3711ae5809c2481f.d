/root/repo/target/debug/deps/plugvolt_lint-3711ae5809c2481f.d: crates/analysis/src/bin/plugvolt-lint.rs

/root/repo/target/debug/deps/plugvolt_lint-3711ae5809c2481f: crates/analysis/src/bin/plugvolt-lint.rs

crates/analysis/src/bin/plugvolt-lint.rs:
