/root/repo/target/debug/deps/plugvolt_workloads-7ce76cc093dcd5e6.d: crates/workloads/src/lib.rs crates/workloads/src/overhead.rs crates/workloads/src/rate.rs crates/workloads/src/suite.rs

/root/repo/target/debug/deps/plugvolt_workloads-7ce76cc093dcd5e6: crates/workloads/src/lib.rs crates/workloads/src/overhead.rs crates/workloads/src/rate.rs crates/workloads/src/suite.rs

crates/workloads/src/lib.rs:
crates/workloads/src/overhead.rs:
crates/workloads/src/rate.rs:
crates/workloads/src/suite.rs:
