/root/repo/target/debug/deps/properties-902e584869d1ac62.d: tests/properties.rs

/root/repo/target/debug/deps/properties-902e584869d1ac62: tests/properties.rs

tests/properties.rs:
