/root/repo/target/debug/deps/two_thread-cb715ef9081836a9.d: tests/two_thread.rs

/root/repo/target/debug/deps/two_thread-cb715ef9081836a9: tests/two_thread.rs

tests/two_thread.rs:
