/root/repo/target/debug/deps/two_thread-d5e8fee188528748.d: tests/two_thread.rs

/root/repo/target/debug/deps/two_thread-d5e8fee188528748: tests/two_thread.rs

tests/two_thread.rs:
