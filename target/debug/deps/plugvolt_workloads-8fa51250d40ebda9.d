/root/repo/target/debug/deps/plugvolt_workloads-8fa51250d40ebda9.d: crates/workloads/src/lib.rs crates/workloads/src/overhead.rs crates/workloads/src/rate.rs crates/workloads/src/suite.rs

/root/repo/target/debug/deps/libplugvolt_workloads-8fa51250d40ebda9.rlib: crates/workloads/src/lib.rs crates/workloads/src/overhead.rs crates/workloads/src/rate.rs crates/workloads/src/suite.rs

/root/repo/target/debug/deps/libplugvolt_workloads-8fa51250d40ebda9.rmeta: crates/workloads/src/lib.rs crates/workloads/src/overhead.rs crates/workloads/src/rate.rs crates/workloads/src/suite.rs

crates/workloads/src/lib.rs:
crates/workloads/src/overhead.rs:
crates/workloads/src/rate.rs:
crates/workloads/src/suite.rs:
