/root/repo/target/debug/deps/plugvolt_kernel-9a5f96782af3030f.d: crates/kernel/src/lib.rs crates/kernel/src/cpufreq.rs crates/kernel/src/cpuidle.rs crates/kernel/src/cpupower.rs crates/kernel/src/machine.rs crates/kernel/src/msr_dev.rs crates/kernel/src/sched.rs crates/kernel/src/sgx.rs

/root/repo/target/debug/deps/plugvolt_kernel-9a5f96782af3030f: crates/kernel/src/lib.rs crates/kernel/src/cpufreq.rs crates/kernel/src/cpuidle.rs crates/kernel/src/cpupower.rs crates/kernel/src/machine.rs crates/kernel/src/msr_dev.rs crates/kernel/src/sched.rs crates/kernel/src/sgx.rs

crates/kernel/src/lib.rs:
crates/kernel/src/cpufreq.rs:
crates/kernel/src/cpuidle.rs:
crates/kernel/src/cpupower.rs:
crates/kernel/src/machine.rs:
crates/kernel/src/msr_dev.rs:
crates/kernel/src/sched.rs:
crates/kernel/src/sgx.rs:
