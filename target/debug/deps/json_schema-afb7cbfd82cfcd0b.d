/root/repo/target/debug/deps/json_schema-afb7cbfd82cfcd0b.d: crates/analysis/tests/json_schema.rs

/root/repo/target/debug/deps/json_schema-afb7cbfd82cfcd0b: crates/analysis/tests/json_schema.rs

crates/analysis/tests/json_schema.rs:
