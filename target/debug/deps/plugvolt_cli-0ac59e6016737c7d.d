/root/repo/target/debug/deps/plugvolt_cli-0ac59e6016737c7d.d: crates/bench/src/bin/plugvolt-cli.rs

/root/repo/target/debug/deps/plugvolt_cli-0ac59e6016737c7d: crates/bench/src/bin/plugvolt-cli.rs

crates/bench/src/bin/plugvolt-cli.rs:
