/root/repo/target/debug/deps/json_schema-753c36fe96676932.d: crates/telemetry/tests/json_schema.rs

/root/repo/target/debug/deps/json_schema-753c36fe96676932: crates/telemetry/tests/json_schema.rs

crates/telemetry/tests/json_schema.rs:
