/root/repo/target/debug/deps/plugvolt_cli-b085339ca23af96f.d: crates/bench/src/bin/plugvolt-cli.rs

/root/repo/target/debug/deps/plugvolt_cli-b085339ca23af96f: crates/bench/src/bin/plugvolt-cli.rs

crates/bench/src/bin/plugvolt-cli.rs:
