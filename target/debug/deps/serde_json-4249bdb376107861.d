/root/repo/target/debug/deps/serde_json-4249bdb376107861.d: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-4249bdb376107861: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
