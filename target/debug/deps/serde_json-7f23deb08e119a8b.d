/root/repo/target/debug/deps/serde_json-7f23deb08e119a8b.d: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-7f23deb08e119a8b.rlib: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-7f23deb08e119a8b.rmeta: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
