/root/repo/target/debug/deps/plugvolt_workloads-3fd9434369b6f00d.d: crates/workloads/src/lib.rs crates/workloads/src/overhead.rs crates/workloads/src/rate.rs crates/workloads/src/suite.rs

/root/repo/target/debug/deps/plugvolt_workloads-3fd9434369b6f00d: crates/workloads/src/lib.rs crates/workloads/src/overhead.rs crates/workloads/src/rate.rs crates/workloads/src/suite.rs

crates/workloads/src/lib.rs:
crates/workloads/src/overhead.rs:
crates/workloads/src/rate.rs:
crates/workloads/src/suite.rs:
