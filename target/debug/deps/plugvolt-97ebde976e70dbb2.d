/root/repo/target/debug/deps/plugvolt-97ebde976e70dbb2.d: crates/core/src/lib.rs crates/core/src/characterize.rs crates/core/src/charmap.rs crates/core/src/deploy.rs crates/core/src/maximal.rs crates/core/src/poll.rs crates/core/src/state.rs

/root/repo/target/debug/deps/plugvolt-97ebde976e70dbb2: crates/core/src/lib.rs crates/core/src/characterize.rs crates/core/src/charmap.rs crates/core/src/deploy.rs crates/core/src/maximal.rs crates/core/src/poll.rs crates/core/src/state.rs

crates/core/src/lib.rs:
crates/core/src/characterize.rs:
crates/core/src/charmap.rs:
crates/core/src/deploy.rs:
crates/core/src/maximal.rs:
crates/core/src/poll.rs:
crates/core/src/state.rs:
