/root/repo/target/debug/deps/end_to_end-0cf881b5360d536b.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-0cf881b5360d536b: tests/end_to_end.rs

tests/end_to_end.rs:
