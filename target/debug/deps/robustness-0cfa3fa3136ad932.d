/root/repo/target/debug/deps/robustness-0cfa3fa3136ad932.d: tests/robustness.rs

/root/repo/target/debug/deps/robustness-0cfa3fa3136ad932: tests/robustness.rs

tests/robustness.rs:
