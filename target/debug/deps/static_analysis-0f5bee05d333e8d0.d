/root/repo/target/debug/deps/static_analysis-0f5bee05d333e8d0.d: tests/static_analysis.rs

/root/repo/target/debug/deps/static_analysis-0f5bee05d333e8d0: tests/static_analysis.rs

tests/static_analysis.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
