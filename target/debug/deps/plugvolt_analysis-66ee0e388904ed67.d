/root/repo/target/debug/deps/plugvolt_analysis-66ee0e388904ed67.d: crates/analysis/src/lib.rs crates/analysis/src/findings.rs crates/analysis/src/report.rs crates/analysis/src/rules.rs crates/analysis/src/runner.rs crates/analysis/src/source.rs

/root/repo/target/debug/deps/libplugvolt_analysis-66ee0e388904ed67.rlib: crates/analysis/src/lib.rs crates/analysis/src/findings.rs crates/analysis/src/report.rs crates/analysis/src/rules.rs crates/analysis/src/runner.rs crates/analysis/src/source.rs

/root/repo/target/debug/deps/libplugvolt_analysis-66ee0e388904ed67.rmeta: crates/analysis/src/lib.rs crates/analysis/src/findings.rs crates/analysis/src/report.rs crates/analysis/src/rules.rs crates/analysis/src/runner.rs crates/analysis/src/source.rs

crates/analysis/src/lib.rs:
crates/analysis/src/findings.rs:
crates/analysis/src/report.rs:
crates/analysis/src/rules.rs:
crates/analysis/src/runner.rs:
crates/analysis/src/source.rs:
