/root/repo/target/debug/deps/plugvolt_workloads-2f518a67338adfbf.d: crates/workloads/src/lib.rs crates/workloads/src/overhead.rs crates/workloads/src/rate.rs crates/workloads/src/suite.rs

/root/repo/target/debug/deps/libplugvolt_workloads-2f518a67338adfbf.rlib: crates/workloads/src/lib.rs crates/workloads/src/overhead.rs crates/workloads/src/rate.rs crates/workloads/src/suite.rs

/root/repo/target/debug/deps/libplugvolt_workloads-2f518a67338adfbf.rmeta: crates/workloads/src/lib.rs crates/workloads/src/overhead.rs crates/workloads/src/rate.rs crates/workloads/src/suite.rs

crates/workloads/src/lib.rs:
crates/workloads/src/overhead.rs:
crates/workloads/src/rate.rs:
crates/workloads/src/suite.rs:
