/root/repo/target/debug/deps/plugvolt_cli-49dc2f57f4163171.d: crates/bench/src/bin/plugvolt-cli.rs

/root/repo/target/debug/deps/plugvolt_cli-49dc2f57f4163171: crates/bench/src/bin/plugvolt-cli.rs

crates/bench/src/bin/plugvolt-cli.rs:
