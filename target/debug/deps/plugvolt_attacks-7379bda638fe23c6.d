/root/repo/target/debug/deps/plugvolt_attacks-7379bda638fe23c6.d: crates/attacks/src/lib.rs crates/attacks/src/cacheplane.rs crates/attacks/src/campaign.rs crates/attacks/src/clkscrew.rs crates/attacks/src/crypto/mod.rs crates/attacks/src/crypto/aes.rs crates/attacks/src/crypto/rsa.rs crates/attacks/src/minefield.rs crates/attacks/src/plundervolt.rs crates/attacks/src/v0ltpwn.rs crates/attacks/src/voltjockey.rs

/root/repo/target/debug/deps/libplugvolt_attacks-7379bda638fe23c6.rlib: crates/attacks/src/lib.rs crates/attacks/src/cacheplane.rs crates/attacks/src/campaign.rs crates/attacks/src/clkscrew.rs crates/attacks/src/crypto/mod.rs crates/attacks/src/crypto/aes.rs crates/attacks/src/crypto/rsa.rs crates/attacks/src/minefield.rs crates/attacks/src/plundervolt.rs crates/attacks/src/v0ltpwn.rs crates/attacks/src/voltjockey.rs

/root/repo/target/debug/deps/libplugvolt_attacks-7379bda638fe23c6.rmeta: crates/attacks/src/lib.rs crates/attacks/src/cacheplane.rs crates/attacks/src/campaign.rs crates/attacks/src/clkscrew.rs crates/attacks/src/crypto/mod.rs crates/attacks/src/crypto/aes.rs crates/attacks/src/crypto/rsa.rs crates/attacks/src/minefield.rs crates/attacks/src/plundervolt.rs crates/attacks/src/v0ltpwn.rs crates/attacks/src/voltjockey.rs

crates/attacks/src/lib.rs:
crates/attacks/src/cacheplane.rs:
crates/attacks/src/campaign.rs:
crates/attacks/src/clkscrew.rs:
crates/attacks/src/crypto/mod.rs:
crates/attacks/src/crypto/aes.rs:
crates/attacks/src/crypto/rsa.rs:
crates/attacks/src/minefield.rs:
crates/attacks/src/plundervolt.rs:
crates/attacks/src/v0ltpwn.rs:
crates/attacks/src/voltjockey.rs:
