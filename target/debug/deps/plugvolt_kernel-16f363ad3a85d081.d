/root/repo/target/debug/deps/plugvolt_kernel-16f363ad3a85d081.d: crates/kernel/src/lib.rs crates/kernel/src/cpufreq.rs crates/kernel/src/cpuidle.rs crates/kernel/src/cpupower.rs crates/kernel/src/machine.rs crates/kernel/src/msr_dev.rs crates/kernel/src/sched.rs crates/kernel/src/sgx.rs

/root/repo/target/debug/deps/plugvolt_kernel-16f363ad3a85d081: crates/kernel/src/lib.rs crates/kernel/src/cpufreq.rs crates/kernel/src/cpuidle.rs crates/kernel/src/cpupower.rs crates/kernel/src/machine.rs crates/kernel/src/msr_dev.rs crates/kernel/src/sched.rs crates/kernel/src/sgx.rs

crates/kernel/src/lib.rs:
crates/kernel/src/cpufreq.rs:
crates/kernel/src/cpuidle.rs:
crates/kernel/src/cpupower.rs:
crates/kernel/src/machine.rs:
crates/kernel/src/msr_dev.rs:
crates/kernel/src/sched.rs:
crates/kernel/src/sgx.rs:
