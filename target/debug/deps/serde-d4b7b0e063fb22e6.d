/root/repo/target/debug/deps/serde-d4b7b0e063fb22e6.d: shims/serde/src/lib.rs shims/serde/src/json.rs

/root/repo/target/debug/deps/serde-d4b7b0e063fb22e6: shims/serde/src/lib.rs shims/serde/src/json.rs

shims/serde/src/lib.rs:
shims/serde/src/json.rs:
