/root/repo/target/debug/deps/serde_json-4b201d7842b6d19a.d: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-4b201d7842b6d19a: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
