/root/repo/target/debug/deps/plugvolt_bench-5dbfed1cc0d229df.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/text.rs

/root/repo/target/debug/deps/libplugvolt_bench-5dbfed1cc0d229df.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/text.rs

/root/repo/target/debug/deps/libplugvolt_bench-5dbfed1cc0d229df.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/text.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/text.rs:
