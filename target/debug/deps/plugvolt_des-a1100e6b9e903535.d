/root/repo/target/debug/deps/plugvolt_des-a1100e6b9e903535.d: crates/des/src/lib.rs crates/des/src/queue.rs crates/des/src/rng.rs crates/des/src/sim.rs crates/des/src/stats.rs crates/des/src/time.rs crates/des/src/trace.rs crates/des/src/vcd.rs

/root/repo/target/debug/deps/libplugvolt_des-a1100e6b9e903535.rlib: crates/des/src/lib.rs crates/des/src/queue.rs crates/des/src/rng.rs crates/des/src/sim.rs crates/des/src/stats.rs crates/des/src/time.rs crates/des/src/trace.rs crates/des/src/vcd.rs

/root/repo/target/debug/deps/libplugvolt_des-a1100e6b9e903535.rmeta: crates/des/src/lib.rs crates/des/src/queue.rs crates/des/src/rng.rs crates/des/src/sim.rs crates/des/src/stats.rs crates/des/src/time.rs crates/des/src/trace.rs crates/des/src/vcd.rs

crates/des/src/lib.rs:
crates/des/src/queue.rs:
crates/des/src/rng.rs:
crates/des/src/sim.rs:
crates/des/src/stats.rs:
crates/des/src/time.rs:
crates/des/src/trace.rs:
crates/des/src/vcd.rs:
