/root/repo/target/debug/deps/plugvolt-420c3e6cc080a663.d: crates/core/src/lib.rs crates/core/src/characterize.rs crates/core/src/charmap.rs crates/core/src/deploy.rs crates/core/src/maximal.rs crates/core/src/poll.rs crates/core/src/state.rs

/root/repo/target/debug/deps/plugvolt-420c3e6cc080a663: crates/core/src/lib.rs crates/core/src/characterize.rs crates/core/src/charmap.rs crates/core/src/deploy.rs crates/core/src/maximal.rs crates/core/src/poll.rs crates/core/src/state.rs

crates/core/src/lib.rs:
crates/core/src/characterize.rs:
crates/core/src/charmap.rs:
crates/core/src/deploy.rs:
crates/core/src/maximal.rs:
crates/core/src/poll.rs:
crates/core/src/state.rs:
