/root/repo/target/debug/deps/defense_matrix-1470a35dd626684e.d: tests/defense_matrix.rs

/root/repo/target/debug/deps/defense_matrix-1470a35dd626684e: tests/defense_matrix.rs

tests/defense_matrix.rs:
