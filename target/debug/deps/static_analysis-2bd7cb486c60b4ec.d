/root/repo/target/debug/deps/static_analysis-2bd7cb486c60b4ec.d: tests/static_analysis.rs

/root/repo/target/debug/deps/static_analysis-2bd7cb486c60b4ec: tests/static_analysis.rs

tests/static_analysis.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
