/root/repo/target/debug/deps/plugvolt_kernel-a4515be6cd48be5c.d: crates/kernel/src/lib.rs crates/kernel/src/cpufreq.rs crates/kernel/src/cpuidle.rs crates/kernel/src/cpupower.rs crates/kernel/src/machine.rs crates/kernel/src/msr_dev.rs crates/kernel/src/sched.rs crates/kernel/src/sgx.rs

/root/repo/target/debug/deps/libplugvolt_kernel-a4515be6cd48be5c.rlib: crates/kernel/src/lib.rs crates/kernel/src/cpufreq.rs crates/kernel/src/cpuidle.rs crates/kernel/src/cpupower.rs crates/kernel/src/machine.rs crates/kernel/src/msr_dev.rs crates/kernel/src/sched.rs crates/kernel/src/sgx.rs

/root/repo/target/debug/deps/libplugvolt_kernel-a4515be6cd48be5c.rmeta: crates/kernel/src/lib.rs crates/kernel/src/cpufreq.rs crates/kernel/src/cpuidle.rs crates/kernel/src/cpupower.rs crates/kernel/src/machine.rs crates/kernel/src/msr_dev.rs crates/kernel/src/sched.rs crates/kernel/src/sgx.rs

crates/kernel/src/lib.rs:
crates/kernel/src/cpufreq.rs:
crates/kernel/src/cpuidle.rs:
crates/kernel/src/cpupower.rs:
crates/kernel/src/machine.rs:
crates/kernel/src/msr_dev.rs:
crates/kernel/src/sched.rs:
crates/kernel/src/sgx.rs:
