/root/repo/target/debug/deps/plugvolt_telemetry-54860e77683a6ca0.d: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/export.rs crates/telemetry/src/profile.rs crates/telemetry/src/registry.rs

/root/repo/target/debug/deps/plugvolt_telemetry-54860e77683a6ca0: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/export.rs crates/telemetry/src/profile.rs crates/telemetry/src/registry.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/event.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/profile.rs:
crates/telemetry/src/registry.rs:
