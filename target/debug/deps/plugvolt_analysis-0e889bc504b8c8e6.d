/root/repo/target/debug/deps/plugvolt_analysis-0e889bc504b8c8e6.d: crates/analysis/src/lib.rs crates/analysis/src/findings.rs crates/analysis/src/report.rs crates/analysis/src/rules.rs crates/analysis/src/runner.rs crates/analysis/src/source.rs

/root/repo/target/debug/deps/plugvolt_analysis-0e889bc504b8c8e6: crates/analysis/src/lib.rs crates/analysis/src/findings.rs crates/analysis/src/report.rs crates/analysis/src/rules.rs crates/analysis/src/runner.rs crates/analysis/src/source.rs

crates/analysis/src/lib.rs:
crates/analysis/src/findings.rs:
crates/analysis/src/report.rs:
crates/analysis/src/rules.rs:
crates/analysis/src/runner.rs:
crates/analysis/src/source.rs:
