/root/repo/target/debug/deps/plugvolt_suite-b3abdefe0df8539f.d: src/lib.rs

/root/repo/target/debug/deps/libplugvolt_suite-b3abdefe0df8539f.rlib: src/lib.rs

/root/repo/target/debug/deps/libplugvolt_suite-b3abdefe0df8539f.rmeta: src/lib.rs

src/lib.rs:
