/root/repo/target/debug/deps/plugvolt_bench-9e6679dcf3390d80.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/text.rs

/root/repo/target/debug/deps/plugvolt_bench-9e6679dcf3390d80: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/text.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/text.rs:
