/root/repo/target/debug/deps/determinism-bbb80e1dd1fd1b6f.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-bbb80e1dd1fd1b6f: tests/determinism.rs

tests/determinism.rs:
