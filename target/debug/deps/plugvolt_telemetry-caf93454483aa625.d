/root/repo/target/debug/deps/plugvolt_telemetry-caf93454483aa625.d: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/export.rs crates/telemetry/src/profile.rs crates/telemetry/src/registry.rs

/root/repo/target/debug/deps/libplugvolt_telemetry-caf93454483aa625.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/export.rs crates/telemetry/src/profile.rs crates/telemetry/src/registry.rs

/root/repo/target/debug/deps/libplugvolt_telemetry-caf93454483aa625.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/export.rs crates/telemetry/src/profile.rs crates/telemetry/src/registry.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/event.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/profile.rs:
crates/telemetry/src/registry.rs:
