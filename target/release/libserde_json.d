/root/repo/target/release/libserde_json.rlib: /root/repo/shims/serde/src/json.rs /root/repo/shims/serde/src/lib.rs /root/repo/shims/serde_derive/src/lib.rs /root/repo/shims/serde_json/src/lib.rs
