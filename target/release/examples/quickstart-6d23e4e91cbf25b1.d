/root/repo/target/release/examples/quickstart-6d23e4e91cbf25b1.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-6d23e4e91cbf25b1: examples/quickstart.rs

examples/quickstart.rs:
