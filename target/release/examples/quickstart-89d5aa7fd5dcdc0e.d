/root/repo/target/release/examples/quickstart-89d5aa7fd5dcdc0e.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-89d5aa7fd5dcdc0e: examples/quickstart.rs

examples/quickstart.rs:
