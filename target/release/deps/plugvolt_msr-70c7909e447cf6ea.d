/root/repo/target/release/deps/plugvolt_msr-70c7909e447cf6ea.d: crates/msr/src/lib.rs crates/msr/src/addr.rs crates/msr/src/file.rs crates/msr/src/oc_mailbox.rs crates/msr/src/offset_limit.rs crates/msr/src/perf_status.rs crates/msr/src/power_limit.rs

/root/repo/target/release/deps/libplugvolt_msr-70c7909e447cf6ea.rlib: crates/msr/src/lib.rs crates/msr/src/addr.rs crates/msr/src/file.rs crates/msr/src/oc_mailbox.rs crates/msr/src/offset_limit.rs crates/msr/src/perf_status.rs crates/msr/src/power_limit.rs

/root/repo/target/release/deps/libplugvolt_msr-70c7909e447cf6ea.rmeta: crates/msr/src/lib.rs crates/msr/src/addr.rs crates/msr/src/file.rs crates/msr/src/oc_mailbox.rs crates/msr/src/offset_limit.rs crates/msr/src/perf_status.rs crates/msr/src/power_limit.rs

crates/msr/src/lib.rs:
crates/msr/src/addr.rs:
crates/msr/src/file.rs:
crates/msr/src/oc_mailbox.rs:
crates/msr/src/offset_limit.rs:
crates/msr/src/perf_status.rs:
crates/msr/src/power_limit.rs:
