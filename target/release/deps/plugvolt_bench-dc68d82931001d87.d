/root/repo/target/release/deps/plugvolt_bench-dc68d82931001d87.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/text.rs

/root/repo/target/release/deps/libplugvolt_bench-dc68d82931001d87.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/text.rs

/root/repo/target/release/deps/libplugvolt_bench-dc68d82931001d87.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/text.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/text.rs:
