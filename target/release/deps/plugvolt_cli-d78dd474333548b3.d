/root/repo/target/release/deps/plugvolt_cli-d78dd474333548b3.d: crates/bench/src/bin/plugvolt-cli.rs

/root/repo/target/release/deps/plugvolt_cli-d78dd474333548b3: crates/bench/src/bin/plugvolt-cli.rs

crates/bench/src/bin/plugvolt-cli.rs:
