/root/repo/target/release/deps/plugvolt_kernel-593b62c8438aff2c.d: crates/kernel/src/lib.rs crates/kernel/src/cpufreq.rs crates/kernel/src/cpuidle.rs crates/kernel/src/cpupower.rs crates/kernel/src/machine.rs crates/kernel/src/msr_dev.rs crates/kernel/src/sched.rs crates/kernel/src/sgx.rs

/root/repo/target/release/deps/libplugvolt_kernel-593b62c8438aff2c.rlib: crates/kernel/src/lib.rs crates/kernel/src/cpufreq.rs crates/kernel/src/cpuidle.rs crates/kernel/src/cpupower.rs crates/kernel/src/machine.rs crates/kernel/src/msr_dev.rs crates/kernel/src/sched.rs crates/kernel/src/sgx.rs

/root/repo/target/release/deps/libplugvolt_kernel-593b62c8438aff2c.rmeta: crates/kernel/src/lib.rs crates/kernel/src/cpufreq.rs crates/kernel/src/cpuidle.rs crates/kernel/src/cpupower.rs crates/kernel/src/machine.rs crates/kernel/src/msr_dev.rs crates/kernel/src/sched.rs crates/kernel/src/sgx.rs

crates/kernel/src/lib.rs:
crates/kernel/src/cpufreq.rs:
crates/kernel/src/cpuidle.rs:
crates/kernel/src/cpupower.rs:
crates/kernel/src/machine.rs:
crates/kernel/src/msr_dev.rs:
crates/kernel/src/sched.rs:
crates/kernel/src/sgx.rs:
