/root/repo/target/release/deps/plugvolt_attacks-2d0957b50468948b.d: crates/attacks/src/lib.rs crates/attacks/src/cacheplane.rs crates/attacks/src/campaign.rs crates/attacks/src/clkscrew.rs crates/attacks/src/crypto/mod.rs crates/attacks/src/crypto/aes.rs crates/attacks/src/crypto/rsa.rs crates/attacks/src/minefield.rs crates/attacks/src/plundervolt.rs crates/attacks/src/v0ltpwn.rs crates/attacks/src/voltjockey.rs

/root/repo/target/release/deps/libplugvolt_attacks-2d0957b50468948b.rlib: crates/attacks/src/lib.rs crates/attacks/src/cacheplane.rs crates/attacks/src/campaign.rs crates/attacks/src/clkscrew.rs crates/attacks/src/crypto/mod.rs crates/attacks/src/crypto/aes.rs crates/attacks/src/crypto/rsa.rs crates/attacks/src/minefield.rs crates/attacks/src/plundervolt.rs crates/attacks/src/v0ltpwn.rs crates/attacks/src/voltjockey.rs

/root/repo/target/release/deps/libplugvolt_attacks-2d0957b50468948b.rmeta: crates/attacks/src/lib.rs crates/attacks/src/cacheplane.rs crates/attacks/src/campaign.rs crates/attacks/src/clkscrew.rs crates/attacks/src/crypto/mod.rs crates/attacks/src/crypto/aes.rs crates/attacks/src/crypto/rsa.rs crates/attacks/src/minefield.rs crates/attacks/src/plundervolt.rs crates/attacks/src/v0ltpwn.rs crates/attacks/src/voltjockey.rs

crates/attacks/src/lib.rs:
crates/attacks/src/cacheplane.rs:
crates/attacks/src/campaign.rs:
crates/attacks/src/clkscrew.rs:
crates/attacks/src/crypto/mod.rs:
crates/attacks/src/crypto/aes.rs:
crates/attacks/src/crypto/rsa.rs:
crates/attacks/src/minefield.rs:
crates/attacks/src/plundervolt.rs:
crates/attacks/src/v0ltpwn.rs:
crates/attacks/src/voltjockey.rs:
