/root/repo/target/release/deps/plugvolt_telemetry-13dbac420673924d.d: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/export.rs crates/telemetry/src/profile.rs crates/telemetry/src/registry.rs

/root/repo/target/release/deps/libplugvolt_telemetry-13dbac420673924d.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/export.rs crates/telemetry/src/profile.rs crates/telemetry/src/registry.rs

/root/repo/target/release/deps/libplugvolt_telemetry-13dbac420673924d.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/export.rs crates/telemetry/src/profile.rs crates/telemetry/src/registry.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/event.rs:
crates/telemetry/src/export.rs:
crates/telemetry/src/profile.rs:
crates/telemetry/src/registry.rs:
