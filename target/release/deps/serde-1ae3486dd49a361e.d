/root/repo/target/release/deps/serde-1ae3486dd49a361e.d: shims/serde/src/lib.rs shims/serde/src/json.rs

/root/repo/target/release/deps/libserde-1ae3486dd49a361e.rlib: shims/serde/src/lib.rs shims/serde/src/json.rs

/root/repo/target/release/deps/libserde-1ae3486dd49a361e.rmeta: shims/serde/src/lib.rs shims/serde/src/json.rs

shims/serde/src/lib.rs:
shims/serde/src/json.rs:
