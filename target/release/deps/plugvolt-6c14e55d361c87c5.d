/root/repo/target/release/deps/plugvolt-6c14e55d361c87c5.d: crates/core/src/lib.rs crates/core/src/characterize.rs crates/core/src/charmap.rs crates/core/src/deploy.rs crates/core/src/maximal.rs crates/core/src/poll.rs crates/core/src/state.rs

/root/repo/target/release/deps/libplugvolt-6c14e55d361c87c5.rlib: crates/core/src/lib.rs crates/core/src/characterize.rs crates/core/src/charmap.rs crates/core/src/deploy.rs crates/core/src/maximal.rs crates/core/src/poll.rs crates/core/src/state.rs

/root/repo/target/release/deps/libplugvolt-6c14e55d361c87c5.rmeta: crates/core/src/lib.rs crates/core/src/characterize.rs crates/core/src/charmap.rs crates/core/src/deploy.rs crates/core/src/maximal.rs crates/core/src/poll.rs crates/core/src/state.rs

crates/core/src/lib.rs:
crates/core/src/characterize.rs:
crates/core/src/charmap.rs:
crates/core/src/deploy.rs:
crates/core/src/maximal.rs:
crates/core/src/poll.rs:
crates/core/src/state.rs:
