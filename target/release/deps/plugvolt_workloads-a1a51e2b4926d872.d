/root/repo/target/release/deps/plugvolt_workloads-a1a51e2b4926d872.d: crates/workloads/src/lib.rs crates/workloads/src/overhead.rs crates/workloads/src/rate.rs crates/workloads/src/suite.rs

/root/repo/target/release/deps/libplugvolt_workloads-a1a51e2b4926d872.rlib: crates/workloads/src/lib.rs crates/workloads/src/overhead.rs crates/workloads/src/rate.rs crates/workloads/src/suite.rs

/root/repo/target/release/deps/libplugvolt_workloads-a1a51e2b4926d872.rmeta: crates/workloads/src/lib.rs crates/workloads/src/overhead.rs crates/workloads/src/rate.rs crates/workloads/src/suite.rs

crates/workloads/src/lib.rs:
crates/workloads/src/overhead.rs:
crates/workloads/src/rate.rs:
crates/workloads/src/suite.rs:
