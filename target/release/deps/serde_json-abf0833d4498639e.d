/root/repo/target/release/deps/serde_json-abf0833d4498639e.d: shims/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-abf0833d4498639e.rlib: shims/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-abf0833d4498639e.rmeta: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
