/root/repo/target/release/deps/plugvolt_circuit-4e9550444ddf7e9b.d: crates/circuit/src/lib.rs crates/circuit/src/delay.rs crates/circuit/src/fault.rs crates/circuit/src/flipflop.rs crates/circuit/src/multiplier.rs crates/circuit/src/netlist.rs crates/circuit/src/path.rs crates/circuit/src/timing.rs

/root/repo/target/release/deps/libplugvolt_circuit-4e9550444ddf7e9b.rlib: crates/circuit/src/lib.rs crates/circuit/src/delay.rs crates/circuit/src/fault.rs crates/circuit/src/flipflop.rs crates/circuit/src/multiplier.rs crates/circuit/src/netlist.rs crates/circuit/src/path.rs crates/circuit/src/timing.rs

/root/repo/target/release/deps/libplugvolt_circuit-4e9550444ddf7e9b.rmeta: crates/circuit/src/lib.rs crates/circuit/src/delay.rs crates/circuit/src/fault.rs crates/circuit/src/flipflop.rs crates/circuit/src/multiplier.rs crates/circuit/src/netlist.rs crates/circuit/src/path.rs crates/circuit/src/timing.rs

crates/circuit/src/lib.rs:
crates/circuit/src/delay.rs:
crates/circuit/src/fault.rs:
crates/circuit/src/flipflop.rs:
crates/circuit/src/multiplier.rs:
crates/circuit/src/netlist.rs:
crates/circuit/src/path.rs:
crates/circuit/src/timing.rs:
