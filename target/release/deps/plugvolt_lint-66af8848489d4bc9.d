/root/repo/target/release/deps/plugvolt_lint-66af8848489d4bc9.d: crates/analysis/src/bin/plugvolt-lint.rs

/root/repo/target/release/deps/plugvolt_lint-66af8848489d4bc9: crates/analysis/src/bin/plugvolt-lint.rs

crates/analysis/src/bin/plugvolt-lint.rs:
