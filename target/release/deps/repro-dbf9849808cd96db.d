/root/repo/target/release/deps/repro-dbf9849808cd96db.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-dbf9849808cd96db: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
