/root/repo/target/release/deps/criterion-b347f4339dbb9837.d: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-b347f4339dbb9837.rlib: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-b347f4339dbb9837.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
