/root/repo/target/release/deps/plugvolt_workloads-8ebef894c539630e.d: crates/workloads/src/lib.rs crates/workloads/src/overhead.rs crates/workloads/src/rate.rs crates/workloads/src/suite.rs

/root/repo/target/release/deps/libplugvolt_workloads-8ebef894c539630e.rlib: crates/workloads/src/lib.rs crates/workloads/src/overhead.rs crates/workloads/src/rate.rs crates/workloads/src/suite.rs

/root/repo/target/release/deps/libplugvolt_workloads-8ebef894c539630e.rmeta: crates/workloads/src/lib.rs crates/workloads/src/overhead.rs crates/workloads/src/rate.rs crates/workloads/src/suite.rs

crates/workloads/src/lib.rs:
crates/workloads/src/overhead.rs:
crates/workloads/src/rate.rs:
crates/workloads/src/suite.rs:
