/root/repo/target/release/deps/plugvolt_des-5f644f60a8a1f139.d: crates/des/src/lib.rs crates/des/src/queue.rs crates/des/src/rng.rs crates/des/src/sim.rs crates/des/src/stats.rs crates/des/src/time.rs crates/des/src/trace.rs crates/des/src/vcd.rs

/root/repo/target/release/deps/plugvolt_des-5f644f60a8a1f139: crates/des/src/lib.rs crates/des/src/queue.rs crates/des/src/rng.rs crates/des/src/sim.rs crates/des/src/stats.rs crates/des/src/time.rs crates/des/src/trace.rs crates/des/src/vcd.rs

crates/des/src/lib.rs:
crates/des/src/queue.rs:
crates/des/src/rng.rs:
crates/des/src/sim.rs:
crates/des/src/stats.rs:
crates/des/src/time.rs:
crates/des/src/trace.rs:
crates/des/src/vcd.rs:
