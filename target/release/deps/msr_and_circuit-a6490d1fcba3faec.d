/root/repo/target/release/deps/msr_and_circuit-a6490d1fcba3faec.d: crates/bench/benches/msr_and_circuit.rs

/root/repo/target/release/deps/msr_and_circuit-a6490d1fcba3faec: crates/bench/benches/msr_and_circuit.rs

crates/bench/benches/msr_and_circuit.rs:
