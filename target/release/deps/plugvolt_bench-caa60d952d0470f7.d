/root/repo/target/release/deps/plugvolt_bench-caa60d952d0470f7.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/text.rs

/root/repo/target/release/deps/libplugvolt_bench-caa60d952d0470f7.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/text.rs

/root/repo/target/release/deps/libplugvolt_bench-caa60d952d0470f7.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/text.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/text.rs:
