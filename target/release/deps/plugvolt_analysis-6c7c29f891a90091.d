/root/repo/target/release/deps/plugvolt_analysis-6c7c29f891a90091.d: crates/analysis/src/lib.rs crates/analysis/src/findings.rs crates/analysis/src/report.rs crates/analysis/src/rules.rs crates/analysis/src/runner.rs crates/analysis/src/source.rs

/root/repo/target/release/deps/libplugvolt_analysis-6c7c29f891a90091.rlib: crates/analysis/src/lib.rs crates/analysis/src/findings.rs crates/analysis/src/report.rs crates/analysis/src/rules.rs crates/analysis/src/runner.rs crates/analysis/src/source.rs

/root/repo/target/release/deps/libplugvolt_analysis-6c7c29f891a90091.rmeta: crates/analysis/src/lib.rs crates/analysis/src/findings.rs crates/analysis/src/report.rs crates/analysis/src/rules.rs crates/analysis/src/runner.rs crates/analysis/src/source.rs

crates/analysis/src/lib.rs:
crates/analysis/src/findings.rs:
crates/analysis/src/report.rs:
crates/analysis/src/rules.rs:
crates/analysis/src/runner.rs:
crates/analysis/src/source.rs:
