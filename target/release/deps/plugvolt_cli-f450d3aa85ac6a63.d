/root/repo/target/release/deps/plugvolt_cli-f450d3aa85ac6a63.d: crates/bench/src/bin/plugvolt-cli.rs

/root/repo/target/release/deps/plugvolt_cli-f450d3aa85ac6a63: crates/bench/src/bin/plugvolt-cli.rs

crates/bench/src/bin/plugvolt-cli.rs:
