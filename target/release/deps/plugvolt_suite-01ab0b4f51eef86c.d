/root/repo/target/release/deps/plugvolt_suite-01ab0b4f51eef86c.d: src/lib.rs

/root/repo/target/release/deps/libplugvolt_suite-01ab0b4f51eef86c.rlib: src/lib.rs

/root/repo/target/release/deps/libplugvolt_suite-01ab0b4f51eef86c.rmeta: src/lib.rs

src/lib.rs:
