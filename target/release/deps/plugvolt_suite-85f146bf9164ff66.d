/root/repo/target/release/deps/plugvolt_suite-85f146bf9164ff66.d: src/lib.rs

/root/repo/target/release/deps/libplugvolt_suite-85f146bf9164ff66.rlib: src/lib.rs

/root/repo/target/release/deps/libplugvolt_suite-85f146bf9164ff66.rmeta: src/lib.rs

src/lib.rs:
