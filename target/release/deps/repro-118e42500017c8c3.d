/root/repo/target/release/deps/repro-118e42500017c8c3.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-118e42500017c8c3: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
