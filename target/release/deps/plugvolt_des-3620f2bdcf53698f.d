/root/repo/target/release/deps/plugvolt_des-3620f2bdcf53698f.d: crates/des/src/lib.rs crates/des/src/queue.rs crates/des/src/rng.rs crates/des/src/sim.rs crates/des/src/stats.rs crates/des/src/time.rs crates/des/src/trace.rs crates/des/src/vcd.rs

/root/repo/target/release/deps/libplugvolt_des-3620f2bdcf53698f.rlib: crates/des/src/lib.rs crates/des/src/queue.rs crates/des/src/rng.rs crates/des/src/sim.rs crates/des/src/stats.rs crates/des/src/time.rs crates/des/src/trace.rs crates/des/src/vcd.rs

/root/repo/target/release/deps/libplugvolt_des-3620f2bdcf53698f.rmeta: crates/des/src/lib.rs crates/des/src/queue.rs crates/des/src/rng.rs crates/des/src/sim.rs crates/des/src/stats.rs crates/des/src/time.rs crates/des/src/trace.rs crates/des/src/vcd.rs

crates/des/src/lib.rs:
crates/des/src/queue.rs:
crates/des/src/rng.rs:
crates/des/src/sim.rs:
crates/des/src/stats.rs:
crates/des/src/time.rs:
crates/des/src/trace.rs:
crates/des/src/vcd.rs:
