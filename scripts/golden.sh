#!/usr/bin/env bash
# Golden-output gate for the Plug Your Volt reproduction.
#
#   scripts/golden.sh update   regenerate results/ from the current code
#                              and rewrite results/golden.manifest
#   scripts/golden.sh check    regenerate into a temp dir and fail if any
#                              output drifts from the pinned manifest
#
# The manifest pins a SHA-256 per artifact: every repro table/figure,
# the machine-readable figure JSON, the soak fuzzer's reproducer
# corpus, and the MSR-transcript trace fixture. `check` re-runs
# everything, so a code change that moves any number fails CI until the
# author re-runs `update` and commits the new outputs — drift is always
# a reviewed diff, never an accident.
set -euo pipefail
cd "$(dirname "$0")/.."

MANIFEST=results/golden.manifest
REPRO=./target/release/repro
CLI=./target/release/plugvolt-cli

sha() {
    if command -v sha256sum >/dev/null 2>&1; then
        sha256sum "$1" | cut -d' ' -f1
    else
        shasum -a 256 "$1" | cut -d' ' -f1
    fi
}

# Regenerates every golden artifact into the directory given as $1
# (results layout: <dir>/*.txt, <dir>/*.json, <dir>/fuzz-corpus/*.json).
regenerate() {
    local out="$1"
    mkdir -p "$out"
    "$REPRO" table1 > "$out/table1.txt"
    "$REPRO" fig1 > "$out/fig1.txt"
    local fig
    for fig in fig2 fig3 fig4; do
        "$REPRO" --full "$fig" > "$out/$fig.txt"
        "$REPRO" --full --json "$fig" > "$out/$fig.json"
    done
    "$REPRO" --full table2 > "$out/table2.txt"
    local name
    for name in defense levels stepping interval planes energy units attest; do
        "$REPRO" "$name" > "$out/$name.txt"
    done
    # The soak self-test writes its weakened-poller reproducer into the
    # corpus; replaying the committed corpus is part of the smoke gate.
    "$CLI" soak --smoke --corpus "$out/fuzz-corpus" --out "$out/.soak-report.json" \
        > /dev/null
    rm -f "$out/.soak-report.json"
    # The MSR-transcript fixture: the deterministic fixture campaign
    # recorded through the HAL tracing backend, pinned byte-for-byte.
    # ci.sh replays this exact file through the replay backend.
    mkdir -p "$out/traces"
    "$CLI" soak --record "$out/traces/fixture.trace.jsonl"
}

# Emits "sha256  relative-path" lines for every artifact under $1,
# sorted by path so the manifest is stable. results/lint-baseline.json
# is excluded: it is the static-analysis ratchet — a hand-justified,
# reviewed file, not a regenerated artifact — and `regenerate` never
# produces it.
manifest_of() {
    local dir="$1" f
    (
        cd "$dir"
        find . -type f \( -name '*.txt' -o -name '*.json' -o -name '*.jsonl' \) ! -name '.*' \
            ! -name 'lint-baseline.json' \
            | sed 's|^\./||' | LC_ALL=C sort
    ) | while read -r f; do
        printf '%s  %s\n' "$(sha "$dir/$f")" "$f"
    done
}

case "${1:-}" in
    update)
        regenerate results
        manifest_of results > "$MANIFEST"
        echo "pinned $(wc -l < "$MANIFEST" | tr -d ' ') artifacts into $MANIFEST"
        ;;
    check)
        [ -f "$MANIFEST" ] || { echo "missing $MANIFEST — run 'scripts/golden.sh update'" >&2; exit 1; }
        tmp=$(mktemp -d)
        trap 'rm -rf "$tmp"' EXIT
        # Seed the regeneration corpus with the committed reproducers so
        # the corpus-replay expectations are themselves re-checked.
        if [ -d results/fuzz-corpus ]; then
            mkdir -p "$tmp/fuzz-corpus"
            cp results/fuzz-corpus/*.json "$tmp/fuzz-corpus/" 2>/dev/null || true
        fi
        regenerate "$tmp"
        if ! diff -u "$MANIFEST" <(manifest_of "$tmp"); then
            echo >&2
            echo "golden outputs drifted from $MANIFEST." >&2
            echo "If the change is intended: scripts/golden.sh update && git add results/" >&2
            exit 1
        fi
        # The committed files must match the manifest too (catches a
        # hand-edited results/ file with a stale manifest).
        if ! diff -u "$MANIFEST" <(manifest_of results); then
            echo >&2
            echo "committed results/ files disagree with $MANIFEST." >&2
            exit 1
        fi
        echo "golden outputs match ($(wc -l < "$MANIFEST" | tr -d ' ') artifacts)"
        ;;
    *)
        echo "usage: scripts/golden.sh <update|check>" >&2
        exit 2
        ;;
esac
