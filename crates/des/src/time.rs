//! Simulated time.
//!
//! All simulation time in this workspace is measured in integer
//! **picoseconds** wrapped in [`SimTime`] (an instant) and [`SimDuration`]
//! (a span). Picosecond resolution lets us express both sub-nanosecond gate
//! delays (the circuit model) and multi-second benchmark runs (SPEC-style
//! workloads) in one `u64` without floating point drift: `u64::MAX` ps is
//! roughly 213 days of simulated time.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// An instant on the simulation clock, in picoseconds since simulation start.
///
/// # Examples
///
/// ```
/// use plugvolt_des::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_nanos(5);
/// assert_eq!(t.as_picos(), 5_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in picoseconds.
///
/// # Examples
///
/// ```
/// use plugvolt_des::time::SimDuration;
///
/// let slice = SimDuration::from_micros(100);
/// assert_eq!(slice * 10, SimDuration::from_millis(1));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; no event is ever scheduled here.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `picos` picoseconds after the epoch.
    #[must_use]
    pub const fn from_picos(picos: u64) -> Self {
        SimTime(picos)
    }

    /// Picoseconds since the epoch.
    #[must_use]
    pub const fn as_picos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reporting only).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-12
    }

    /// The span from `earlier` to `self`.
    ///
    /// Returns [`SimDuration::ZERO`] if `earlier` is later than `self`
    /// (saturating, like [`std::time::Instant::saturating_duration_since`]).
    #[must_use]
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked advance; `None` on overflow.
    #[must_use]
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// One picosecond.
    pub const PICO: SimDuration = SimDuration(1);

    /// Creates a span of `picos` picoseconds.
    #[must_use]
    pub const fn from_picos(picos: u64) -> Self {
        SimDuration(picos)
    }

    /// Creates a span of `nanos` nanoseconds.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos * 1_000)
    }

    /// Creates a span of `micros` microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000_000)
    }

    /// Creates a span of `millis` milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000_000)
    }

    /// Creates a span of `secs` seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000_000)
    }

    /// Creates a span from a float number of seconds, rounding to the
    /// nearest picosecond and saturating at the representable range.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or NaN.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs >= 0.0, "duration must be non-negative, got {secs}");
        let ps = (secs * 1e12).round();
        SimDuration(if ps >= u64::MAX as f64 {
            u64::MAX
        } else {
            ps as u64
        })
    }

    /// The span covered by `cycles` clock cycles at `freq_mhz` megahertz.
    ///
    /// # Panics
    ///
    /// Panics if `freq_mhz` is zero.
    #[must_use]
    pub fn from_cycles(cycles: u64, freq_mhz: u32) -> Self {
        assert!(freq_mhz > 0, "frequency must be non-zero");
        // One cycle at f MHz lasts 1e6/f ps.
        SimDuration(cycles.saturating_mul(1_000_000) / u64::from(freq_mhz))
    }

    /// Picoseconds in this span.
    #[must_use]
    pub const fn as_picos(self) -> u64 {
        self.0
    }

    /// Nanoseconds in this span (truncating).
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0 / 1_000
    }

    /// Microseconds in this span (truncating).
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds in this span, as a float (for reporting only).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-12
    }

    /// Whether this span is empty.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// How many whole clock cycles at `freq_mhz` megahertz fit in this span.
    #[must_use]
    pub fn cycles_at(self, freq_mhz: u32) -> u64 {
        self.0.saturating_mul(u64::from(freq_mhz)) / 1_000_000
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Checked multiplication by an integer factor.
    #[must_use]
    pub fn checked_mul(self, rhs: u64) -> Option<SimDuration> {
        self.0.checked_mul(rhs).map(SimDuration)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics if `rhs` is longer than `self`.
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div for SimDuration {
    type Output = u64;
    /// How many times `rhs` fits into `self` (truncating).
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: SimDuration) -> u64 {
        self.0 / rhs.0
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == 0 {
            return write!(f, "0s");
        }
        // Exactly-round values print as integers in the coarsest unit...
        for (div, unit) in [
            (1_000_000_000_000, "s"),
            (1_000_000_000, "ms"),
            (1_000_000, "us"),
            (1_000, "ns"),
        ] {
            if ps.is_multiple_of(div) {
                return write!(f, "{}{}", ps / div, unit);
            }
        }
        if ps < 1_000 {
            return write!(f, "{ps}ps");
        }
        // ...everything else scales decimally with three significant
        // decimals in the largest unit it exceeds.
        for (div, unit) in [
            (1_000_000_000_000u64, "s"),
            (1_000_000_000, "ms"),
            (1_000_000, "us"),
            (1_000, "ns"),
        ] {
            if ps >= div {
                return write!(f, "{:.3}{}", ps as f64 / div as f64, unit);
            }
        }
        unreachable!("sub-nanosecond values handled above")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimDuration::from_secs(2).as_picos(), 2_000_000_000_000);
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_nanos(9).as_picos(), 9_000);
    }

    #[test]
    fn cycles_at_1ghz() {
        // 1 GHz = 1000 MHz: one cycle is 1 ns.
        let d = SimDuration::from_nanos(10);
        assert_eq!(d.cycles_at(1_000), 10);
        assert_eq!(SimDuration::from_cycles(10, 1_000), d);
    }

    #[test]
    fn cycles_at_fractional_period() {
        // 3 GHz: a cycle is 333.33 ps. 1000 cycles occupy 333_333 ps.
        let d = SimDuration::from_cycles(1_000, 3_000);
        assert_eq!(d.as_picos(), 333_333);
        // Round-trip loses at most one cycle to truncation.
        assert!(d.cycles_at(3_000) >= 999);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_picos(100);
        let u = t + SimDuration::from_picos(50);
        assert_eq!(u - t, SimDuration::from_picos(50));
        assert_eq!(t.saturating_duration_since(u), SimDuration::ZERO);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(1e-12).as_picos(), 1);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_picos(), 500_000_000_000);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_picks_coarsest_unit() {
        assert_eq!(SimDuration::from_secs(1).to_string(), "1s");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5ms");
        assert_eq!(SimDuration::from_micros(5).to_string(), "5us");
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_picos(5).to_string(), "5ps");
        assert_eq!(SimDuration::ZERO.to_string(), "0s");
    }

    #[test]
    fn duration_div_duration_counts() {
        let period = SimDuration::from_micros(10);
        let total = SimDuration::from_millis(1);
        assert_eq!(total / period, 100);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_nanos).sum();
        assert_eq!(total, SimDuration::from_nanos(10));
    }
}
