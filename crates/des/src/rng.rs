//! Deterministic randomness for simulations.
//!
//! Every stochastic component in the workspace draws from a [`SimRng`]
//! seeded from a run-level seed plus a stable *stream label*, so adding a
//! new consumer of randomness never perturbs existing streams (the classic
//! "random stream splitting" discipline of reproducible simulators).

/// A deterministic random stream.
///
/// Thin wrapper over an in-tree xoshiro256++ generator that adds stream
/// derivation and the handful of sampling helpers the fault models need.
/// The generator is implemented here (rather than pulled from the `rand`
/// crate) so the workspace builds with no registry access and so the
/// stream is pinned to this source tree forever — a dependency bump can
/// never silently re-run every experiment on different numbers, which is
/// the reproducibility property the `plugvolt-lint` `no-ambient-rng`
/// rule exists to protect.
///
/// # Examples
///
/// ```
/// use plugvolt_des::rng::SimRng;
///
/// let mut a = SimRng::from_seed_label(42, "fault-model");
/// let mut b = SimRng::from_seed_label(42, "fault-model");
/// assert_eq!(a.next_u64(), b.next_u64());
/// let mut c = SimRng::from_seed_label(42, "other-stream");
/// assert_ne!(SimRng::from_seed_label(42, "fault-model").next_u64(), c.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: Xoshiro256pp,
}

/// xoshiro256++ (Blackman & Vigna): 256-bit state, 64-bit output, a
/// standard small-state generator for reproducible simulation. Not
/// cryptographic — nothing in the simulator needs unpredictability,
/// only stability.
#[derive(Debug, Clone)]
struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Expands a 64-bit seed into the full state with SplitMix64, per
    /// the generator authors' recommendation (avoids all-zero states).
    fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut s = [0_u64; 4];
        for slot in &mut s {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            *slot = splitmix64(x);
        }
        Xoshiro256pp { s }
    }

    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }
}

/// Derives a labelled child seed from a root seed.
///
/// This is the workspace's single seed-derivation primitive: one
/// run-level root seed fans out into per-purpose (and, for sharded
/// sweeps, per-shard) seeds keyed by a stable string label. The same
/// `(root, label)` pair always yields the same seed; distinct labels
/// yield independent seeds. [`SimRng::from_seed_label`] is exactly
/// "seed a generator from `derive_seed(root, label)`", so a machine
/// built from a derived seed and a stream built from the same label
/// agree by construction.
///
/// The mixing is FNV-1a over the label folded into the root via
/// SplitMix64 — stable, dependency-free, and pinned to this source
/// tree forever.
#[must_use]
pub fn derive_seed(root: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in label.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    splitmix64(root ^ h)
}

impl SimRng {
    /// Creates a stream from a run seed and a stable stream label.
    #[must_use]
    pub fn from_seed_label(seed: u64, label: &str) -> Self {
        SimRng {
            inner: Xoshiro256pp::seed_from_u64(derive_seed(seed, label)),
        }
    }

    /// Derives a child stream, e.g. one per CPU core.
    #[must_use]
    pub fn derive(&self, label: &str) -> Self {
        // Derivation depends only on the parent's construction-time label,
        // not on how much the parent has been consumed; we read a fresh
        // value from a clone so the parent state is untouched.
        let mut probe = self.inner.clone();
        SimRng::from_seed_label(probe.next_u64(), label)
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire-style rejection-free for our purposes: modulo bias is
        // negligible at 64 bits for the small bounds used here, but we
        // reject to stay exact.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn in_range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range");
        let span = (hi - lo) as u64 + 1;
        lo + self.below(span) as i64
    }

    /// Gaussian draw via Box–Muller (mean 0, standard deviation 1).
    pub fn gaussian(&mut self) -> f64 {
        loop {
            let u = self.next_f64();
            let v = self.next_f64();
            if u > f64::EPSILON {
                return (-2.0 * u.ln()).sqrt() * (2.0 * std::f64::consts::PI * v).cos();
            }
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::from_seed_label(7, "x");
        let mut b = SimRng::from_seed_label(7, "x");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_diverge() {
        let mut a = SimRng::from_seed_label(7, "x");
        let mut b = SimRng::from_seed_label(7, "y");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn derive_seed_same_label_same_stream() {
        assert_eq!(
            derive_seed(2024, "characterize/f800"),
            derive_seed(2024, "characterize/f800")
        );
        let mut a = SimRng::from_seed_label(derive_seed(2024, "shard"), "cpu");
        let mut b = SimRng::from_seed_label(derive_seed(2024, "shard"), "cpu");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derive_seed_distinct_labels_distinct_streams() {
        let labels = [
            "characterize/f800",
            "characterize/f900",
            "defense/attack0",
            "",
        ];
        for (i, a) in labels.iter().enumerate() {
            for b in &labels[i + 1..] {
                assert_ne!(derive_seed(7, a), derive_seed(7, b), "{a} vs {b}");
                let mut sa = SimRng::from_seed_label(derive_seed(7, a), "x");
                let mut sb = SimRng::from_seed_label(derive_seed(7, b), "x");
                assert_ne!(sa.next_u64(), sb.next_u64(), "{a} vs {b}");
            }
        }
        // Distinct roots diverge under the same label too.
        assert_ne!(derive_seed(7, "x"), derive_seed(8, "x"));
    }

    #[test]
    fn derive_is_stable() {
        let parent = SimRng::from_seed_label(7, "parent");
        let mut c1 = parent.derive("core0");
        let mut c2 = parent.derive("core0");
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut other = parent.derive("core1");
        assert_ne!(parent.derive("core0").next_u64(), other.next_u64());
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SimRng::from_seed_label(1, "f");
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::from_seed_label(1, "c");
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SimRng::from_seed_label(2, "cal");
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits={hits}");
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::from_seed_label(3, "b");
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn in_range_inclusive() {
        let mut r = SimRng::from_seed_label(4, "r");
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..2000 {
            let v = r.in_range(-3, 3);
            assert!((-3..=3).contains(&v));
            saw_lo |= v == -3;
            saw_hi |= v == 3;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn gaussian_moments() {
        let mut r = SimRng::from_seed_label(5, "g");
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean={mean}");
        assert!((var - 1.0).abs() < 0.1, "var={var}");
    }
}
