//! Bounded event tracing.
//!
//! Components record human-readable trace records into a [`TraceBuffer`];
//! tests and the repro binaries inspect them to assert on *sequences* of
//! behaviour (e.g. "unsafe state detected before restore write issued").

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Severity of a trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TraceLevel {
    /// High-volume diagnostics.
    Debug,
    /// Normal operational records.
    Info,
    /// Unexpected but recoverable conditions.
    Warn,
    /// Faults, crashes, attack successes.
    Error,
}

impl fmt::Display for TraceLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceLevel::Debug => "DEBUG",
            TraceLevel::Info => "INFO",
            TraceLevel::Warn => "WARN",
            TraceLevel::Error => "ERROR",
        };
        f.write_str(s)
    }
}

/// One trace record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Simulation time the record was emitted.
    pub at: SimTime,
    /// Severity.
    pub level: TraceLevel,
    /// Emitting component, e.g. `"poll-module"`.
    pub source: String,
    /// Free-form message.
    pub message: String,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} {} {}] {}",
            self.at, self.level, self.source, self.message
        )
    }
}

/// A bounded ring buffer of trace records.
///
/// When full, the oldest records are dropped (and counted).
///
/// # Examples
///
/// ```
/// use plugvolt_des::trace::{TraceBuffer, TraceLevel};
/// use plugvolt_des::time::SimTime;
///
/// let mut tb = TraceBuffer::with_capacity(64);
/// tb.emit(SimTime::ZERO, TraceLevel::Info, "vr", "voltage settled");
/// assert_eq!(tb.iter().count(), 1);
/// assert!(tb.any(|r| r.message.contains("settled")));
/// ```
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    records: VecDeque<TraceRecord>,
    capacity: usize,
    dropped: u64,
    min_level: TraceLevel,
}

impl Default for TraceBuffer {
    fn default() -> Self {
        Self::with_capacity(4096)
    }
}

impl TraceBuffer {
    /// Creates a buffer holding at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        TraceBuffer {
            records: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            dropped: 0,
            min_level: TraceLevel::Debug,
        }
    }

    /// Suppresses records below `level` at emission time.
    pub fn set_min_level(&mut self, level: TraceLevel) {
        self.min_level = level;
    }

    /// Emits a record.
    pub fn emit(
        &mut self,
        at: SimTime,
        level: TraceLevel,
        source: impl Into<String>,
        message: impl Into<String>,
    ) {
        if level < self.min_level {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(TraceRecord {
            at,
            level,
            source: source.into(),
            message: message.into(),
        });
    }

    /// Iterates over retained records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Whether any retained record matches `pred`.
    pub fn any(&self, pred: impl FnMut(&TraceRecord) -> bool) -> bool {
        self.records.iter().any(pred)
    }

    /// Number of records evicted due to capacity.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no records are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Removes all retained records (the dropped count is kept).
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ps: u64) -> SimTime {
        SimTime::from_picos(ps)
    }

    #[test]
    fn records_kept_in_order() {
        let mut tb = TraceBuffer::with_capacity(8);
        tb.emit(t(1), TraceLevel::Info, "a", "one");
        tb.emit(t(2), TraceLevel::Info, "a", "two");
        let msgs: Vec<_> = tb.iter().map(|r| r.message.as_str()).collect();
        assert_eq!(msgs, ["one", "two"]);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut tb = TraceBuffer::with_capacity(2);
        tb.emit(t(1), TraceLevel::Info, "a", "one");
        tb.emit(t(2), TraceLevel::Info, "a", "two");
        tb.emit(t(3), TraceLevel::Info, "a", "three");
        assert_eq!(tb.dropped(), 1);
        let msgs: Vec<_> = tb.iter().map(|r| r.message.as_str()).collect();
        assert_eq!(msgs, ["two", "three"]);
    }

    #[test]
    fn min_level_filters() {
        let mut tb = TraceBuffer::with_capacity(8);
        tb.set_min_level(TraceLevel::Warn);
        tb.emit(t(1), TraceLevel::Debug, "a", "hidden");
        tb.emit(t(2), TraceLevel::Error, "a", "shown");
        assert_eq!(tb.len(), 1);
        assert!(tb.any(|r| r.message == "shown"));
    }

    #[test]
    fn multi_eviction_drop_accounting_survives_clear() {
        let mut tb = TraceBuffer::with_capacity(3);
        for i in 0..10u64 {
            tb.emit(t(i), TraceLevel::Info, "a", format!("m{i}"));
        }
        assert_eq!(tb.dropped(), 7);
        assert_eq!(tb.len(), 3);
        // clear() discards retained records but keeps the audit count.
        tb.clear();
        assert!(tb.is_empty());
        assert_eq!(tb.dropped(), 7);
        // Drops resume counting against the same total afterwards.
        for i in 0..4u64 {
            tb.emit(t(100 + i), TraceLevel::Info, "a", format!("n{i}"));
        }
        assert_eq!(tb.dropped(), 8);
    }

    #[test]
    fn min_level_boundary_is_inclusive() {
        let mut tb = TraceBuffer::with_capacity(8);
        tb.set_min_level(TraceLevel::Warn);
        tb.emit(t(1), TraceLevel::Info, "a", "below");
        tb.emit(t(2), TraceLevel::Warn, "a", "at");
        tb.emit(t(3), TraceLevel::Error, "a", "above");
        let msgs: Vec<_> = tb.iter().map(|r| r.message.as_str()).collect();
        assert_eq!(msgs, ["at", "above"]);
        // Filtered-out records are suppressed, not dropped-by-capacity.
        assert_eq!(tb.dropped(), 0);
    }

    #[test]
    fn iter_stays_oldest_first_after_wraparound() {
        let mut tb = TraceBuffer::with_capacity(4);
        for i in 0..11u64 {
            tb.emit(t(i), TraceLevel::Info, "a", format!("m{i}"));
        }
        let times: Vec<u64> = tb.iter().map(|r| r.at.as_picos()).collect();
        assert_eq!(times, [7, 8, 9, 10]);
        assert!(times.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn display_formats() {
        let r = TraceRecord {
            at: t(1_000),
            level: TraceLevel::Warn,
            source: "vr".into(),
            message: "late".into(),
        };
        assert_eq!(r.to_string(), "[1ns WARN vr] late");
    }

    #[test]
    fn level_ordering() {
        assert!(TraceLevel::Debug < TraceLevel::Info);
        assert!(TraceLevel::Info < TraceLevel::Warn);
        assert!(TraceLevel::Warn < TraceLevel::Error);
    }
}
