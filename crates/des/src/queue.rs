//! Pending-event queue.
//!
//! A calendar for discrete-event simulation: events are closures over a
//! world type `W`, ordered by firing time with FIFO tie-breaking (two
//! events scheduled for the same instant fire in scheduling order,
//! which keeps runs deterministic).
//!
//! Internally the queue is a **slab plus an index heap**: the boxed
//! actions live in a slot arena (`Vec<Slot<W>>`, vacant slots chained
//! on a free list), while the binary heap orders lightweight typed
//! entries of `(time, sequence, slot)` only. Cancellation is O(1) — it
//! frees the slot and flips its liveness, leaving the heap entry behind
//! as a lazy tombstone that `pop_due`/`peek_time` skim past in O(log n)
//! when it surfaces. The old design boxed the action inside every heap
//! node and paid an O(n) scan per cancel just to report whether the
//! event was still pending.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// Identifies a scheduled event so it can be cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId {
    seq: u64,
    slot: u32,
}

impl EventId {
    /// Raw sequence number (monotonically increasing per queue).
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.seq
    }
}

/// The action an event performs when it fires.
pub type EventFn<W> = Box<dyn FnOnce(&mut W, &mut EventQueue<W>)>;

/// Sentinel for "no next free slot" in the slab free list.
const NO_SLOT: u32 = u32::MAX;

/// One slab cell: either a live action (stamped with its sequence
/// number so stale heap entries and stale [`EventId`]s are detectable
/// after slot reuse) or a link in the vacant-slot free list.
enum Slot<W> {
    Vacant { next_free: u32 },
    Occupied { seq: u64, action: EventFn<W> },
}

/// A typed heap entry: ordering data only, no allocation.
#[derive(Clone, Copy)]
struct Scheduled {
    at: SimTime,
    seq: u64,
    slot: u32,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then lowest
        // sequence number) event is popped first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Time-ordered queue of pending events over a world type `W`.
///
/// # Examples
///
/// ```
/// use plugvolt_des::queue::EventQueue;
/// use plugvolt_des::time::SimTime;
///
/// let mut q: EventQueue<Vec<u32>> = EventQueue::new();
/// q.schedule_at(SimTime::from_picos(20), |w, _| w.push(2));
/// q.schedule_at(SimTime::from_picos(10), |w, _| w.push(1));
/// let mut world = Vec::new();
/// while let Some((t, f)) = q.pop_due(SimTime::MAX) {
///     let _ = t;
///     f(&mut world, &mut q);
/// }
/// assert_eq!(world, [1, 2]);
/// ```
pub struct EventQueue<W> {
    heap: BinaryHeap<Scheduled>,
    slots: Vec<Slot<W>>,
    free_head: u32,
    live: usize,
    next_seq: u64,
}

impl<W> Default for EventQueue<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> fmt::Debug for EventQueue<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.live)
            .field("tombstones", &(self.heap.len() - self.live))
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

impl<W> EventQueue<W> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free_head: NO_SLOT,
            live: 0,
            next_seq: 0,
        }
    }

    /// Schedules `action` to fire at absolute time `at`.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        action: impl FnOnce(&mut W, &mut EventQueue<W>) + 'static,
    ) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let occupied = Slot::Occupied {
            seq,
            action: Box::new(action),
        };
        let slot = if self.free_head == NO_SLOT {
            assert!(self.slots.len() < NO_SLOT as usize, "event slab exhausted");
            self.slots.push(occupied);
            (self.slots.len() - 1) as u32
        } else {
            let slot = self.free_head;
            match std::mem::replace(&mut self.slots[slot as usize], occupied) {
                Slot::Vacant { next_free } => self.free_head = next_free,
                Slot::Occupied { .. } => unreachable!("free list pointed at a live slot"),
            }
            slot
        };
        self.heap.push(Scheduled { at, seq, slot });
        self.live += 1;
        EventId { seq, slot }
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet fired (it will now never
    /// fire); `false` if it already fired, was already cancelled, or the id
    /// is unknown. The slot's sequence stamp answers that in O(1): after an
    /// event fires (or is cancelled) its slot is vacant or reused under a
    /// newer sequence number, so a stale id never matches.
    pub fn cancel(&mut self, id: EventId) -> bool {
        match self.slots.get(id.slot as usize) {
            Some(Slot::Occupied { seq, .. }) if *seq == id.seq => {
                self.free_slot(id.slot);
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// Number of live (not cancelled) pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no live events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Firing time of the next live event, if any.
    #[must_use]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skim_tombstones();
        self.heap.peek().map(|s| s.at)
    }

    /// Pops the next live event if it is due at or before `horizon`.
    ///
    /// Returns the event's firing time together with its action; the caller
    /// is responsible for advancing its clock to that time before invoking
    /// the action.
    pub fn pop_due(&mut self, horizon: SimTime) -> Option<(SimTime, EventFn<W>)> {
        self.skim_tombstones();
        if self.heap.peek().is_some_and(|s| s.at <= horizon) {
            let s = self.heap.pop().expect("peeked entry vanished");
            let action = self.free_slot(s.slot).expect("live heap entry has action");
            self.live -= 1;
            Some((s.at, action))
        } else {
            None
        }
    }

    /// Whether a heap entry still refers to a live slot (cancelled events
    /// leave their entry behind; the slot is vacant or reused by then).
    fn entry_is_live(&self, s: &Scheduled) -> bool {
        matches!(
            self.slots.get(s.slot as usize),
            Some(Slot::Occupied { seq, .. }) if *seq == s.seq
        )
    }

    /// Discards dead heap entries until a live one (or nothing) is on top.
    fn skim_tombstones(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.entry_is_live(top) {
                break;
            }
            self.heap.pop();
        }
    }

    /// Vacates a slot onto the free list, returning its action if any.
    fn free_slot(&mut self, slot: u32) -> Option<EventFn<W>> {
        let vacant = Slot::Vacant {
            next_free: self.free_head,
        };
        match std::mem::replace(&mut self.slots[slot as usize], vacant) {
            Slot::Occupied { action, .. } => {
                self.free_head = slot;
                Some(action)
            }
            Slot::Vacant { next_free } => {
                // Put the original vacancy back; nothing was freed.
                self.slots[slot as usize] = Slot::Vacant { next_free };
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn at(ps: u64) -> SimTime {
        SimTime::from_picos(ps)
    }

    #[test]
    fn fires_in_time_order() {
        let mut q: EventQueue<Vec<u64>> = EventQueue::new();
        q.schedule_at(at(30), |w, _| w.push(30));
        q.schedule_at(at(10), |w, _| w.push(10));
        q.schedule_at(at(20), |w, _| w.push(20));
        let mut world = Vec::new();
        while let Some((_, f)) = q.pop_due(SimTime::MAX) {
            f(&mut world, &mut q);
        }
        assert_eq!(world, [10, 20, 30]);
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut q: EventQueue<Vec<u64>> = EventQueue::new();
        for i in 0..8 {
            q.schedule_at(at(5), move |w, _| w.push(i));
        }
        let mut world = Vec::new();
        while let Some((_, f)) = q.pop_due(SimTime::MAX) {
            f(&mut world, &mut q);
        }
        assert_eq!(world, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn horizon_bounds_pop() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule_at(at(100), |_, _| {});
        assert!(q.pop_due(at(99)).is_none());
        assert!(q.pop_due(at(100)).is_some());
    }

    #[test]
    fn cancellation_suppresses_event() {
        let mut q: EventQueue<Vec<u64>> = EventQueue::new();
        let keep = q.schedule_at(at(1), |w, _| w.push(1));
        let drop = q.schedule_at(at(2), |w, _| w.push(2));
        assert!(q.cancel(drop));
        assert!(!q.cancel(drop), "double cancel reports false");
        let mut world = Vec::new();
        while let Some((_, f)) = q.pop_due(SimTime::MAX) {
            f(&mut world, &mut q);
        }
        assert_eq!(world, [1]);
        assert!(!q.cancel(keep), "cancelling a fired event reports false");
    }

    #[test]
    fn cancel_after_fire_is_false_even_when_slot_is_reused() {
        // Regression for the slab design: once an event fires, its slot
        // goes back on the free list and a later event may reuse it. A
        // stale id for the fired event must still report false and must
        // not cancel the unrelated event now living in that slot.
        let mut q: EventQueue<Vec<u64>> = EventQueue::new();
        let first = q.schedule_at(at(1), |w, _| w.push(1));
        let mut world = Vec::new();
        let (_, f) = q.pop_due(SimTime::MAX).expect("first event is due");
        f(&mut world, &mut q);
        // This reuses the slot the fired event vacated.
        let second = q.schedule_at(at(2), |w, _| w.push(2));
        assert!(!q.cancel(first), "cancel after fire must report false");
        assert_eq!(q.len(), 1, "the reused slot's event must stay live");
        while let Some((_, f)) = q.pop_due(SimTime::MAX) {
            f(&mut world, &mut q);
        }
        assert_eq!(world, [1, 2]);
        assert!(!q.cancel(second), "second event fired too");
    }

    #[test]
    fn events_can_reschedule() {
        // A self-rearming timer: fires at 0, 10, 20 then stops.
        fn arm(q: &mut EventQueue<Vec<u64>>, t: SimTime) {
            q.schedule_at(t, move |w, q| {
                w.push(t.as_picos());
                if w.len() < 3 {
                    arm(q, t + SimDuration::from_picos(10));
                }
            });
        }
        let mut q = EventQueue::new();
        arm(&mut q, SimTime::ZERO);
        let mut world = Vec::new();
        while let Some((_, f)) = q.pop_due(SimTime::MAX) {
            f(&mut world, &mut q);
        }
        assert_eq!(world, [0, 10, 20]);
    }

    #[test]
    fn len_accounts_for_cancelled() {
        let mut q: EventQueue<()> = EventQueue::new();
        let a = q.schedule_at(at(1), |_, _| {});
        let _b = q.schedule_at(at(2), |_, _| {});
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn unknown_id_cancel_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId { seq: 42, slot: 0 }));
    }

    #[test]
    fn cancelled_slot_is_reused_and_tombstone_is_skimmed() {
        let mut q: EventQueue<Vec<u64>> = EventQueue::new();
        let a = q.schedule_at(at(10), |w, _| w.push(10));
        assert!(q.cancel(a));
        // Reuses the cancelled event's slot; its heap tombstone remains.
        q.schedule_at(at(5), |w, _| w.push(5));
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(at(5)));
        let mut world = Vec::new();
        while let Some((_, f)) = q.pop_due(SimTime::MAX) {
            f(&mut world, &mut q);
        }
        assert_eq!(world, [5]);
        assert!(q.is_empty());
    }
}
