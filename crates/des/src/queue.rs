//! Pending-event queue.
//!
//! A classic calendar for discrete-event simulation: events are closures
//! over a world type `W`, ordered by firing time with FIFO tie-breaking
//! (two events scheduled for the same instant fire in scheduling order,
//! which keeps runs deterministic).

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;
use std::fmt;

/// Identifies a scheduled event so it can be cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    /// Raw sequence number (monotonically increasing per queue).
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

/// The action an event performs when it fires.
pub type EventFn<W> = Box<dyn FnOnce(&mut W, &mut EventQueue<W>)>;

struct Scheduled<W> {
    at: SimTime,
    seq: u64,
    action: EventFn<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then lowest
        // sequence number) event is popped first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Time-ordered queue of pending events over a world type `W`.
///
/// # Examples
///
/// ```
/// use plugvolt_des::queue::EventQueue;
/// use plugvolt_des::time::SimTime;
///
/// let mut q: EventQueue<Vec<u32>> = EventQueue::new();
/// q.schedule_at(SimTime::from_picos(20), |w, _| w.push(2));
/// q.schedule_at(SimTime::from_picos(10), |w, _| w.push(1));
/// let mut world = Vec::new();
/// while let Some((t, f)) = q.pop_due(SimTime::MAX) {
///     let _ = t;
///     f(&mut world, &mut q);
/// }
/// assert_eq!(world, [1, 2]);
/// ```
pub struct EventQueue<W> {
    heap: BinaryHeap<Scheduled<W>>,
    cancelled: HashSet<EventId>,
    next_seq: u64,
}

impl<W> Default for EventQueue<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> fmt::Debug for EventQueue<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("cancelled", &self.cancelled.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

impl<W> EventQueue<W> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Schedules `action` to fire at absolute time `at`.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        action: impl FnOnce(&mut W, &mut EventQueue<W>) + 'static,
    ) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled {
            at,
            seq,
            action: Box::new(action),
        });
        EventId(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet fired (it will now never
    /// fire); `false` if it already fired, was already cancelled, or the id
    /// is unknown.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        // We cannot cheaply know whether the event already fired; record the
        // tombstone and report whether it was newly inserted while the event
        // is still pending.
        let pending = self.heap.iter().any(|s| s.seq == id.0);
        if pending {
            self.cancelled.insert(id)
        } else {
            false
        }
    }

    /// Number of live (not cancelled) pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// Whether no live events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Firing time of the next live event, if any.
    #[must_use]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skim_cancelled();
        self.heap.peek().map(|s| s.at)
    }

    /// Pops the next live event if it is due at or before `horizon`.
    ///
    /// Returns the event's firing time together with its action; the caller
    /// is responsible for advancing its clock to that time before invoking
    /// the action.
    pub fn pop_due(&mut self, horizon: SimTime) -> Option<(SimTime, EventFn<W>)> {
        self.skim_cancelled();
        if self.heap.peek().is_some_and(|s| s.at <= horizon) {
            let s = self.heap.pop().expect("peeked entry vanished");
            Some((s.at, s.action))
        } else {
            None
        }
    }

    fn skim_cancelled(&mut self) {
        while let Some(top) = self.heap.peek() {
            let id = EventId(top.seq);
            if self.cancelled.remove(&id) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn at(ps: u64) -> SimTime {
        SimTime::from_picos(ps)
    }

    #[test]
    fn fires_in_time_order() {
        let mut q: EventQueue<Vec<u64>> = EventQueue::new();
        q.schedule_at(at(30), |w, _| w.push(30));
        q.schedule_at(at(10), |w, _| w.push(10));
        q.schedule_at(at(20), |w, _| w.push(20));
        let mut world = Vec::new();
        while let Some((_, f)) = q.pop_due(SimTime::MAX) {
            f(&mut world, &mut q);
        }
        assert_eq!(world, [10, 20, 30]);
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut q: EventQueue<Vec<u64>> = EventQueue::new();
        for i in 0..8 {
            q.schedule_at(at(5), move |w, _| w.push(i));
        }
        let mut world = Vec::new();
        while let Some((_, f)) = q.pop_due(SimTime::MAX) {
            f(&mut world, &mut q);
        }
        assert_eq!(world, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn horizon_bounds_pop() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule_at(at(100), |_, _| {});
        assert!(q.pop_due(at(99)).is_none());
        assert!(q.pop_due(at(100)).is_some());
    }

    #[test]
    fn cancellation_suppresses_event() {
        let mut q: EventQueue<Vec<u64>> = EventQueue::new();
        let keep = q.schedule_at(at(1), |w, _| w.push(1));
        let drop = q.schedule_at(at(2), |w, _| w.push(2));
        assert!(q.cancel(drop));
        assert!(!q.cancel(drop), "double cancel reports false");
        let mut world = Vec::new();
        while let Some((_, f)) = q.pop_due(SimTime::MAX) {
            f(&mut world, &mut q);
        }
        assert_eq!(world, [1]);
        assert!(!q.cancel(keep), "cancelling a fired event reports false");
    }

    #[test]
    fn events_can_reschedule() {
        // A self-rearming timer: fires at 0, 10, 20 then stops.
        fn arm(q: &mut EventQueue<Vec<u64>>, t: SimTime) {
            q.schedule_at(t, move |w, q| {
                w.push(t.as_picos());
                if w.len() < 3 {
                    arm(q, t + SimDuration::from_picos(10));
                }
            });
        }
        let mut q = EventQueue::new();
        arm(&mut q, SimTime::ZERO);
        let mut world = Vec::new();
        while let Some((_, f)) = q.pop_due(SimTime::MAX) {
            f(&mut world, &mut q);
        }
        assert_eq!(world, [0, 10, 20]);
    }

    #[test]
    fn len_accounts_for_cancelled() {
        let mut q: EventQueue<()> = EventQueue::new();
        let a = q.schedule_at(at(1), |_, _| {});
        let _b = q.schedule_at(at(2), |_, _| {});
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn unknown_id_cancel_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
    }
}
