//! # plugvolt-des
//!
//! Deterministic discrete-event simulation kernel underpinning the
//! *Plug Your Volt* (DAC 2024) reproduction.
//!
//! The reproduction replaces the paper's physical Intel test benches with a
//! software model; every layer of that model (voltage regulator transients,
//! kernel scheduler slices, MSR polling timers, attack campaigns) runs on
//! the primitives defined here:
//!
//! - [`time`] — picosecond-resolution [`time::SimTime`] / [`time::SimDuration`];
//! - [`queue`] + [`sim`] — the event calendar and executive;
//! - [`rng`] — labelled deterministic random streams;
//! - [`stats`] — online summaries and histograms for reports;
//! - [`trace`] — bounded trace ring used to assert on behaviour sequences;
//! - [`vcd`] — IEEE-1364 Value Change Dump export for waveform viewers.
//!
//! # Examples
//!
//! A tiny two-event simulation:
//!
//! ```
//! use plugvolt_des::prelude::*;
//!
//! #[derive(Debug, Default)]
//! struct World {
//!     voltage_mv: i32,
//! }
//!
//! let mut sim = Simulator::new(World::default());
//! sim.schedule_in(SimDuration::from_micros(5), |w: &mut World, _| {
//!     w.voltage_mv = -150; // undervolt lands
//! });
//! sim.schedule_in(SimDuration::from_micros(9), |w: &mut World, _| {
//!     w.voltage_mv = 0; // countermeasure restores
//! });
//! sim.run_for(SimDuration::from_micros(10));
//! assert_eq!(sim.world().voltage_mv, 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod queue;
pub mod rng;
pub mod sim;
pub mod stats;
pub mod time;
pub mod trace;
pub mod vcd;

/// Convenient glob-import of the commonly used names.
pub mod prelude {
    pub use crate::queue::{EventId, EventQueue};
    pub use crate::rng::SimRng;
    pub use crate::sim::{PeriodicHandle, Simulator};
    pub use crate::stats::{Histogram, Summary};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::trace::{TraceBuffer, TraceLevel, TraceRecord};
    pub use crate::vcd::{SignalId, SignalKind, Value, VcdRecorder};
}
