//! Online statistics used by the harnesses and reports.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Streaming summary statistics (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use plugvolt_des::stats::Summary;
///
/// let mut s = Summary::new();
/// for v in [1.0, 2.0, 3.0, 4.0] {
///     s.record(v);
/// }
/// assert_eq!(s.count(), 4);
/// assert!((s.mean() - 2.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    #[must_use]
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            write!(f, "n=0")
        } else {
            write!(
                f,
                "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
                self.count,
                self.mean(),
                self.std_dev(),
                self.min,
                self.max
            )
        }
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.record(v);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Summary::new();
        s.extend(iter);
        s
    }
}

/// Fixed-bin histogram over a closed value range.
///
/// Out-of-range observations are clamped into the first/last bin so the
/// total count always equals the number of `record` calls.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi]` with `bins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero or `lo >= hi`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(lo < hi, "lo must be below hi");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        let n = self.bins.len();
        let frac = (value - self.lo) / (self.hi - self.lo);
        let idx = ((frac * n as f64).floor() as i64).clamp(0, n as i64 - 1) as usize;
        self.bins[idx] += 1;
    }

    /// Bin counts.
    #[must_use]
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Total observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Inclusive value range covered by bin `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    #[must_use]
    pub fn bin_range(&self, idx: usize) -> (f64, f64) {
        assert!(idx < self.bins.len());
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        (
            self.lo + width * idx as f64,
            self.lo + width * (idx + 1) as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_empty() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_none());
        assert!(s.max().is_none());
        assert_eq!(s.to_string(), "n=0");
    }

    #[test]
    fn summary_basic_moments() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn summary_merge_matches_single_stream() {
        let all: Summary = (0..100).map(f64::from).collect();
        let mut left: Summary = (0..37).map(f64::from).collect();
        let right: Summary = (37..100).map(f64::from).collect();
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn summary_merge_with_empty() {
        let mut s: Summary = [1.0, 2.0].into_iter().collect();
        s.merge(&Summary::new());
        assert_eq!(s.count(), 2);
        let mut e = Summary::new();
        e.merge(&s);
        assert_eq!(e.count(), 2);
    }

    #[test]
    fn histogram_bins_and_clamping() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(-100.0); // clamps to bin 0
        h.record(0.5);
        h.record(9.9);
        h.record(100.0); // clamps to bin 4
        assert_eq!(h.bins(), &[2, 0, 0, 0, 2]);
        assert_eq!(h.total(), 4);
        let (lo, hi) = h.bin_range(1);
        assert!((lo - 2.0).abs() < 1e-12 && (hi - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_rejects_zero_bins() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
