//! Value Change Dump (VCD) writing — waveform export for any simulated
//! signals.
//!
//! The reproduction's rails, frequencies and countermeasure actions are
//! time series; dumping them as IEEE-1364 VCD makes an attack/defense
//! timeline inspectable in GTKWave or any EDA waveform viewer. The
//! writer is deliberately small: declare signals, record changes at
//! monotonically non-decreasing [`SimTime`]s, render to a string or
//! file.

use crate::time::SimTime;
use std::fmt::Write as _;

/// Kind (and width) of a recorded signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignalKind {
    /// Single-bit wire.
    Wire,
    /// Multi-bit bus of the given width (dumped as binary).
    Bus(u8),
    /// Real-valued signal (dumped with `r`).
    Real,
}

/// A recorded value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Bit/bus value (only the low `width` bits are dumped for buses).
    Bits(u64),
    /// Real value.
    Real(f64),
}

#[derive(Debug, Clone)]
struct Signal {
    name: String,
    kind: SignalKind,
    id: String,
    changes: Vec<(SimTime, Value)>,
}

/// Handle to a declared signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignalId(usize);

/// A VCD recording in progress.
///
/// # Examples
///
/// ```
/// use plugvolt_des::time::SimTime;
/// use plugvolt_des::vcd::{SignalKind, Value, VcdRecorder};
///
/// let mut vcd = VcdRecorder::new("plugvolt");
/// let rail = vcd.declare("core_rail_mv", SignalKind::Real);
/// vcd.record(SimTime::ZERO, rail, Value::Real(1_200.0));
/// vcd.record(SimTime::from_picos(5_000_000), rail, Value::Real(1_050.0));
/// let text = vcd.render();
/// assert!(text.contains("$var real 64 "));
/// assert!(text.contains("core_rail_mv"));
/// ```
#[derive(Debug, Clone)]
pub struct VcdRecorder {
    module: String,
    signals: Vec<Signal>,
}

impl VcdRecorder {
    /// Starts a recording under the given module scope name.
    #[must_use]
    pub fn new(module: impl Into<String>) -> Self {
        VcdRecorder {
            module: module.into(),
            signals: Vec::new(),
        }
    }

    /// Declares a signal; record changes against the returned id.
    pub fn declare(&mut self, name: impl Into<String>, kind: SignalKind) -> SignalId {
        let idx = self.signals.len();
        self.signals.push(Signal {
            name: name.into(),
            kind,
            id: short_id(idx),
            changes: Vec::new(),
        });
        SignalId(idx)
    }

    /// Records a value change at `at`. Identical consecutive values are
    /// deduplicated; out-of-order timestamps are clamped forward (VCD
    /// time must be monotone).
    ///
    /// # Panics
    ///
    /// Panics if `signal` was not declared on this recorder.
    pub fn record(&mut self, at: SimTime, signal: SignalId, value: Value) {
        let sig = &mut self.signals[signal.0];
        if let Some(&(last_t, last_v)) = sig.changes.last() {
            if last_v == value {
                return;
            }
            if at < last_t {
                sig.changes.push((last_t, value));
                return;
            }
        }
        sig.changes.push((at, value));
    }

    /// Number of retained changes across all signals.
    #[must_use]
    pub fn change_count(&self) -> usize {
        self.signals.iter().map(|s| s.changes.len()).sum()
    }

    /// Renders the VCD text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("$timescale 1ps $end\n");
        let _ = writeln!(out, "$scope module {} $end", self.module);
        for s in &self.signals {
            match s.kind {
                SignalKind::Wire => {
                    let _ = writeln!(out, "$var wire 1 {} {} $end", s.id, s.name);
                }
                SignalKind::Bus(w) => {
                    let _ = writeln!(out, "$var wire {} {} {} $end", w, s.id, s.name);
                }
                SignalKind::Real => {
                    let _ = writeln!(out, "$var real 64 {} {} $end", s.id, s.name);
                }
            }
        }
        out.push_str("$upscope $end\n$enddefinitions $end\n");

        // Merge all changes into one time-ordered stream.
        let mut events: Vec<(SimTime, usize, Value)> = Vec::with_capacity(self.change_count());
        for (i, s) in self.signals.iter().enumerate() {
            for &(t, v) in &s.changes {
                events.push((t, i, v));
            }
        }
        events.sort_by_key(|&(t, i, _)| (t, i));
        let mut current_time: Option<SimTime> = None;
        for (t, i, v) in events {
            if current_time != Some(t) {
                let _ = writeln!(out, "#{}", t.as_picos());
                current_time = Some(t);
            }
            let s = &self.signals[i];
            match (s.kind, v) {
                (SignalKind::Wire, Value::Bits(b)) => {
                    let _ = writeln!(out, "{}{}", b & 1, s.id);
                }
                (SignalKind::Bus(w), Value::Bits(b)) => {
                    let masked = if w >= 64 { b } else { b & ((1u64 << w) - 1) };
                    let _ = writeln!(out, "b{:b} {}", masked, s.id);
                }
                (SignalKind::Real, Value::Real(r)) => {
                    let _ = writeln!(out, "r{r} {}", s.id);
                }
                // Kind/value mismatches degrade gracefully to a real dump.
                (_, Value::Real(r)) => {
                    let _ = writeln!(out, "r{r} {}", s.id);
                }
                (SignalKind::Real, Value::Bits(b)) => {
                    let _ = writeln!(out, "r{b} {}", s.id);
                }
            }
        }
        out
    }
}

/// VCD identifier characters for signal `idx` (printable ASCII 33–126).
fn short_id(idx: usize) -> String {
    let mut n = idx;
    let mut id = String::new();
    loop {
        id.push(char::from(33 + (n % 94) as u8));
        n /= 94;
        if n == 0 {
            break;
        }
    }
    id
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ps: u64) -> SimTime {
        SimTime::from_picos(ps)
    }

    #[test]
    fn renders_header_and_changes() {
        let mut vcd = VcdRecorder::new("top");
        let w = vcd.declare("unsafe_state", SignalKind::Wire);
        let b = vcd.declare("freq_ratio", SignalKind::Bus(8));
        let r = vcd.declare("rail_mv", SignalKind::Real);
        vcd.record(t(0), w, Value::Bits(0));
        vcd.record(t(0), b, Value::Bits(18));
        vcd.record(t(0), r, Value::Real(893.0));
        vcd.record(t(100), w, Value::Bits(1));
        vcd.record(t(100), r, Value::Real(750.5));
        let s = vcd.render();
        assert!(s.contains("$timescale 1ps $end"));
        assert!(s.contains("$scope module top $end"));
        assert!(s.contains("$var wire 1 ! unsafe_state $end"));
        assert!(s.contains("$var wire 8 \" freq_ratio $end"));
        assert!(s.contains("#0\n"));
        assert!(s.contains("#100\n"));
        assert!(s.contains("b10010 \""));
        assert!(s.contains("r750.5"));
        assert!(s.contains("1!"));
    }

    #[test]
    fn deduplicates_identical_values() {
        let mut vcd = VcdRecorder::new("top");
        let r = vcd.declare("x", SignalKind::Real);
        vcd.record(t(0), r, Value::Real(1.0));
        vcd.record(t(10), r, Value::Real(1.0));
        vcd.record(t(20), r, Value::Real(2.0));
        assert_eq!(vcd.change_count(), 2);
    }

    #[test]
    fn time_ordering_is_enforced() {
        let mut vcd = VcdRecorder::new("top");
        let r = vcd.declare("x", SignalKind::Real);
        vcd.record(t(100), r, Value::Real(1.0));
        vcd.record(t(50), r, Value::Real(2.0)); // clamped forward
        let s = vcd.render();
        let pos_100 = s.find("#100").unwrap();
        assert!(s[pos_100..].contains("r2"));
        assert!(!s.contains("#50"));
    }

    #[test]
    fn short_ids_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let id = short_id(i);
            assert!(id.chars().all(|c| ('!'..='~').contains(&c)), "{id}");
            assert!(seen.insert(id), "collision at {i}");
        }
    }

    #[test]
    fn empty_recorder_renders_valid_skeleton() {
        let vcd = VcdRecorder::new("empty");
        let s = vcd.render();
        assert!(s.contains("$enddefinitions $end"));
        assert_eq!(vcd.change_count(), 0);
    }
}
