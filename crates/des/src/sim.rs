//! The simulation executive: a clock plus an event queue over a world.

use crate::queue::{EventId, EventQueue};
use crate::time::{SimDuration, SimTime};
use std::cell::Cell;
use std::fmt;
use std::rc::Rc;

/// Cancellation handle for a periodic event created with
/// [`Simulator::schedule_every`].
///
/// Cloning yields another handle to the same periodic event.
#[derive(Debug, Clone, Default)]
pub struct PeriodicHandle {
    cancelled: Rc<Cell<bool>>,
}

impl PeriodicHandle {
    fn new() -> Self {
        PeriodicHandle::default()
    }

    /// Stops the periodic event; it will never fire again.
    pub fn cancel(&self) {
        self.cancelled.set(true);
    }

    /// Whether [`cancel`](Self::cancel) has been called.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.get()
    }
}

/// A discrete-event simulator owning a world of type `W`.
///
/// The world holds all mutable simulation state; events are closures that
/// receive `&mut W` and may schedule further events. Runs are fully
/// deterministic: equal worlds plus equal schedules produce equal histories.
///
/// # Examples
///
/// ```
/// use plugvolt_des::sim::Simulator;
/// use plugvolt_des::time::{SimDuration, SimTime};
///
/// let mut sim = Simulator::new(0u64);
/// sim.schedule_in(SimDuration::from_nanos(3), |w, _| *w += 1);
/// sim.schedule_in(SimDuration::from_nanos(1), |w, _| *w += 10);
/// sim.run_until(SimTime::from_picos(2_000));
/// assert_eq!(*sim.world(), 10); // only the 1 ns event fired
/// sim.run_to_completion();
/// assert_eq!(*sim.world(), 11);
/// ```
pub struct Simulator<W> {
    now: SimTime,
    world: W,
    queue: EventQueue<W>,
    events_fired: u64,
}

impl<W: fmt::Debug> fmt::Debug for Simulator<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("world", &self.world)
            .field("pending", &self.queue.len())
            .field("events_fired", &self.events_fired)
            .finish()
    }
}

impl<W> Simulator<W> {
    /// Creates a simulator at time zero owning `world`.
    pub fn new(world: W) -> Self {
        Simulator {
            now: SimTime::ZERO,
            world,
            queue: EventQueue::new(),
            events_fired: 0,
        }
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events fired so far.
    #[must_use]
    pub fn events_fired(&self) -> u64 {
        self.events_fired
    }

    /// Shared access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Exclusive access to the world (outside any event).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the simulator, returning the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Schedules `action` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        action: impl FnOnce(&mut W, &mut EventQueue<W>) + 'static,
    ) -> EventId {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.schedule_at(at, action)
    }

    /// Schedules `action` to fire `delay` after now.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        action: impl FnOnce(&mut W, &mut EventQueue<W>) + 'static,
    ) -> EventId {
        self.queue.schedule_at(self.now + delay, action)
    }

    /// Schedules a recurring event every `period`, first firing `period`
    /// from now, until `action` returns `false` or the returned handle is
    /// cancelled.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero (the simulation would never advance).
    pub fn schedule_every(
        &mut self,
        period: SimDuration,
        action: impl FnMut(&mut W, SimTime) -> bool + 'static,
    ) -> PeriodicHandle {
        assert!(!period.is_zero(), "period must be non-zero");
        let handle = PeriodicHandle::new();
        fn arm<W>(
            q: &mut EventQueue<W>,
            at: SimTime,
            period: SimDuration,
            handle: PeriodicHandle,
            mut action: impl FnMut(&mut W, SimTime) -> bool + 'static,
        ) {
            q.schedule_at(at, move |w, q| {
                if handle.is_cancelled() {
                    return;
                }
                if action(w, at) {
                    arm(q, at + period, period, handle, action);
                }
            });
        }
        arm(
            &mut self.queue,
            self.now + period,
            period,
            handle.clone(),
            action,
        );
        handle
    }

    /// Cancels a pending event; see [`EventQueue::cancel`].
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Number of live pending events.
    #[must_use]
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Runs all events due at or before `horizon`, then advances the clock
    /// to `horizon`. Returns the number of events fired.
    pub fn run_until(&mut self, horizon: SimTime) -> u64 {
        let mut fired = 0;
        while let Some((at, action)) = self.queue.pop_due(horizon) {
            debug_assert!(at >= self.now, "event in the past");
            self.now = at;
            action(&mut self.world, &mut self.queue);
            fired += 1;
        }
        if horizon > self.now && horizon != SimTime::MAX {
            self.now = horizon;
        }
        self.events_fired += fired;
        fired
    }

    /// Runs for `span` of simulated time from now.
    pub fn run_for(&mut self, span: SimDuration) -> u64 {
        self.run_until(self.now + span)
    }

    /// Runs until the queue is exhausted. The clock stops at the last event.
    pub fn run_to_completion(&mut self) -> u64 {
        self.run_until(SimTime::MAX)
    }

    /// Runs a single event if one is pending, returning its firing time.
    pub fn step(&mut self) -> Option<SimTime> {
        let (at, action) = self.queue.pop_due(SimTime::MAX)?;
        self.now = at;
        action(&mut self.world, &mut self.queue);
        self.events_fired += 1;
        Some(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_to_horizon_without_events() {
        let mut sim = Simulator::new(());
        sim.run_until(SimTime::from_picos(500));
        assert_eq!(sim.now(), SimTime::from_picos(500));
    }

    #[test]
    fn run_to_completion_stops_at_last_event() {
        let mut sim = Simulator::new(0u32);
        sim.schedule_in(SimDuration::from_picos(7), |w, _| *w = 1);
        sim.run_to_completion();
        assert_eq!(sim.now(), SimTime::from_picos(7));
        assert_eq!(*sim.world(), 1);
    }

    #[test]
    fn periodic_event_runs_until_false() {
        let mut sim = Simulator::new(Vec::<u64>::new());
        sim.schedule_every(SimDuration::from_picos(10), |w, t| {
            w.push(t.as_picos());
            w.len() < 4
        });
        sim.run_to_completion();
        assert_eq!(*sim.world(), [10, 20, 30, 40]);
    }

    #[test]
    fn periodic_event_can_be_cancelled() {
        let mut sim = Simulator::new(0u64);
        let handle = sim.schedule_every(SimDuration::from_picos(10), |w, _| {
            *w += 1;
            true
        });
        sim.run_until(SimTime::from_picos(35));
        assert_eq!(*sim.world(), 3);
        handle.cancel();
        assert!(handle.is_cancelled());
        sim.run_until(SimTime::from_picos(100));
        assert_eq!(*sim.world(), 3);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_in_past_panics() {
        let mut sim = Simulator::new(());
        sim.run_until(SimTime::from_picos(100));
        sim.schedule_at(SimTime::from_picos(50), |_, _| {});
    }

    #[test]
    fn nested_scheduling_preserves_order() {
        let mut sim = Simulator::new(Vec::<&'static str>::new());
        sim.schedule_in(SimDuration::from_picos(10), |w, q| {
            w.push("a");
            q.schedule_at(SimTime::from_picos(15), |w, _| w.push("b"));
        });
        sim.schedule_in(SimDuration::from_picos(20), |w, _| w.push("c"));
        sim.run_to_completion();
        assert_eq!(*sim.world(), ["a", "b", "c"]);
    }

    #[test]
    fn step_fires_one_event() {
        let mut sim = Simulator::new(0u32);
        sim.schedule_in(SimDuration::from_picos(1), |w, _| *w += 1);
        sim.schedule_in(SimDuration::from_picos(2), |w, _| *w += 1);
        assert_eq!(sim.step(), Some(SimTime::from_picos(1)));
        assert_eq!(*sim.world(), 1);
        assert_eq!(sim.events_fired(), 1);
        assert_eq!(sim.pending_events(), 1);
    }
}
