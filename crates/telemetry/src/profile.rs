//! The exported telemetry profile: a stable, ordered snapshot of one
//! registry.
//!
//! The JSON layout is versioned by [`SCHEMA_VERSION`]; any change to
//! field names, row ordering, or the canonical histogram specs in
//! [`crate::registry::HistogramSpec`] requires a bump. Row order is the
//! registry's `BTreeMap` key order, so two identical runs serialize to
//! byte-identical JSON.

use crate::event::TimedEvent;
use crate::registry::{MetricKey, Registry, Sink};
use plugvolt_des::stats::Summary;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Version of the profile JSON layout. Bump on any breaking change.
///
/// v2 added `spans_dropped` (span capture-buffer overflow accounting,
/// see [`crate::span::Tracer::dropped`]).
pub const SCHEMA_VERSION: u32 = 2;

/// One exported counter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterRow {
    /// Emitting component.
    pub component: String,
    /// Metric name.
    pub name: String,
    /// Logical core, or `None` for package-wide counters.
    pub core: Option<u32>,
    /// Accumulated count.
    pub value: u64,
}

/// One exported gauge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeRow {
    /// Emitting component.
    pub component: String,
    /// Metric name.
    pub name: String,
    /// Logical core, or `None` for package-wide gauges.
    pub core: Option<u32>,
    /// Last value written.
    pub value: f64,
}

/// One exported fixed-bin histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramRow {
    /// Emitting component.
    pub component: String,
    /// Metric name.
    pub name: String,
    /// Logical core, or `None` for package-wide histograms.
    pub core: Option<u32>,
    /// Lower bound of the covered range.
    pub lo: f64,
    /// Upper bound of the covered range.
    pub hi: f64,
    /// Per-bin observation counts (out-of-range clamps to the edges).
    pub bins: Vec<u64>,
}

impl HistogramRow {
    /// Total observations across all bins.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }
}

/// One exported streaming summary (flattened Welford moments).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SummaryRow {
    /// Emitting component.
    pub component: String,
    /// Metric name.
    pub name: String,
    /// Logical core; `None` rows are all-core rollups produced with
    /// `Summary::merge`.
    pub core: Option<u32>,
    /// Number of observations.
    pub count: u64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Population standard deviation (0 when empty).
    pub std_dev: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
}

impl SummaryRow {
    fn from_summary(key: &MetricKey, s: &Summary) -> Self {
        SummaryRow {
            component: key.component.to_string(),
            name: key.name.to_string(),
            core: key.core,
            count: s.count(),
            mean: s.mean(),
            std_dev: s.std_dev(),
            min: s.min().unwrap_or(0.0),
            max: s.max().unwrap_or(0.0),
        }
    }
}

/// A stable snapshot of one [`Registry`], ready for JSON or table
/// export.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryProfile {
    /// Layout version; see [`SCHEMA_VERSION`].
    pub schema_version: u32,
    /// The experiment (or tool) that produced the profile.
    pub experiment: String,
    /// Counters, ordered by `(component, name, core)`.
    pub counters: Vec<CounterRow>,
    /// Gauges, ordered by `(component, name, core)`.
    pub gauges: Vec<GaugeRow>,
    /// Histograms, ordered by `(component, name, core)`.
    pub histograms: Vec<HistogramRow>,
    /// Summaries, ordered by `(component, name, core)`; per-core rows
    /// are accompanied by an all-core rollup with `core: null`.
    pub summaries: Vec<SummaryRow>,
    /// Retained event timeline, oldest first.
    pub events: Vec<TimedEvent>,
    /// Events evicted from the bounded timeline.
    pub events_dropped: u64,
    /// Trace records silently dropped by `TraceBuffer`s during the run.
    pub trace_dropped: u64,
    /// Span records dropped by the tracer's bounded capture buffer
    /// (schema v2; zero when profiling a bare [`Registry`], which has
    /// no tracer — [`Sink::profile`] fills it in).
    pub spans_dropped: u64,
}

impl TelemetryProfile {
    /// Snapshots `registry` under the experiment name `experiment`.
    ///
    /// Per-core summaries additionally produce an all-core rollup row
    /// (`core: null`) combined with [`Summary::merge`], so aggregate
    /// latency statistics are available without re-streaming samples.
    #[must_use]
    pub fn from_registry(registry: &Registry, experiment: &str) -> Self {
        let counters = registry
            .counters()
            .map(|(k, v)| CounterRow {
                component: k.component.to_string(),
                name: k.name.to_string(),
                core: k.core,
                value: v,
            })
            .collect();
        let gauges = registry
            .gauges()
            .map(|(k, v)| GaugeRow {
                component: k.component.to_string(),
                name: k.name.to_string(),
                core: k.core,
                value: v,
            })
            .collect();
        let histograms = registry
            .histograms()
            .map(|(k, h)| HistogramRow {
                component: k.component.to_string(),
                name: k.name.to_string(),
                core: k.core,
                lo: h.bin_range(0).0,
                hi: h.bin_range(h.bins().len() - 1).1,
                bins: h.bins().to_vec(),
            })
            .collect();

        // Per-core summaries roll up into a core-less aggregate via
        // Summary::merge, unless the instrumentation already recorded
        // a package-wide row under the same (component, name).
        let mut rows: BTreeMap<MetricKey, SummaryRow> = BTreeMap::new();
        let mut rollups: BTreeMap<MetricKey, Summary> = BTreeMap::new();
        for (key, s) in registry.summaries() {
            rows.insert(key.clone(), SummaryRow::from_summary(key, s));
            if key.core.is_some() {
                rollups
                    .entry(MetricKey::global(key.component.clone(), key.name.clone()))
                    .or_insert_with(Summary::new)
                    .merge(s);
            }
        }
        for (key, merged) in &rollups {
            if !rows.contains_key(key) {
                rows.insert(key.clone(), SummaryRow::from_summary(key, merged));
            }
        }

        TelemetryProfile {
            schema_version: SCHEMA_VERSION,
            experiment: experiment.to_string(),
            counters,
            gauges,
            histograms,
            summaries: rows.into_values().collect(),
            events: registry.events().cloned().collect(),
            events_dropped: registry.events_dropped(),
            trace_dropped: registry.trace_dropped(),
            spans_dropped: 0,
        }
    }

    /// Serializes to pretty, deterministic JSON (field order is struct
    /// declaration order; row order is registry key order).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("profile serialization is infallible")
    }

    /// Sum of a counter across all cores (plus any package-wide row).
    #[must_use]
    pub fn counter_total(&self, component: &str, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|r| r.component == component && r.name == name)
            .map(|r| r.value)
            .sum()
    }

    /// The histogram row for `(component, name)` with `core: null`.
    #[must_use]
    pub fn histogram(&self, component: &str, name: &str) -> Option<&HistogramRow> {
        self.histograms
            .iter()
            .find(|r| r.component == component && r.name == name && r.core.is_none())
    }

    /// The value of a package-wide gauge, if present.
    #[must_use]
    pub fn gauge(&self, component: &str, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|r| r.component == component && r.name == name && r.core.is_none())
            .map(|r| r.value)
    }

    /// Renders the human-readable table export.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "telemetry profile: {} (schema v{})",
            self.experiment, self.schema_version
        );
        if !self.counters.is_empty() {
            let _ = writeln!(out, "\ncounters:");
            for r in &self.counters {
                let _ = writeln!(
                    out,
                    "  {:<28} {:>6} {:>12}",
                    format!("{}/{}", r.component, r.name),
                    core_label(r.core),
                    r.value
                );
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "\ngauges:");
            for r in &self.gauges {
                let _ = writeln!(
                    out,
                    "  {:<28} {:>6} {:>12.3}",
                    format!("{}/{}", r.component, r.name),
                    core_label(r.core),
                    r.value
                );
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "\nhistograms:");
            for r in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {:<28} {:>6} n={} range=[{}, {}] bins={:?}",
                    format!("{}/{}", r.component, r.name),
                    core_label(r.core),
                    r.total(),
                    r.lo,
                    r.hi,
                    r.bins
                );
            }
        }
        if !self.summaries.is_empty() {
            let _ = writeln!(out, "\nsummaries:");
            for r in &self.summaries {
                let _ = writeln!(
                    out,
                    "  {:<28} {:>6} n={} mean={:.3} sd={:.3} min={:.3} max={:.3}",
                    format!("{}/{}", r.component, r.name),
                    core_label(r.core),
                    r.count,
                    r.mean,
                    r.std_dev,
                    r.min,
                    r.max
                );
            }
        }
        let _ = writeln!(
            out,
            "\nevents: {} retained, {} dropped; trace records dropped: {}; spans dropped: {}",
            self.events.len(),
            self.events_dropped,
            self.trace_dropped,
            self.spans_dropped
        );
        for e in &self.events {
            let _ = writeln!(out, "  [{}] {}", e.at, e.event);
        }
        out
    }
}

fn core_label(core: Option<u32>) -> String {
    match core {
        Some(c) => format!("core{c}"),
        None => "-".to_string(),
    }
}

impl Sink {
    /// Snapshots the shared registry into a [`TelemetryProfile`],
    /// folding in the sink tracer's span-drop accounting.
    #[must_use]
    pub fn profile(&self, experiment: &str) -> TelemetryProfile {
        let mut p = self.with(|r| TelemetryProfile::from_registry(r, experiment));
        p.spans_dropped = self.tracer().dropped();
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::HistogramSpec;

    #[test]
    fn per_core_summaries_roll_up_with_merge() {
        let mut r = Registry::new();
        r.record_summary(
            MetricKey::per_core("poll", "detection_latency_us", 0),
            100.0,
        );
        r.record_summary(
            MetricKey::per_core("poll", "detection_latency_us", 0),
            200.0,
        );
        r.record_summary(
            MetricKey::per_core("poll", "detection_latency_us", 3),
            300.0,
        );
        let p = TelemetryProfile::from_registry(&r, "unit");
        // Rollup (core: None) sorts before the per-core rows.
        assert_eq!(p.summaries.len(), 3);
        let rollup = &p.summaries[0];
        assert_eq!(rollup.core, None);
        assert_eq!(rollup.count, 3);
        assert!((rollup.mean - 200.0).abs() < 1e-9);
        assert_eq!(rollup.min, 100.0);
        assert_eq!(rollup.max, 300.0);
    }

    #[test]
    fn json_is_deterministic_across_identical_registries() {
        let build = || {
            let mut r = Registry::new();
            r.incr(MetricKey::per_core("msr", "rdmsr", 1));
            r.incr(MetricKey::per_core("msr", "wrmsr", 0));
            r.observe(
                MetricKey::global("poll", "detection_latency_us"),
                HistogramSpec::DETECTION_LATENCY_US,
                210.0,
            );
            r.set_gauge(
                MetricKey::global("deploy/polling-module", "exposure_ns"),
                5.0,
            );
            TelemetryProfile::from_registry(&r, "unit").to_json()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn convenience_accessors() {
        let mut r = Registry::new();
        r.add(MetricKey::per_core("msr", "rdmsr", 0), 5);
        r.add(MetricKey::per_core("msr", "rdmsr", 1), 7);
        r.observe(
            MetricKey::global("deploy", "exposure_window_us"),
            HistogramSpec::EXPOSURE_WINDOW_US,
            0.0,
        );
        let p = TelemetryProfile::from_registry(&r, "unit");
        assert_eq!(p.counter_total("msr", "rdmsr"), 12);
        let h = p
            .histogram("deploy", "exposure_window_us")
            .expect("present");
        assert_eq!(h.total(), 1);
        assert_eq!(p.gauge("deploy", "missing"), None);
    }

    #[test]
    fn table_render_mentions_drop_accounting() {
        let mut r = Registry::new();
        r.add_trace_dropped(3);
        let p = TelemetryProfile::from_registry(&r, "unit");
        let table = p.render_table();
        assert!(table.contains("trace records dropped: 3; spans dropped: 0"));
        assert!(table.starts_with("telemetry profile: unit (schema v2)"));
    }

    #[test]
    fn sink_profile_surfaces_span_drops() {
        let sink = Sink::new();
        sink.tracer().set_enabled(true);
        sink.tracer().enable_capture(1);
        sink.tracer().record_span("unit/a", 1);
        sink.tracer().record_span("unit/b", 1);
        let p = sink.profile("unit");
        assert_eq!(p.spans_dropped, 1);
        assert!(p.render_table().contains("spans dropped: 1"));
    }

    #[test]
    fn profile_round_trips_through_json() {
        let mut r = Registry::new();
        r.incr(MetricKey::global("cpu", "crashes"));
        r.record_summary(MetricKey::per_core("poll", "detection_latency_us", 0), 50.0);
        let p = TelemetryProfile::from_registry(&r, "roundtrip");
        let back: TelemetryProfile =
            serde_json::from_str(&p.to_json()).expect("profile parses back");
        assert_eq!(back, p);
    }
}
