//! Trace exporters: Chrome trace-event JSON and collapsed-stack
//! flamegraph text, both built **only** from the deterministic
//! sim-time channel of [`crate::span::Tracer`].
//!
//! The Chrome export follows the Trace Event Format's "JSON object"
//! flavor — a `traceEvents` array of `ph: "X"` complete events — and
//! loads directly in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`. Timestamps (`ts`) and durations (`dur`) are
//! microseconds; the tracer stores picoseconds, so values are divided
//! by `1e6` into `f64`s whose shortest-round-trip formatting keeps the
//! artifact byte-deterministic. Wall-clock data never enters either
//! export, so both are safe to pin in snapshot tests.
//!
//! The collapsed-stack format is one `path value` line per aggregate
//! row (`;`-joined span labels, then the self sim-time), the input
//! format of Brendan Gregg's `flamegraph.pl` and of speedscope.

use crate::span::{SpanEvent, SpanRow, SPAN_SCHEMA_VERSION};
use serde_json::{json, Value};

/// Renders captured span events as Chrome trace-event JSON (compact,
/// one allocation-free pass over `events`). `process_name` labels the
/// single sim process in the trace viewer's track header.
#[must_use]
pub fn chrome_trace_json(events: &[SpanEvent], process_name: &str) -> String {
    let mut trace_events: Vec<Value> = Vec::with_capacity(events.len() + 1);
    // Metadata event naming the one (pid=1, tid=1) sim track.
    trace_events.push(json!({
        "name": "process_name",
        "ph": "M",
        "pid": 1,
        "tid": 1,
        "args": { "name": process_name }
    }));
    for ev in events {
        trace_events.push(json!({
            "name": (ev.label),
            "cat": "sim",
            "ph": "X",
            "ts": (ev.start_ps as f64 / 1e6),
            "dur": (ev.dur_ps as f64 / 1e6),
            "pid": 1,
            "tid": 1,
            "args": { "depth": (ev.depth) }
        }));
    }
    json!({
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "sim",
            "schema_version": SPAN_SCHEMA_VERSION
        }
    })
    .to_json()
}

/// Renders aggregate rows as collapsed-stack flamegraph text: one
/// `path self_ps` line per row with nonzero self time, sorted by path
/// for determinism. Feed to `flamegraph.pl` or paste into speedscope.
#[must_use]
pub fn flamegraph_collapsed(rows: &[SpanRow]) -> String {
    let mut lines: Vec<String> = rows
        .iter()
        .filter(|r| r.self_ps > 0)
        .map(|r| format!("{} {}", r.path, r.self_ps))
        .collect();
    lines.sort();
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Tracer;
    use plugvolt_des::time::{SimDuration, SimTime};

    fn traced() -> Tracer {
        let t = Tracer::new();
        t.set_enabled(true);
        t.enable_capture(64);
        t.set_sim_now(SimTime::ZERO);
        {
            let _g = t.span("outer");
            t.set_sim_now(SimTime::ZERO + SimDuration::from_picos(2_000_000));
            t.record_span("leaf", 500_000);
        }
        t
    }

    #[test]
    fn chrome_trace_is_valid_json_with_complete_events() {
        let t = traced();
        let text = chrome_trace_json(&t.capture(), "unit");
        let v: Value = serde_json::from_str(&text).expect("valid JSON");
        let events = v
            .get_field("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array");
        // Metadata event + leaf + outer (completion order).
        assert_eq!(events.len(), 3);
        assert_eq!(
            events[0].get_field("ph").and_then(Value::as_str),
            Some("M"),
            "first event is process metadata"
        );
        let outer = &events[2];
        assert_eq!(
            outer.get_field("name").and_then(Value::as_str),
            Some("outer")
        );
        assert_eq!(outer.get_field("ph").and_then(Value::as_str), Some("X"));
        // 2_000_000 ps = 2 µs.
        assert_eq!(outer.get_field("dur").and_then(Value::as_f64), Some(2.0));
        assert!(!text.contains("wall"), "wall channel excluded: {text}");
    }

    #[test]
    fn flamegraph_lines_sort_and_carry_self_time() {
        let t = traced();
        // outer total = 2_000_000 ps sim delta + 500_000 ps attributed
        // in the subtree; self excludes only the child's total.
        let text = flamegraph_collapsed(&t.rows());
        assert_eq!(text, "outer 2000000\nouter;leaf 500000\n");
    }

    #[test]
    fn empty_capture_still_produces_loadable_trace() {
        let text = chrome_trace_json(&[], "empty");
        let v: Value = serde_json::from_str(&text).expect("valid JSON");
        assert_eq!(
            v.get_field("traceEvents")
                .and_then(Value::as_array)
                .map(<[Value]>::len),
            Some(1)
        );
        assert_eq!(flamegraph_collapsed(&[]), "");
    }
}
