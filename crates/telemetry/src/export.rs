//! The VCD export channel: replays a telemetry event timeline into a
//! GTKWave-compatible waveform via [`plugvolt_des::vcd::VcdRecorder`].
//!
//! Continuous quantities (applied offset, rail target, frequency)
//! become `real` signals; discrete occurrences (detection, restore,
//! fault, crash) become one-picosecond wire pulses so they are visible
//! at any zoom level.

use crate::event::{TelemetryEvent, TimedEvent};
use plugvolt_des::time::SimDuration;
use plugvolt_des::vcd::{SignalKind, Value, VcdRecorder};

/// Renders `events` (oldest first, as stored by the registry) into VCD
/// text under the module scope `telemetry`.
#[must_use]
pub fn events_to_vcd(events: &[TimedEvent]) -> String {
    let mut vcd = VcdRecorder::new("telemetry");
    let oc_applied = vcd.declare("oc_applied_mv", SignalKind::Real);
    let vr_target = vcd.declare("vr_target_mv", SignalKind::Real);
    let pstate = vcd.declare("pstate_mhz", SignalKind::Real);
    let detection = vcd.declare("detection", SignalKind::Wire);
    let restore = vcd.declare("restore", SignalKind::Wire);
    let fault = vcd.declare("fault", SignalKind::Wire);
    let crash = vcd.declare("crash", SignalKind::Wire);
    let oracle_violation = vcd.declare("oracle_violation", SignalKind::Wire);

    let pulse = |vcd: &mut VcdRecorder, at, id| {
        vcd.record(at, id, Value::Bits(1));
        vcd.record(at + SimDuration::PICO, id, Value::Bits(0));
    };

    for e in events {
        match &e.event {
            TelemetryEvent::OcMailbox { applied_mv, .. } => {
                vcd.record(e.at, oc_applied, Value::Real(f64::from(*applied_mv)));
            }
            TelemetryEvent::VrSlew { target_mv, .. } => {
                vcd.record(e.at, vr_target, Value::Real(f64::from(*target_mv)));
            }
            TelemetryEvent::PState { freq_mhz, .. } => {
                vcd.record(e.at, pstate, Value::Real(f64::from(*freq_mhz)));
            }
            TelemetryEvent::Detection { .. } => pulse(&mut vcd, e.at, detection),
            TelemetryEvent::Restore { .. } => pulse(&mut vcd, e.at, restore),
            TelemetryEvent::Fault { .. } => pulse(&mut vcd, e.at, fault),
            TelemetryEvent::Crash { .. } => pulse(&mut vcd, e.at, crash),
            TelemetryEvent::SoakOracle { ok: false, .. } => {
                pulse(&mut vcd, e.at, oracle_violation);
            }
            TelemetryEvent::MsrRead { .. }
            | TelemetryEvent::MsrWrite { .. }
            | TelemetryEvent::SoakCampaign { .. }
            | TelemetryEvent::SoakOracle { ok: true, .. }
            | TelemetryEvent::SlackTableBuilt { .. } => {}
        }
    }
    vcd.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use plugvolt_des::time::SimTime;

    #[test]
    fn vcd_contains_declared_signals_and_pulses() {
        let events = vec![
            TimedEvent {
                at: SimTime::from_picos(1_000),
                event: TelemetryEvent::OcMailbox {
                    core: 0,
                    plane: 0,
                    requested_mv: -250,
                    applied_mv: -250,
                    accepted: true,
                },
            },
            TimedEvent {
                at: SimTime::from_picos(2_000),
                event: TelemetryEvent::Detection {
                    core: 0,
                    freq_mhz: 3_900,
                    offset_mv: -250,
                },
            },
        ];
        let vcd = events_to_vcd(&events);
        assert!(vcd.contains("$scope module telemetry $end"));
        assert!(vcd.contains("oc_applied_mv"));
        assert!(vcd.contains("detection"));
        // The detection pulse produces a rising then falling edge.
        assert!(vcd.contains("#2000"));
        assert!(vcd.contains("#2001"));
    }

    #[test]
    fn msr_events_do_not_pollute_the_waveform() {
        let events = vec![TimedEvent {
            at: SimTime::from_picos(5),
            event: TelemetryEvent::MsrRead { core: 0, msr: 0x10 },
        }];
        let vcd = events_to_vcd(&events);
        assert!(!vcd.contains("#5"));
    }
}
