//! `plugvolt-telemetry` — deterministic, sim-time-stamped observability
//! for the Plug Your Volt reproduction.
//!
//! The paper's headline quantities — the 0.28 % polling overhead
//! (Table 2) and the exposure window that shrinks to zero across the
//! kernel-module → microcode → MSR-clamp deployment levels (Sec. 5) —
//! were previously recomputed ad hoc inside each `repro` experiment,
//! with a per-component string `TraceBuffer` as the only instrument.
//! This crate replaces that with three layers:
//!
//! 1. **Typed events** ([`event::TelemetryEvent`]): MSR traffic,
//!    OC-mailbox commands, VR slews, P-state changes, faults, crashes,
//!    and the countermeasure's detection/restore pair, each stamped
//!    with the DES clock ([`plugvolt_des::time::SimTime`]).
//! 2. **An ordered metric registry** ([`registry::Registry`]):
//!    counters, gauges, fixed-bucket histograms and per-core streaming
//!    summaries keyed by `(component, name, core)` in `BTreeMap`s, so
//!    every export iterates in one deterministic order and
//!    `plugvolt-lint`'s `no-unordered-iteration` guarantee extends to
//!    telemetry artifacts. The shared handle ([`registry::Sink`]) is an
//!    `Rc<RefCell<…>>` clone held by the CPU package, the kernel, and
//!    the countermeasure modules.
//! 3. **Exporters**: ordered JSON with a pinned `schema_version`
//!    ([`profile::TelemetryProfile`]), a human-readable table, and a
//!    VCD waveform channel ([`export::events_to_vcd`]) reusing
//!    `plugvolt_des::vcd`.
//! 4. **A span tracer and self-profiler** ([`span::Tracer`]): a
//!    hierarchical `SpanGuard` API with dual accounting — a
//!    deterministic sim-time channel (golden-eligible, byte-identical
//!    across worker counts) and a separate, explicitly non-golden
//!    wall-clock channel — aggregated into a pinned-schema
//!    [`span::SpanProfile`], exported as Chrome trace-event JSON or
//!    collapsed-stack flamegraph text ([`chrome`]), and streamed as
//!    periodic JSONL snapshot frames ([`stream`]).
//!
//! Recording is free on the simulation clock: no sink method charges
//! stolen time or schedules events, so an instrumented run is
//! cycle-identical to an uninstrumented one (the kernel tests pin this
//! by asserting exact stolen-time totals).

#![warn(missing_docs)]

pub mod chrome;
pub mod event;
pub mod export;
pub mod keys;
pub mod profile;
pub mod registry;
pub mod span;
pub mod stream;

pub use chrome::{chrome_trace_json, flamegraph_collapsed};
pub use event::{TelemetryEvent, TimedEvent};
pub use export::events_to_vcd;
pub use keys::{KeyDecl, KeyKind, KeyScope, SpanDecl, REGISTERED_KEYS, REGISTERED_SPANS};
pub use profile::{TelemetryProfile, SCHEMA_VERSION};
pub use registry::{
    hot_path_enabled, set_hot_path_enabled, HistogramSpec, MetricKey, Registry, Sink,
};
pub use span::{
    set_span_tracing_default, span_tracing_default, SpanEvent, SpanGuard, SpanProfile,
    SpanProfileRow, SpanRow, SpanSnapshot, Tracer, SPAN_SCHEMA_VERSION,
};
pub use stream::{CounterDelta, StreamCursor, StreamFrame, STREAM_SCHEMA_VERSION};
