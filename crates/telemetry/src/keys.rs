//! The telemetry key registry — the single declaration point for every
//! metric key the cpu/kernel/core crates emit.
//!
//! The exported telemetry profile is a pinned artifact
//! (`schema_version = 1`, see [`crate::profile`]): downstream notebooks
//! and the repro comparisons key into it by `(component, name)` string
//! pairs. A typo'd or ad-hoc key silently forks the schema — the
//! emission succeeds, the consumer reads a missing entry, and the
//! Table 2 overhead numbers drift without any test failing. So every
//! key is declared here exactly once, and `plugvolt-lint`'s
//! `telemetry-key-registry` rule cross-checks the two directions
//! textually: a `MetricKey::global`/`MetricKey::per_core` emission in
//! cpu/kernel/core whose pair is missing below is an error, and an
//! entry below that nothing emits is a stale-registry error.
//!
//! Keep entries sorted by `(component, name)`; the unit test pins that
//! plus uniqueness.
//!
//! Span labels (see [`crate::span::Tracer`]) are part of the same
//! statically checked observability surface: every label a
//! cpu/kernel/core `span(…)`/`record_span(…)` site uses must appear in
//! [`REGISTERED_SPANS`], cross-checked by the same lint rule. Labels
//! are `component/what` paths; keep the list sorted.

/// How a registered metric aggregates observations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyKind {
    /// Monotonic count or accumulated total (`incr`/`add`).
    Counter,
    /// Fixed-bucket histogram (`observe` with a [`crate::HistogramSpec`]).
    Histogram,
}

/// Which core dimension(s) a key is emitted with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyScope {
    /// Package-wide only (`MetricKey::global`).
    Global,
    /// Per-core only (`MetricKey::per_core`).
    PerCore,
    /// Emitted both package-wide and per-core.
    Both,
}

/// One registered metric key.
#[derive(Debug, Clone, Copy)]
pub struct KeyDecl {
    /// Emitting component (`"msr"`, `"cpu"`, `"kernel"`, `"poll"`, …).
    pub component: &'static str,
    /// Metric name within the component.
    pub name: &'static str,
    /// Aggregation kind.
    pub kind: KeyKind,
    /// Core dimension(s).
    pub scope: KeyScope,
    /// What the metric measures, for the export table.
    pub doc: &'static str,
}

const fn key(
    component: &'static str,
    name: &'static str,
    kind: KeyKind,
    scope: KeyScope,
    doc: &'static str,
) -> KeyDecl {
    KeyDecl {
        component,
        name,
        kind,
        scope,
        doc,
    }
}

/// Every metric key the cpu/kernel/core crates emit, sorted by
/// `(component, name)`.
pub const REGISTERED_KEYS: &[KeyDecl] = &[
    key(
        "cpu",
        "crashes",
        KeyKind::Counter,
        KeyScope::Global,
        "undervolt-induced crashes: slack fell past the fault band into the crash region",
    ),
    key(
        "cpu",
        "faults",
        KeyKind::Counter,
        KeyScope::PerCore,
        "faulted imul iterations observed per core during characterization",
    ),
    key(
        "kernel",
        "stolen_ps",
        KeyKind::Counter,
        KeyScope::PerCore,
        "simulated time the kernel module steals from each core (Table 2 overhead numerator)",
    ),
    key(
        "kernel",
        "timer_iteration_us",
        KeyKind::Histogram,
        KeyScope::Global,
        "wall time of one countermeasure timer iteration, per firing",
    ),
    key(
        "msr",
        "access_cost_ps",
        KeyKind::Counter,
        KeyScope::PerCore,
        "accumulated simulated cost of MSR accesses, per core (legacy owned-key path)",
    ),
    key(
        "msr",
        "rdmsr",
        KeyKind::Counter,
        KeyScope::PerCore,
        "rdmsr instructions retired per core",
    ),
    key(
        "msr",
        "wrmsr",
        KeyKind::Counter,
        KeyScope::PerCore,
        "wrmsr instructions retired per core",
    ),
    key(
        "msr",
        "wrmsr_ignored",
        KeyKind::Counter,
        KeyScope::Global,
        "wrmsr writes dropped by the Sec. 5 MSR clamp (deployment level 3)",
    ),
    key(
        "poll",
        "detection_latency_us",
        KeyKind::Histogram,
        KeyScope::Both,
        "undervolt onset to countermeasure detection, the exposure-window opening edge",
    ),
    key(
        "poll",
        "restore_landing_us",
        KeyKind::Histogram,
        KeyScope::Global,
        "detection to voltage-restore landing, the exposure-window closing edge",
    ),
    key(
        "slack-table",
        "fallbacks",
        KeyKind::Counter,
        KeyScope::Global,
        "slack lookups that missed the precomputed table and took the analytic path",
    ),
    key(
        "slack-table",
        "hits",
        KeyKind::Counter,
        KeyScope::Global,
        "slack lookups served from the precomputed table",
    ),
];

/// One registered span label.
#[derive(Debug, Clone, Copy)]
pub struct SpanDecl {
    /// The `component/what` label passed to `Tracer::span` /
    /// `Tracer::record_span`.
    pub label: &'static str,
    /// What the span covers, for docs and table footers.
    pub doc: &'static str,
}

const fn span(label: &'static str, doc: &'static str) -> SpanDecl {
    SpanDecl { label, doc }
}

/// Every span label the cpu/kernel/core crates emit, sorted by label.
pub const REGISTERED_SPANS: &[SpanDecl] = &[
    span(
        "characterize/execute",
        "faulted-imul execution window of one grid point (run_imul_loop plus its advance)",
    ),
    span(
        "characterize/offset-write",
        "voltage-plane offset write opening one grid point, including mailbox latency",
    ),
    span(
        "characterize/point",
        "one (frequency, offset) grid point of the characterization sweep, end to end",
    ),
    span(
        "characterize/settle",
        "VR settle window between the offset write and the measured execution",
    ),
    span(
        "kernel/timer",
        "one kernel timer firing dispatched by Machine::advance_to",
    ),
    span(
        "msr/access",
        "explicitly charged MSR access cost (rdmsr/wrmsr, IPI and local), point-recorded",
    ),
    span(
        "poll/iteration",
        "one countermeasure poll iteration across all watched cores",
    ),
    span(
        "poll/overhead",
        "fixed per-iteration timer overhead charged before the MSR sweep, point-recorded",
    ),
    span(
        "queue/schedule",
        "timer-queue push churn (arm_timer), point-recorded with zero sim cost",
    ),
    span(
        "telemetry/flush",
        "end-of-run publish of batched hot counters and drop totals, point-recorded",
    ),
    span(
        "vr/retarget",
        "VR rail slew retarget churn, point-recorded with zero sim cost",
    ),
];

/// Whether `(component, name)` is a declared key.
#[must_use]
pub fn is_registered(component: &str, name: &str) -> bool {
    lookup(component, name).is_some()
}

/// Whether `label` is a declared span label.
#[must_use]
pub fn is_registered_span(label: &str) -> bool {
    lookup_span(label).is_some()
}

/// The declaration for span `label`, if registered.
#[must_use]
pub fn lookup_span(label: &str) -> Option<&'static SpanDecl> {
    REGISTERED_SPANS.iter().find(|s| s.label == label)
}

/// The declaration for `(component, name)`, if registered.
#[must_use]
pub fn lookup(component: &str, name: &str) -> Option<&'static KeyDecl> {
    REGISTERED_KEYS
        .iter()
        .find(|k| k.component == component && k.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_and_unique() {
        let pairs: Vec<(&str, &str)> = REGISTERED_KEYS
            .iter()
            .map(|k| (k.component, k.name))
            .collect();
        let mut sorted = pairs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(pairs, sorted, "registry must be sorted and duplicate-free");
    }

    #[test]
    fn lookup_finds_declared_keys() {
        assert!(is_registered("msr", "wrmsr"));
        assert!(!is_registered("msr", "wrmsr_typo"));
        let decl = lookup("poll", "detection_latency_us").expect("declared");
        assert_eq!(decl.scope, KeyScope::Both);
        assert_eq!(decl.kind, KeyKind::Histogram);
        assert!(REGISTERED_KEYS.iter().all(|k| !k.doc.is_empty()));
    }

    #[test]
    fn spans_sorted_unique_and_documented() {
        let labels: Vec<&str> = REGISTERED_SPANS.iter().map(|s| s.label).collect();
        let mut sorted = labels.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(labels, sorted, "span registry must be sorted and unique");
        assert!(REGISTERED_SPANS.iter().all(|s| !s.doc.is_empty()));
        assert!(
            REGISTERED_SPANS.iter().all(|s| s.label.contains('/')),
            "span labels are component/what paths"
        );
    }

    #[test]
    fn span_lookup_finds_declared_labels() {
        assert!(is_registered_span("kernel/timer"));
        assert!(!is_registered_span("kernel/timer_typo"));
        assert!(lookup_span("msr/access").is_some());
    }
}
