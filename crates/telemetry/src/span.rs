//! Hierarchical span tracer and self-profiler with **dual accounting**.
//!
//! Every span carries two clocks:
//!
//! * **Sim time** (picoseconds of [`plugvolt_des::time::SimTime`]): the
//!   deterministic channel. A span's sim total is the simulated-clock
//!   delta between enter and exit plus any explicitly attributed sim
//!   cost ([`Tracer::record_span`]) inside its subtree. Because every
//!   input is derived from the DES clock, aggregates are byte-identical
//!   across runs *and across worker counts* (sharded sweeps merge in
//!   frequency order via [`Tracer::absorb`]) — this channel is eligible
//!   for golden pinning and feeds the [`SpanProfile`], the Chrome trace
//!   export and the streaming frames.
//! * **Wall time** (host nanoseconds): the profiling channel. It exists
//!   to answer "where does the *host* CPU go" for the bench attribution
//!   table and is explicitly **non-golden**: it never appears in
//!   [`SpanProfile`] serialization, Chrome traces, or stream frames —
//!   only in [`Tracer::rows`] for live table rendering.
//!
//! Recording is cost-free on the simulation clock, like the metric
//! registry: opening a span never charges stolen time, so an
//! instrumented run is cycle-identical to an uninstrumented one (the
//! kernel tests pin exact stolen-time totals with tracing on the
//! default path).
//!
//! Span labels are part of the observability schema: every label passed
//! to [`Tracer::span`]/[`Tracer::record_span`] from the cpu/kernel/core
//! crates must be declared in [`crate::keys::REGISTERED_SPANS`], both
//! directions checked by `plugvolt-lint`'s `telemetry-key-registry`
//! rule.
//!
//! Hot-path discipline mirrors the PR 4 hot counters: a disabled tracer
//! costs one `Cell` load per site (no allocation, no `Instant` read, no
//! `RefCell` borrow), and the enabled-path overhead is measured by the
//! `span-overhead` bench and gated by the CI decay check.

use plugvolt_des::time::SimTime;
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Version of the [`SpanProfile`] JSON layout (and the span rows
/// embedded in stream frames). Bump on any breaking change.
pub const SPAN_SCHEMA_VERSION: u32 = 1;

/// Process-wide default for whether freshly created tracers start
/// enabled. Machines boot private [`crate::Sink`]s internally (e.g. the
/// Table 2 harness), so per-sink toggles cannot reach them; the bench
/// harness flips this global around its tracer-on arm instead, exactly
/// like `set_hot_path_enabled`.
static SPAN_TRACING_DEFAULT: AtomicBool = AtomicBool::new(false);

/// Sets the process-wide default for new tracers (see
/// [`span_tracing_default`]). Existing tracers are unaffected.
pub fn set_span_tracing_default(on: bool) {
    SPAN_TRACING_DEFAULT.store(on, Ordering::SeqCst);
}

/// Whether tracers created from now on start enabled.
#[must_use]
pub fn span_tracing_default() -> bool {
    SPAN_TRACING_DEFAULT.load(Ordering::Relaxed)
}

/// One node of the aggregate span tree: a `(parent, label)` pair with
/// dual-accounted totals.
#[derive(Debug)]
struct SpanNode {
    label: &'static str,
    /// Child node indices, in first-open order.
    children: Vec<usize>,
    /// Completed enters (guards dropped plus point records).
    count: u64,
    /// Sim-clock total: enter→exit delta plus attributed sim cost in
    /// the subtree.
    total_ps: u64,
    /// Sim-clock total minus completed labelled children's totals.
    self_ps: u64,
    /// Host-clock total (non-golden channel; guards only).
    wall_total_ns: u64,
    /// Host-clock self time (non-golden channel; guards only).
    wall_self_ns: u64,
}

impl SpanNode {
    fn new(label: &'static str) -> Self {
        SpanNode {
            label,
            children: Vec::new(),
            count: 0,
            total_ps: 0,
            self_ps: 0,
            wall_total_ns: 0,
            wall_self_ns: 0,
        }
    }
}

/// Bookkeeping for one open [`SpanGuard`] on the stack.
#[derive(Debug)]
struct ActiveSpan {
    node: usize,
    enter_sim_ps: u64,
    /// Sim cost attributed inside this span's subtree so far.
    charged_ps: u64,
    /// Sim totals of completed labelled children (for self time).
    child_total_ps: u64,
    /// Wall totals of completed child guards (for wall self time).
    child_wall_ns: u64,
    wall_enter: Instant,
}

/// One captured span occurrence on the deterministic sim timeline —
/// the raw material of the Chrome trace export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Registered span label.
    pub label: &'static str,
    /// Stack depth at emission (0 = top level), for trace readability.
    pub depth: u32,
    /// Sim time at span enter, picoseconds.
    pub start_ps: u64,
    /// Sim-clock duration (enter→exit delta; point records use their
    /// attributed cost).
    pub dur_ps: u64,
}

#[derive(Debug)]
struct TracerInner {
    enabled: Cell<bool>,
    sim_now_ps: Cell<u64>,
    nodes: RefCell<Vec<SpanNode>>,
    stack: RefCell<Vec<ActiveSpan>>,
    capture: RefCell<Vec<SpanEvent>>,
    /// 0 = capture off.
    capture_capacity: Cell<usize>,
    /// Span records lost to capture-buffer overflow (mirrors
    /// `TraceBuffer::dropped`); surfaced as `spans_dropped` in profiles.
    dropped: Cell<u64>,
}

/// A cheaply cloneable handle to one span tree. Every clone of a
/// [`crate::Sink`] shares one tracer, exactly like the metric registry.
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Rc<TracerInner>,
}

impl Default for Tracer {
    /// A fresh tracer, enabled according to [`span_tracing_default`].
    fn default() -> Self {
        Tracer {
            inner: Rc::new(TracerInner {
                enabled: Cell::new(span_tracing_default()),
                sim_now_ps: Cell::new(0),
                nodes: RefCell::new(vec![SpanNode::new("")]),
                stack: RefCell::new(Vec::new()),
                capture: RefCell::new(Vec::new()),
                capture_capacity: Cell::new(0),
                dropped: Cell::new(0),
            }),
        }
    }
}

impl Tracer {
    /// A fresh, empty tracer (enabled per [`span_tracing_default`]).
    #[must_use]
    pub fn new() -> Self {
        Tracer::default()
    }

    /// Turns recording on or off for this tracer (all sink clones).
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.set(on);
    }

    /// Whether this tracer records spans.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.get()
    }

    /// Advances the tracer's view of the simulated clock. Called by the
    /// machine wherever `now` moves; a plain `Cell` store, cheap enough
    /// for every timer firing.
    pub fn set_sim_now(&self, now: SimTime) {
        self.inner.sim_now_ps.set(now.as_picos());
    }

    /// Opens a hierarchical span. Sim total is the simulated-clock
    /// delta until the guard drops, plus any cost attributed inside;
    /// wall total is the host-clock delta (non-golden channel).
    #[must_use]
    pub fn span(&self, label: &'static str) -> SpanGuard {
        if !self.inner.enabled.get() {
            return SpanGuard { tracer: None };
        }
        let mut stack = self.inner.stack.borrow_mut();
        let parent = stack.last().map_or(0, |a| a.node);
        let node = self.child_node(parent, label);
        stack.push(ActiveSpan {
            node,
            enter_sim_ps: self.inner.sim_now_ps.get(),
            charged_ps: 0,
            child_total_ps: 0,
            child_wall_ns: 0,
            wall_enter: Instant::now(),
        });
        drop(stack);
        SpanGuard {
            tracer: Some(self.clone()),
        }
    }

    /// Point-records one occurrence of `label` under the currently open
    /// span, attributing `sim_ps` of simulated cost to it. This is the
    /// batched hot-path form: no guard, no `Instant` read, and the
    /// attributed cost propagates into every enclosing span's total
    /// (the wall channel is untouched). Used for costs the sim clock
    /// never "passes through" — explicitly charged MSR access flows,
    /// slew retargets, timer-queue churn.
    pub fn record_span(&self, label: &'static str, sim_ps: u64) {
        if !self.inner.enabled.get() {
            return;
        }
        let (depth, parent) = {
            let mut stack = self.inner.stack.borrow_mut();
            let depth = stack.len() as u32;
            let parent = match stack.last_mut() {
                Some(top) => {
                    top.charged_ps += sim_ps;
                    top.child_total_ps += sim_ps;
                    top.node
                }
                None => 0,
            };
            (depth, parent)
        };
        let node = self.child_node(parent, label);
        {
            let mut nodes = self.inner.nodes.borrow_mut();
            let n = &mut nodes[node];
            n.count += 1;
            n.total_ps += sim_ps;
            n.self_ps += sim_ps;
        }
        self.capture_event(label, depth, self.inner.sim_now_ps.get(), sim_ps);
    }

    /// Turns the bounded capture buffer on (`capacity > 0`) or off.
    /// Captured [`SpanEvent`]s feed the Chrome trace export; overflow
    /// increments [`Tracer::dropped`] instead of growing without bound.
    pub fn enable_capture(&self, capacity: usize) {
        self.inner.capture_capacity.set(capacity);
    }

    /// A copy of the captured span events, in completion order.
    #[must_use]
    pub fn capture(&self) -> Vec<SpanEvent> {
        self.inner.capture.borrow().clone()
    }

    /// Span records lost to capture-buffer overflow.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.get()
    }

    /// Flattened aggregate rows in depth-first tree order, both
    /// accounting channels included. The `path` joins labels from the
    /// outermost enclosing span with `';'` (collapsed-stack style).
    #[must_use]
    pub fn rows(&self) -> Vec<SpanRow> {
        let nodes = self.inner.nodes.borrow();
        let mut out = Vec::new();
        let mut pending: Vec<(usize, String)> = nodes[0]
            .children
            .iter()
            .rev()
            .map(|&c| (c, String::new()))
            .collect();
        while let Some((idx, prefix)) = pending.pop() {
            let n = &nodes[idx];
            let path = if prefix.is_empty() {
                n.label.to_string()
            } else {
                format!("{prefix};{}", n.label)
            };
            out.push(SpanRow {
                path: path.clone(),
                label: n.label,
                count: n.count,
                total_ps: n.total_ps,
                self_ps: n.self_ps,
                wall_total_ns: n.wall_total_ns,
                wall_self_ns: n.wall_self_ns,
            });
            for &c in n.children.iter().rev() {
                pending.push((c, path.clone()));
            }
        }
        out
    }

    /// A plain-data, `Send` snapshot of the aggregate tree, for
    /// carrying span totals out of worker-thread shards.
    #[must_use]
    pub fn snapshot(&self) -> SpanSnapshot {
        let nodes = self.inner.nodes.borrow();
        let mut rows = Vec::new();
        let mut pending: Vec<(usize, Vec<&'static str>)> = nodes[0]
            .children
            .iter()
            .rev()
            .map(|&c| (c, Vec::new()))
            .collect();
        while let Some((idx, prefix)) = pending.pop() {
            let n = &nodes[idx];
            let mut path = prefix.clone();
            path.push(n.label);
            rows.push(SnapshotRow {
                path: path.clone(),
                count: n.count,
                total_ps: n.total_ps,
                self_ps: n.self_ps,
                wall_total_ns: n.wall_total_ns,
                wall_self_ns: n.wall_self_ns,
            });
            for &c in n.children.iter().rev() {
                pending.push((c, path.clone()));
            }
        }
        SpanSnapshot {
            rows,
            dropped: self.inner.dropped.get(),
        }
    }

    /// Merges a shard's snapshot into this tracer's aggregate tree.
    /// Callers must absorb shards in a deterministic order (the sharded
    /// sweep merges in frequency order) so first-seen node creation —
    /// and therefore nothing observable, since profiles sort by path —
    /// is reproducible.
    pub fn absorb(&self, snap: &SpanSnapshot) {
        for row in &snap.rows {
            let mut node = 0;
            for label in &row.path {
                node = self.child_node(node, label);
            }
            let mut nodes = self.inner.nodes.borrow_mut();
            let n = &mut nodes[node];
            n.count += row.count;
            n.total_ps += row.total_ps;
            n.self_ps += row.self_ps;
            n.wall_total_ns += row.wall_total_ns;
            n.wall_self_ns += row.wall_self_ns;
        }
        self.inner
            .dropped
            .set(self.inner.dropped.get() + snap.dropped);
    }

    /// Clears aggregates, capture buffer and the drop counter (open
    /// guards keep working against the cleared tree). The bench harness
    /// resets between arms.
    pub fn reset(&self) {
        self.inner.nodes.replace(vec![SpanNode::new("")]);
        self.inner.stack.borrow_mut().clear();
        self.inner.capture.borrow_mut().clear();
        self.inner.dropped.set(0);
    }

    /// Interns the child of `parent` labelled `label`.
    fn child_node(&self, parent: usize, label: &'static str) -> usize {
        let mut nodes = self.inner.nodes.borrow_mut();
        if let Some(&c) = nodes[parent]
            .children
            .iter()
            .find(|&&c| nodes[c].label == label)
        {
            return c;
        }
        let idx = nodes.len();
        nodes.push(SpanNode::new(label));
        nodes[parent].children.push(idx);
        idx
    }

    fn capture_event(&self, label: &'static str, depth: u32, start_ps: u64, dur_ps: u64) {
        let cap = self.inner.capture_capacity.get();
        if cap == 0 {
            return;
        }
        let mut buf = self.inner.capture.borrow_mut();
        if buf.len() >= cap {
            self.inner.dropped.set(self.inner.dropped.get() + 1);
        } else {
            buf.push(SpanEvent {
                label,
                depth,
                start_ps,
                dur_ps,
            });
        }
    }

    /// Closes the guard opened by [`Tracer::span`].
    fn exit(&self) {
        let Some(top) = self.inner.stack.borrow_mut().pop() else {
            return;
        };
        let sim_delta = self.inner.sim_now_ps.get().saturating_sub(top.enter_sim_ps);
        let total_ps = sim_delta + top.charged_ps;
        let self_ps = total_ps.saturating_sub(top.child_total_ps);
        let wall_ns = u64::try_from(top.wall_enter.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let wall_self_ns = wall_ns.saturating_sub(top.child_wall_ns);
        let depth = {
            let mut stack = self.inner.stack.borrow_mut();
            if let Some(parent) = stack.last_mut() {
                parent.charged_ps += top.charged_ps;
                parent.child_total_ps += total_ps;
                parent.child_wall_ns += wall_ns;
            }
            stack.len() as u32
        };
        let label = {
            let mut nodes = self.inner.nodes.borrow_mut();
            let n = &mut nodes[top.node];
            n.count += 1;
            n.total_ps += total_ps;
            n.self_ps += self_ps;
            n.wall_total_ns += wall_ns;
            n.wall_self_ns += wall_self_ns;
            n.label
        };
        self.capture_event(label, depth, top.enter_sim_ps, sim_delta);
    }
}

/// RAII guard for one open span; closes it on drop. Inert (a single
/// `Option` check) when the tracer was disabled at open time.
#[must_use = "a span guard measures until it is dropped"]
#[derive(Debug)]
pub struct SpanGuard {
    tracer: Option<Tracer>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(t) = &self.tracer {
            t.exit();
        }
    }
}

/// One flattened aggregate row, **both** accounting channels (the wall
/// fields never reach serialized artifacts — see [`SpanProfile`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRow {
    /// `';'`-joined label path from the outermost enclosing span.
    pub path: String,
    /// This row's own label (last path segment).
    pub label: &'static str,
    /// Completed occurrences.
    pub count: u64,
    /// Deterministic sim-clock total, picoseconds.
    pub total_ps: u64,
    /// Sim total minus labelled children's totals, picoseconds.
    pub self_ps: u64,
    /// Host-clock total, nanoseconds (non-golden).
    pub wall_total_ns: u64,
    /// Host-clock self time, nanoseconds (non-golden).
    pub wall_self_ns: u64,
}

/// Plain-data row of a [`SpanSnapshot`].
#[derive(Debug, Clone)]
struct SnapshotRow {
    path: Vec<&'static str>,
    count: u64,
    total_ps: u64,
    self_ps: u64,
    wall_total_ns: u64,
    wall_self_ns: u64,
}

/// A `Send` carrier of one tracer's aggregates, produced by
/// [`Tracer::snapshot`] inside a worker shard and merged on the
/// coordinating thread with [`Tracer::absorb`].
#[derive(Debug, Clone)]
pub struct SpanSnapshot {
    rows: Vec<SnapshotRow>,
    dropped: u64,
}

impl SpanSnapshot {
    /// Whether the snapshot carries no spans at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty() && self.dropped == 0
    }
}

/// One serialized span aggregate: sim channel only.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanProfileRow {
    /// `';'`-joined label path (collapsed-stack style); parent→child
    /// edges are recoverable from path prefixes.
    pub path: String,
    /// Last path segment.
    pub label: String,
    /// Completed occurrences.
    pub count: u64,
    /// Deterministic sim-clock total, picoseconds.
    pub total_ps: u64,
    /// Sim total minus labelled children's totals, picoseconds.
    pub self_ps: u64,
}

/// The pinned-schema span aggregate export. Only the deterministic
/// sim-time channel is serialized — the wall-clock channel is excluded
/// by construction, so this artifact is eligible for golden pinning
/// and byte-identical across worker counts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanProfile {
    /// Layout version; see [`SPAN_SCHEMA_VERSION`].
    pub schema_version: u32,
    /// The experiment (or tool) that produced the profile.
    pub experiment: String,
    /// Aggregate rows sorted by `path`.
    pub spans: Vec<SpanProfileRow>,
    /// Span records lost to capture-buffer overflow.
    pub spans_dropped: u64,
}

impl SpanProfile {
    /// Snapshots `tracer` under the experiment name `experiment`,
    /// dropping the wall-clock channel and sorting rows by path.
    #[must_use]
    pub fn from_tracer(tracer: &Tracer, experiment: &str) -> Self {
        let mut spans: Vec<SpanProfileRow> = tracer
            .rows()
            .into_iter()
            .map(|r| SpanProfileRow {
                path: r.path,
                label: r.label.to_string(),
                count: r.count,
                total_ps: r.total_ps,
                self_ps: r.self_ps,
            })
            .collect();
        spans.sort_by(|a, b| a.path.cmp(&b.path));
        SpanProfile {
            schema_version: SPAN_SCHEMA_VERSION,
            experiment: experiment.to_string(),
            spans,
            spans_dropped: tracer.dropped(),
        }
    }

    /// Serializes to pretty, deterministic JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("span profile serialization is infallible")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plugvolt_des::time::SimDuration;

    fn enabled_tracer() -> Tracer {
        let t = Tracer::new();
        t.set_enabled(true);
        t
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new();
        assert!(!t.is_enabled(), "tracers default to the global default");
        {
            let _g = t.span("outer");
            t.record_span("inner", 5);
        }
        assert!(t.rows().is_empty());
    }

    #[test]
    fn sim_deltas_and_charges_aggregate_hierarchically() {
        let t = enabled_tracer();
        t.set_sim_now(SimTime::ZERO);
        {
            let _outer = t.span("outer");
            t.set_sim_now(SimTime::ZERO + SimDuration::from_picos(100));
            {
                let _inner = t.span("inner");
                t.set_sim_now(SimTime::ZERO + SimDuration::from_picos(160));
                t.record_span("leaf", 7);
            }
            t.set_sim_now(SimTime::ZERO + SimDuration::from_picos(200));
        }
        let rows = t.rows();
        let get = |path: &str| rows.iter().find(|r| r.path == path).expect("row exists");
        let outer = get("outer");
        // 200 ps of sim delta plus the 7 ps attributed in the subtree.
        assert_eq!(outer.count, 1);
        assert_eq!(outer.total_ps, 207);
        // Self excludes the completed child (60 + 7 = 67).
        assert_eq!(outer.self_ps, 140);
        let inner = get("outer;inner");
        assert_eq!(inner.total_ps, 67);
        assert_eq!(inner.self_ps, 60);
        let leaf = get("outer;inner;leaf");
        assert_eq!(leaf.count, 1);
        assert_eq!(leaf.total_ps, 7);
        assert_eq!(leaf.self_ps, 7);
    }

    #[test]
    fn snapshot_absorb_matches_direct_recording() {
        let shard = enabled_tracer();
        shard.set_sim_now(SimTime::ZERO);
        {
            let _g = shard.span("work");
            shard.set_sim_now(SimTime::ZERO + SimDuration::from_picos(50));
            shard.record_span("sub", 3);
        }
        let parent = enabled_tracer();
        parent.absorb(&shard.snapshot());
        parent.absorb(&shard.snapshot());
        let rows = parent.rows();
        let work = rows.iter().find(|r| r.path == "work").expect("absorbed");
        assert_eq!(work.count, 2);
        assert_eq!(work.total_ps, 106);
        let sub = rows.iter().find(|r| r.path == "work;sub").expect("child");
        assert_eq!(sub.total_ps, 6);
    }

    #[test]
    fn capture_buffer_bounds_and_counts_drops() {
        let t = enabled_tracer();
        t.enable_capture(2);
        for _ in 0..5 {
            t.record_span("hot", 1);
        }
        assert_eq!(t.capture().len(), 2);
        assert_eq!(t.dropped(), 3);
        let profile = SpanProfile::from_tracer(&t, "unit");
        assert_eq!(profile.spans_dropped, 3);
        // The aggregate channel keeps counting past the capture bound.
        assert_eq!(profile.spans[0].count, 5);
    }

    #[test]
    fn profile_serialization_excludes_the_wall_channel() {
        let t = enabled_tracer();
        {
            let _g = t.span("outer");
            t.record_span("leaf", 9);
        }
        let rows = t.rows();
        assert!(rows.iter().any(|r| r.wall_total_ns > 0 || r.count > 0));
        let json = SpanProfile::from_tracer(&t, "unit").to_json();
        assert!(
            !json.contains("wall"),
            "wall-clock channel must never be serialized: {json}"
        );
    }

    #[test]
    fn profile_rows_sort_by_path_and_round_trip() {
        let t = enabled_tracer();
        t.record_span("zeta", 1);
        t.record_span("alpha", 2);
        let p = SpanProfile::from_tracer(&t, "unit");
        assert_eq!(p.spans[0].path, "alpha");
        assert_eq!(p.spans[1].path, "zeta");
        let back: SpanProfile = serde_json::from_str(&p.to_json()).expect("parses back");
        assert_eq!(back, p);
    }

    #[test]
    fn reset_clears_aggregates_and_drops() {
        let t = enabled_tracer();
        t.enable_capture(1);
        t.record_span("a", 1);
        t.record_span("b", 1);
        assert_eq!(t.dropped(), 1);
        t.reset();
        assert!(t.rows().is_empty());
        assert_eq!(t.dropped(), 0);
        assert!(t.capture().is_empty());
    }
}
