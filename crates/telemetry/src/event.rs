//! Typed, sim-time-stamped telemetry events.
//!
//! Every state change the simulator considers security-relevant — MSR
//! traffic, OC-mailbox commands, voltage-rail slews, P-state moves,
//! faults, crashes, and the countermeasure's detect/restore pair — is
//! captured as one variant of [`TelemetryEvent`] instead of a free-form
//! trace string. Events carry plain integers (raw MSR addresses, plane
//! indices, millivolts) so they serialize identically across runs and
//! can be replayed into a VCD waveform (see [`crate::export`]).

use plugvolt_des::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One structured observability event.
///
/// Variants mirror the hot paths of the simulation: the MSR device
/// (`MsrRead`/`MsrWrite`), the overclocking mailbox (`OcMailbox`), the
/// voltage regulators (`VrSlew`), DVFS (`PState`), the fault engine
/// (`Fault`/`Crash`), and the polling countermeasure
/// (`Detection`/`Restore`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TelemetryEvent {
    /// A model-specific register was read.
    MsrRead {
        /// Logical core issuing the read.
        core: u32,
        /// Raw MSR address (the `ECX` operand of `rdmsr`).
        msr: u32,
    },
    /// A model-specific register was written.
    MsrWrite {
        /// Logical core issuing the write.
        core: u32,
        /// Raw MSR address (the `ECX` operand of `wrmsr`).
        msr: u32,
        /// The 64-bit value written.
        value: u64,
    },
    /// An OC-mailbox voltage-offset command was decoded.
    OcMailbox {
        /// Logical core issuing the command.
        core: u32,
        /// Voltage plane index (0 = core, 2 = cache, …).
        plane: u8,
        /// Offset the writer asked for, in millivolts.
        requested_mv: i32,
        /// Offset actually applied after clamping/intercepts, in mV.
        applied_mv: i32,
        /// Whether the write reached the regulator at all (`false` when
        /// a microcode intercept or the OCM-disable gate swallowed it).
        accepted: bool,
    },
    /// A voltage regulator began slewing toward a new target.
    VrSlew {
        /// Voltage plane index (0 = core, 2 = cache).
        plane: u8,
        /// Target rail voltage, in millivolts.
        target_mv: i32,
        /// Instant the rail settles on the target.
        settles_at: SimTime,
    },
    /// A core changed frequency (P-state transition).
    PState {
        /// Logical core that changed frequency.
        core: u32,
        /// New core frequency in MHz.
        freq_mhz: u32,
    },
    /// The execution engine produced faulty results.
    Fault {
        /// Logical core that faulted.
        core: u32,
        /// Number of faulty computations in the batch.
        faults: u64,
    },
    /// The package crashed (rail below the absolute minimum, or a
    /// lethal fault batch).
    Crash {
        /// Logical core executing when the crash latched.
        core: u32,
    },
    /// The polling countermeasure classified the current V/F state as
    /// unsafe.
    Detection {
        /// Logical core found in an unsafe state.
        core: u32,
        /// Frequency at detection time, in MHz.
        freq_mhz: u32,
        /// Offending voltage offset, in millivolts.
        offset_mv: i32,
    },
    /// The countermeasure issued its restore write.
    Restore {
        /// Logical core being restored.
        core: u32,
        /// Offset written back, in millivolts.
        restore_mv: i32,
    },
    /// A soak-fuzzer campaign began its differential run.
    SoakCampaign {
        /// Campaign index within the soak run.
        campaign: u64,
        /// Attack-family index (order of `AttackFamily::ALL`).
        family: u8,
        /// Schedule events in the campaign.
        events: u32,
    },
    /// A soak oracle finished judging one campaign × deployment cell.
    SoakOracle {
        /// Campaign index within the soak run.
        campaign: u64,
        /// Oracle index (0 = zero-faults, 1 = exposure bound,
        /// 2 = stream equivalence).
        oracle: u8,
        /// Whether the invariant held.
        ok: bool,
    },
    /// A precomputed slack table was attached to the execution engine.
    ///
    /// `build_ns` is host wall-clock time for the one-time grid build —
    /// the only host-dependent field in the event stream; it never feeds
    /// back into simulation results.
    SlackTableBuilt {
        /// Number of `(frequency, voltage)` grid points in the table.
        entries: u64,
        /// Wall-clock nanoseconds the one-time build took.
        build_ns: u64,
    },
}

impl TelemetryEvent {
    /// A short stable tag for the event kind (used by the table
    /// exporter and the VCD channel names).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            TelemetryEvent::MsrRead { .. } => "msr-read",
            TelemetryEvent::MsrWrite { .. } => "msr-write",
            TelemetryEvent::OcMailbox { .. } => "oc-mailbox",
            TelemetryEvent::VrSlew { .. } => "vr-slew",
            TelemetryEvent::PState { .. } => "p-state",
            TelemetryEvent::Fault { .. } => "fault",
            TelemetryEvent::Crash { .. } => "crash",
            TelemetryEvent::Detection { .. } => "detection",
            TelemetryEvent::Restore { .. } => "restore",
            TelemetryEvent::SoakCampaign { .. } => "soak-campaign",
            TelemetryEvent::SoakOracle { .. } => "soak-oracle",
            TelemetryEvent::SlackTableBuilt { .. } => "slack-table-built",
        }
    }
}

impl fmt::Display for TelemetryEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TelemetryEvent::MsrRead { core, msr } => {
                write!(f, "msr-read core{core} msr {msr:#x}")
            }
            TelemetryEvent::MsrWrite { core, msr, value } => {
                write!(f, "msr-write core{core} msr {msr:#x} = {value:#x}")
            }
            TelemetryEvent::OcMailbox {
                core,
                plane,
                requested_mv,
                applied_mv,
                accepted,
            } => write!(
                f,
                "oc-mailbox core{core} plane{plane} req {requested_mv} mV -> applied {applied_mv} mV ({})",
                if *accepted { "accepted" } else { "ignored" }
            ),
            TelemetryEvent::VrSlew {
                plane,
                target_mv,
                settles_at,
            } => write!(f, "vr-slew plane{plane} -> {target_mv} mV settles {settles_at}"),
            TelemetryEvent::PState { core, freq_mhz } => {
                write!(f, "p-state core{core} -> {freq_mhz} MHz")
            }
            TelemetryEvent::Fault { core, faults } => {
                write!(f, "fault core{core} x{faults}")
            }
            TelemetryEvent::Crash { core } => write!(f, "crash core{core}"),
            TelemetryEvent::Detection {
                core,
                freq_mhz,
                offset_mv,
            } => write!(
                f,
                "detection core{core} {offset_mv} mV @ {freq_mhz} MHz"
            ),
            TelemetryEvent::Restore { core, restore_mv } => {
                write!(f, "restore core{core} -> {restore_mv} mV")
            }
            TelemetryEvent::SoakCampaign {
                campaign,
                family,
                events,
            } => write!(
                f,
                "soak-campaign #{campaign} family{family} {events} events"
            ),
            TelemetryEvent::SoakOracle {
                campaign,
                oracle,
                ok,
            } => write!(
                f,
                "soak-oracle #{campaign} oracle{oracle} {}",
                if *ok { "held" } else { "VIOLATED" }
            ),
            TelemetryEvent::SlackTableBuilt { entries, build_ns } => {
                write!(f, "slack-table-built {entries} entries in {build_ns} ns")
            }
        }
    }
}

/// A [`TelemetryEvent`] stamped with the simulation instant it occurred.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimedEvent {
    /// When the event occurred on the simulation clock.
    pub at: SimTime,
    /// The event itself.
    pub event: TelemetryEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_tags_are_stable() {
        let ev = TelemetryEvent::Crash { core: 0 };
        assert_eq!(ev.kind(), "crash");
        let ev = TelemetryEvent::Detection {
            core: 1,
            freq_mhz: 3_900,
            offset_mv: -230,
        };
        assert_eq!(ev.kind(), "detection");
    }

    #[test]
    fn display_is_compact() {
        let ev = TelemetryEvent::OcMailbox {
            core: 0,
            plane: 0,
            requested_mv: -250,
            applied_mv: -130,
            accepted: true,
        };
        assert_eq!(
            ev.to_string(),
            "oc-mailbox core0 plane0 req -250 mV -> applied -130 mV (accepted)"
        );
    }

    #[test]
    fn serde_round_trips_struct_variants() {
        let ev = TimedEvent {
            at: SimTime::from_picos(42_000),
            event: TelemetryEvent::VrSlew {
                plane: 2,
                target_mv: -120,
                settles_at: SimTime::from_picos(99_000),
            },
        };
        let json = serde_json::to_string(&ev).expect("serialize event");
        let back: TimedEvent = serde_json::from_str(&json).expect("deserialize event");
        assert_eq!(back, ev);
    }
}
