//! Streaming telemetry: periodic pinned-schema JSONL snapshot frames
//! for long runs — the future fleet-daemon wire format.
//!
//! A [`StreamCursor`] watches one [`crate::Sink`] and, every
//! `interval_ms` of **simulated** time, produces a [`StreamFrame`]
//! carrying the counter *deltas* since the previous frame plus the
//! current span aggregates. Frames serialize to one compact JSON line
//! each (JSONL), so a consumer can tail the stream incrementally
//! instead of waiting for an end-of-run profile dump.
//!
//! Determinism contract: frames are driven by the sim clock and carry
//! only sim-time quantities (counters and the span sim channel), so a
//! stream file is byte-identical across runs and worker counts for the
//! same experiment. The wall-clock span channel never enters a frame.
//! File IO stays with the caller (`plugvolt-cli`/`repro`); this module
//! only renders frames.

use crate::registry::Sink;
use crate::span::{SpanProfile, SpanProfileRow};
use plugvolt_des::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Version of the [`StreamFrame`] JSONL layout. Bump on any breaking
/// change.
pub const STREAM_SCHEMA_VERSION: u32 = 1;

/// One counter's movement since the previous frame.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterDelta {
    /// Emitting component (`"msr"`, `"kernel"`, …).
    pub component: String,
    /// Metric name within the component.
    pub name: String,
    /// Logical core, or `None` for package-wide counters.
    pub core: Option<u32>,
    /// Increase since the previous frame (counters are monotonic).
    pub delta: u64,
}

/// One periodic telemetry snapshot: registry counter deltas plus span
/// aggregates, stamped with the simulated clock. Serializes to a
/// single JSONL line via [`StreamFrame::to_jsonl`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamFrame {
    /// Layout version; see [`STREAM_SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Frame sequence number, starting at 0.
    pub seq: u64,
    /// Simulated milliseconds at frame emission.
    pub sim_ms: u64,
    /// Counters that moved since the previous frame, in registry
    /// (component, name, core) order.
    pub counters: Vec<CounterDelta>,
    /// Current span aggregates (cumulative, sim channel only), sorted
    /// by path.
    pub spans: Vec<SpanProfileRow>,
    /// Cumulative span records lost to capture-buffer overflow.
    pub spans_dropped: u64,
}

impl StreamFrame {
    /// Renders the frame as one compact JSON line (no trailing
    /// newline — the writer owns line termination).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        serde_json::to_string(self).expect("stream frame serialization is infallible")
    }
}

/// Incremental frame producer over one sink. Call
/// [`StreamCursor::poll`] from the experiment loop with the current
/// sim time; it returns `Some(frame)` whenever at least `interval_ms`
/// of simulated time has elapsed since the previous frame (and on the
/// very first poll, establishing the baseline frame at sequence 0).
#[derive(Debug)]
pub struct StreamCursor {
    interval_ms: u64,
    next_due_ms: Option<u64>,
    seq: u64,
    last_counters: BTreeMap<(String, String, Option<u32>), u64>,
}

impl StreamCursor {
    /// A cursor emitting at most one frame per `interval_ms` of sim
    /// time (clamped to at least 1 ms).
    #[must_use]
    pub fn new(interval_ms: u64) -> Self {
        StreamCursor {
            interval_ms: interval_ms.max(1),
            next_due_ms: None,
            seq: 0,
            last_counters: BTreeMap::new(),
        }
    }

    /// The configured frame interval in simulated milliseconds.
    #[must_use]
    pub fn interval_ms(&self) -> u64 {
        self.interval_ms
    }

    /// Produces the next frame if one is due at `now`; otherwise
    /// `None`. The first poll always emits (frame 0 baselines the
    /// counter deltas).
    pub fn poll(&mut self, sink: &Sink, now: SimTime) -> Option<StreamFrame> {
        let sim_ms = now.as_picos() / 1_000_000_000;
        match self.next_due_ms {
            Some(due) if sim_ms < due => None,
            _ => Some(self.emit(sink, sim_ms)),
        }
    }

    /// Unconditionally emits a frame at `now` — the end-of-run flush,
    /// so the final counter movement is never lost to interval gating.
    pub fn flush(&mut self, sink: &Sink, now: SimTime) -> StreamFrame {
        self.emit(sink, now.as_picos() / 1_000_000_000)
    }

    fn emit(&mut self, sink: &Sink, sim_ms: u64) -> StreamFrame {
        let counters = sink.with(|reg| {
            let mut out = Vec::new();
            for (key, value) in reg.counters() {
                let id = (key.component.to_string(), key.name.to_string(), key.core);
                let prev = self.last_counters.get(&id).copied().unwrap_or(0);
                if value > prev || self.seq == 0 {
                    out.push(CounterDelta {
                        component: id.0.clone(),
                        name: id.1.clone(),
                        core: id.2,
                        delta: value.saturating_sub(prev),
                    });
                }
                self.last_counters.insert(id, value);
            }
            out
        });
        let span_profile = SpanProfile::from_tracer(sink.tracer(), "stream");
        let frame = StreamFrame {
            schema_version: STREAM_SCHEMA_VERSION,
            seq: self.seq,
            sim_ms,
            counters,
            spans: span_profile.spans,
            spans_dropped: span_profile.spans_dropped,
        };
        self.seq += 1;
        self.next_due_ms = Some(sim_ms + self.interval_ms);
        frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricKey;
    use plugvolt_des::time::SimDuration;

    fn at_ms(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(ms * 1_000)
    }

    #[test]
    fn first_poll_emits_baseline_then_gates_on_interval() {
        let sink = Sink::new();
        sink.add(MetricKey::global("unit", "ticks"), 3);
        let mut cur = StreamCursor::new(10);
        let f0 = cur.poll(&sink, at_ms(0)).expect("baseline frame");
        assert_eq!(f0.seq, 0);
        assert_eq!(f0.counters.len(), 1);
        assert_eq!(f0.counters[0].delta, 3);
        assert!(cur.poll(&sink, at_ms(5)).is_none(), "inside interval");
        sink.add(MetricKey::global("unit", "ticks"), 4);
        let f1 = cur.poll(&sink, at_ms(12)).expect("due frame");
        assert_eq!(f1.seq, 1);
        assert_eq!(f1.sim_ms, 12);
        assert_eq!(f1.counters.len(), 1);
        assert_eq!(f1.counters[0].delta, 4);
    }

    #[test]
    fn unchanged_counters_drop_out_of_delta_frames() {
        let sink = Sink::new();
        sink.add(MetricKey::global("unit", "static"), 7);
        sink.add(MetricKey::global("unit", "moving"), 1);
        let mut cur = StreamCursor::new(1);
        let f0 = cur.poll(&sink, at_ms(0)).expect("baseline");
        assert_eq!(f0.counters.len(), 2);
        sink.add(MetricKey::global("unit", "moving"), 2);
        let f1 = cur.poll(&sink, at_ms(5)).expect("delta frame");
        assert_eq!(f1.counters.len(), 1);
        assert_eq!(f1.counters[0].name, "moving");
        assert_eq!(f1.counters[0].delta, 2);
    }

    #[test]
    fn frames_carry_span_aggregates_and_serialize_to_one_line() {
        let sink = Sink::new();
        sink.tracer().set_enabled(true);
        sink.tracer().record_span("unit/work", 42);
        let mut cur = StreamCursor::new(1);
        let frame = cur.flush(&sink, at_ms(1));
        assert_eq!(frame.spans.len(), 1);
        assert_eq!(frame.spans[0].total_ps, 42);
        let line = frame.to_jsonl();
        assert!(!line.contains('\n'), "one JSONL line: {line}");
        assert!(!line.contains("wall"), "wall channel excluded: {line}");
        let back: StreamFrame = serde_json::from_str(&line).expect("round trip");
        assert_eq!(back, frame);
    }
}
