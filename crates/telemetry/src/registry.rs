//! The ordered metric registry and its shared handle.
//!
//! Metrics are keyed by `(component, name, core)` in a [`BTreeMap`] so
//! iteration — and therefore every exported artifact — is
//! deterministic, which keeps `plugvolt-lint`'s
//! `no-unordered-iteration` guarantee intact end to end.

use crate::event::{TelemetryEvent, TimedEvent};
use crate::span::Tracer;
use plugvolt_des::stats::{Histogram, Summary};
use plugvolt_des::time::SimTime;
use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};

/// Default bound on the retained event timeline.
pub const DEFAULT_EVENT_CAPACITY: usize = 8_192;

/// Whether the allocation-free hot-path instrumentation is active.
///
/// When `true` (the default), the simulator's hottest recording sites —
/// the per-access MSR counters and the kernel's cost accounting — batch
/// into plain `Cell`s owned by the CPU package and flush deltas into
/// the registry only at publish time. When `false`, those sites fall
/// back to the original per-access path (an owned-`String` key plus a
/// registry probe on every access), which is what the in-tree bench
/// harness times as its "before" configuration. Published totals are
/// identical either way; only wall-clock cost differs.
static HOT_PATH_ENABLED: AtomicBool = AtomicBool::new(true);

/// Selects between the batched (true) and legacy per-access (false)
/// hot-path instrumentation. See [`hot_path_enabled`].
pub fn set_hot_path_enabled(on: bool) {
    HOT_PATH_ENABLED.store(on, Ordering::SeqCst);
}

/// Whether hot recording sites should batch into local cells (see
/// [`set_hot_path_enabled`]).
#[must_use]
pub fn hot_path_enabled() -> bool {
    HOT_PATH_ENABLED.load(Ordering::Relaxed)
}

/// Identifies one metric: the emitting component, the metric name, and
/// an optional logical core (``None`` for package-wide metrics).
///
/// Ordering is derived, so `BTreeMap<MetricKey, _>` iterates
/// component-major, then name, then core — the order every exporter
/// emits.
///
/// The string fields are `Cow<'static, str>` so the common case — a
/// key built from string literals on a recording path — never
/// allocates; dynamic names (e.g. per-deployment gauges) pay for an
/// owned `String` only at construction.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Emitting component (`"msr"`, `"cpu"`, `"kernel"`, `"poll"`, …).
    pub component: Cow<'static, str>,
    /// Metric name within the component.
    pub name: Cow<'static, str>,
    /// Logical core, or `None` for package-wide metrics.
    pub core: Option<u32>,
}

impl MetricKey {
    /// A package-wide metric key.
    #[must_use]
    pub fn global(
        component: impl Into<Cow<'static, str>>,
        name: impl Into<Cow<'static, str>>,
    ) -> Self {
        MetricKey {
            component: component.into(),
            name: name.into(),
            core: None,
        }
    }

    /// A per-core metric key.
    #[must_use]
    pub fn per_core(
        component: impl Into<Cow<'static, str>>,
        name: impl Into<Cow<'static, str>>,
        core: u32,
    ) -> Self {
        MetricKey {
            component: component.into(),
            name: name.into(),
            core: Some(core),
        }
    }
}

/// Bucket layout for a fixed-bin histogram metric.
///
/// Kept separate from the observation call so every site recording the
/// same metric agrees on the layout (the first observation wins; later
/// specs are ignored). The canonical specs below are part of the
/// telemetry schema — changing them requires a `schema_version` bump.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSpec {
    /// Lower bound of the covered range.
    pub lo: f64,
    /// Upper bound of the covered range.
    pub hi: f64,
    /// Number of equal-width bins.
    pub bins: usize,
}

impl HistogramSpec {
    /// Detection latency (unsafe-state entry → classification), µs.
    pub const DETECTION_LATENCY_US: HistogramSpec = HistogramSpec {
        lo: 0.0,
        hi: 400.0,
        bins: 20,
    };
    /// Restore landing (unsafe-state entry → rail settled safe), µs.
    pub const RESTORE_LANDING_US: HistogramSpec = HistogramSpec {
        lo: 0.0,
        hi: 1_600.0,
        bins: 20,
    };
    /// Exposure window of one deployment level, µs.
    pub const EXPOSURE_WINDOW_US: HistogramSpec = HistogramSpec {
        lo: 0.0,
        hi: 2_000.0,
        bins: 20,
    };
    /// Cost of one polling-module timer iteration, µs.
    pub const POLL_ITERATION_US: HistogramSpec = HistogramSpec {
        lo: 0.0,
        hi: 20.0,
        bins: 20,
    };
}

/// The telemetry store: ordered counters, gauges, histograms and
/// per-core summaries, plus a bounded event timeline.
///
/// All recording methods are cost-free on the simulation clock — the
/// registry never charges stolen time or schedules events, so an
/// instrumented run is cycle-identical to an uninstrumented one.
#[derive(Debug)]
pub struct Registry {
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, f64>,
    histograms: BTreeMap<MetricKey, Histogram>,
    summaries: BTreeMap<MetricKey, Summary>,
    events: VecDeque<TimedEvent>,
    event_capacity: usize,
    events_dropped: u64,
    trace_dropped: u64,
    msr_events: bool,
}

impl Default for Registry {
    /// Same as [`Registry::new`]: the default event capacity, not a
    /// zero-capacity (drop-everything) buffer.
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// Creates an empty registry with the default event capacity.
    #[must_use]
    pub fn new() -> Self {
        Registry::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// Creates an empty registry retaining at most `capacity` events
    /// (older events are dropped and counted, like `TraceBuffer`).
    #[must_use]
    pub fn with_event_capacity(capacity: usize) -> Self {
        Registry {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            summaries: BTreeMap::new(),
            events: VecDeque::new(),
            event_capacity: capacity,
            events_dropped: 0,
            trace_dropped: 0,
            msr_events: false,
        }
    }

    /// Increments a counter by one.
    pub fn incr(&mut self, key: MetricKey) {
        self.add(key, 1);
    }

    /// Adds `delta` to a counter.
    pub fn add(&mut self, key: MetricKey, delta: u64) {
        *self.counters.entry(key).or_insert(0) += delta;
    }

    /// Sets a gauge to `value` (last write wins).
    pub fn set_gauge(&mut self, key: MetricKey, value: f64) {
        self.gauges.insert(key, value);
    }

    /// Records `value` into the histogram at `key`, creating it with
    /// `spec` on first use.
    pub fn observe(&mut self, key: MetricKey, spec: HistogramSpec, value: f64) {
        self.histograms
            .entry(key)
            .or_insert_with(|| Histogram::new(spec.lo, spec.hi, spec.bins))
            .record(value);
    }

    /// Records `value` into the streaming summary at `key`.
    pub fn record_summary(&mut self, key: MetricKey, value: f64) {
        // `Summary::new()`, not `::default()`: the latter zeroes the
        // min/max sentinels instead of using ±infinity.
        self.summaries
            .entry(key)
            .or_insert_with(Summary::new)
            .record(value);
    }

    /// Merges a finished [`Summary`] into the summary at `key` without
    /// re-streaming the raw samples (Welford combine).
    pub fn merge_summary(&mut self, key: MetricKey, other: &Summary) {
        self.summaries
            .entry(key)
            .or_insert_with(Summary::new)
            .merge(other);
    }

    /// Appends an event to the timeline, evicting (and counting) the
    /// oldest one when the buffer is full.
    pub fn emit(&mut self, at: SimTime, event: TelemetryEvent) {
        if self.event_capacity == 0 {
            self.events_dropped += 1;
            return;
        }
        if self.events.len() == self.event_capacity {
            self.events.pop_front();
            self.events_dropped += 1;
        }
        self.events.push_back(TimedEvent { at, event });
    }

    /// Whether per-access `MsrRead`/`MsrWrite` events should be
    /// emitted (counters are always kept; the events are opt-in
    /// because MSR traffic dominates the timeline).
    #[must_use]
    pub fn msr_events_enabled(&self) -> bool {
        self.msr_events
    }

    /// Opts the hot MSR paths into per-access event emission.
    pub fn enable_msr_events(&mut self, on: bool) {
        self.msr_events = on;
    }

    /// Accounts `n` trace records silently dropped by a `TraceBuffer`.
    pub fn add_trace_dropped(&mut self, n: u64) {
        self.trace_dropped += n;
    }

    /// Current value of a counter (0 if never written).
    #[must_use]
    pub fn counter(&self, key: &MetricKey) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if set.
    #[must_use]
    pub fn gauge(&self, key: &MetricKey) -> Option<f64> {
        self.gauges.get(key).copied()
    }

    /// The histogram at `key`, if any observation was recorded.
    #[must_use]
    pub fn histogram(&self, key: &MetricKey) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// The summary at `key`, if any observation was recorded.
    #[must_use]
    pub fn summary(&self, key: &MetricKey) -> Option<&Summary> {
        self.summaries.get(key)
    }

    /// Counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&MetricKey, u64)> {
        self.counters.iter().map(|(k, v)| (k, *v))
    }

    /// Gauges in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&MetricKey, f64)> {
        self.gauges.iter().map(|(k, v)| (k, *v))
    }

    /// Histograms in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&MetricKey, &Histogram)> {
        self.histograms.iter()
    }

    /// Summaries in key order.
    pub fn summaries(&self) -> impl Iterator<Item = (&MetricKey, &Summary)> {
        self.summaries.iter()
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TimedEvent> {
        self.events.iter()
    }

    /// Events evicted from the bounded timeline.
    #[must_use]
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }

    /// Trace records accounted via [`Registry::add_trace_dropped`].
    #[must_use]
    pub fn trace_dropped(&self) -> u64 {
        self.trace_dropped
    }
}

/// A cheaply cloneable, shared handle to one [`Registry`].
///
/// The simulation is single-threaded, so the handle is an
/// `Rc<RefCell<…>>`: the CPU package, the kernel, and the polling
/// module all hold clones of the same sink, and recording needs only
/// `&self` (the CPU's `rdmsr` path is immutable).
#[derive(Debug, Clone, Default)]
pub struct Sink {
    inner: Rc<RefCell<Registry>>,
    /// The span tracer shared by every clone of this sink. A fresh
    /// sink's tracer starts enabled or disabled per
    /// [`crate::span::span_tracing_default`].
    tracer: Tracer,
}

impl Sink {
    /// Creates a sink over a fresh registry.
    #[must_use]
    pub fn new() -> Self {
        Sink::default()
    }

    /// Creates a sink retaining at most `capacity` events.
    #[must_use]
    pub fn with_event_capacity(capacity: usize) -> Self {
        Sink {
            inner: Rc::new(RefCell::new(Registry::with_event_capacity(capacity))),
            tracer: Tracer::default(),
        }
    }

    /// The span tracer shared by every clone of this sink.
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Increments a counter by one.
    pub fn incr(&self, key: MetricKey) {
        self.inner.borrow_mut().incr(key);
    }

    /// Adds `delta` to a counter.
    pub fn add(&self, key: MetricKey, delta: u64) {
        self.inner.borrow_mut().add(key, delta);
    }

    /// Sets a gauge to `value`.
    pub fn set_gauge(&self, key: MetricKey, value: f64) {
        self.inner.borrow_mut().set_gauge(key, value);
    }

    /// Records `value` into the histogram at `key` (see
    /// [`Registry::observe`]).
    pub fn observe(&self, key: MetricKey, spec: HistogramSpec, value: f64) {
        self.inner.borrow_mut().observe(key, spec, value);
    }

    /// Records `value` into the streaming summary at `key`.
    pub fn record_summary(&self, key: MetricKey, value: f64) {
        self.inner.borrow_mut().record_summary(key, value);
    }

    /// Merges a finished summary into the summary at `key`.
    pub fn merge_summary(&self, key: MetricKey, other: &Summary) {
        self.inner.borrow_mut().merge_summary(key, other);
    }

    /// Appends an event to the timeline.
    pub fn emit(&self, at: SimTime, event: TelemetryEvent) {
        self.inner.borrow_mut().emit(at, event);
    }

    /// Whether per-access MSR events are enabled.
    #[must_use]
    pub fn msr_events_enabled(&self) -> bool {
        self.inner.borrow().msr_events_enabled()
    }

    /// Opts the hot MSR paths into per-access event emission.
    pub fn enable_msr_events(&self, on: bool) {
        self.inner.borrow_mut().enable_msr_events(on);
    }

    /// Accounts `n` silently dropped trace records.
    pub fn add_trace_dropped(&self, n: u64) {
        self.inner.borrow_mut().add_trace_dropped(n);
    }

    /// Runs `f` with shared access to the underlying registry.
    ///
    /// Do not call other `Sink` methods from inside `f` — the registry
    /// is borrowed for the duration of the call.
    pub fn with<R>(&self, f: impl FnOnce(&Registry) -> R) -> R {
        f(&self.inner.borrow())
    }

    /// Whether two sinks share the same registry.
    #[must_use]
    pub fn same_registry(&self, other: &Sink) -> bool {
        Rc::ptr_eq(&self.inner, &other.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sink_retains_events() {
        // Regression: a derived `Registry::default()` once produced a
        // zero-capacity buffer that silently dropped every event.
        let sink = Sink::new();
        sink.emit(SimTime::ZERO, TelemetryEvent::Crash { core: 0 });
        sink.with(|r| {
            assert_eq!(r.events().count(), 1);
            assert_eq!(r.events_dropped(), 0);
        });
    }

    #[test]
    fn counters_accumulate_and_iterate_in_order() {
        let mut r = Registry::new();
        r.incr(MetricKey::per_core("msr", "rdmsr", 1));
        r.incr(MetricKey::per_core("msr", "rdmsr", 0));
        r.add(MetricKey::per_core("msr", "rdmsr", 0), 2);
        r.incr(MetricKey::global("cpu", "crashes"));
        let keys: Vec<(String, Option<u32>, u64)> = r
            .counters()
            .map(|(k, v)| (format!("{}/{}", k.component, k.name), k.core, v))
            .collect();
        assert_eq!(
            keys,
            vec![
                ("cpu/crashes".into(), None, 1),
                ("msr/rdmsr".into(), Some(0), 3),
                ("msr/rdmsr".into(), Some(1), 1),
            ]
        );
    }

    #[test]
    fn histogram_created_from_spec_on_first_observe() {
        let mut r = Registry::new();
        let key = MetricKey::global("poll", "detection_latency_us");
        r.observe(key.clone(), HistogramSpec::DETECTION_LATENCY_US, 210.0);
        r.observe(key.clone(), HistogramSpec::DETECTION_LATENCY_US, 9_999.0);
        let h = r.histogram(&key).expect("histogram exists after observe");
        assert_eq!(h.total(), 2);
        assert_eq!(h.bins().len(), 20);
        // The out-of-range observation clamps into the last bin.
        assert_eq!(h.bins()[19], 1);
    }

    #[test]
    fn event_timeline_bounds_and_counts_drops() {
        let mut r = Registry::with_event_capacity(2);
        for core in 0..4 {
            r.emit(
                SimTime::from_picos(u64::from(core)),
                TelemetryEvent::Crash { core },
            );
        }
        assert_eq!(r.events_dropped(), 2);
        let kept: Vec<u64> = r.events().map(|e| e.at.as_picos()).collect();
        assert_eq!(kept, vec![2, 3]);
    }

    #[test]
    fn summaries_merge_without_restreaming() {
        let mut r = Registry::new();
        let mut per_core = Summary::new();
        per_core.record(10.0);
        per_core.record(20.0);
        let key = MetricKey::global("poll", "detection_latency_us");
        r.merge_summary(key.clone(), &per_core);
        r.record_summary(key.clone(), 30.0);
        let s = r.summary(&key).expect("summary exists");
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn sink_is_shared_across_clones() {
        let sink = Sink::new();
        let other = sink.clone();
        other.incr(MetricKey::global("kernel", "steals"));
        sink.incr(MetricKey::global("kernel", "steals"));
        assert!(sink.same_registry(&other));
        assert_eq!(
            sink.with(|r| r.counter(&MetricKey::global("kernel", "steals"))),
            2
        );
    }
}
