//! Pins the telemetry-profile JSON schema. `repro --telemetry` writes
//! this shape to disk and `plugvolt-cli telemetry` parses it back; if
//! the shape must change, bump [`plugvolt_telemetry::SCHEMA_VERSION`]
//! and update this snapshot deliberately.

use plugvolt_des::time::SimTime;
use plugvolt_telemetry::{
    HistogramSpec, MetricKey, Sink, TelemetryEvent, TelemetryProfile, SCHEMA_VERSION,
};

fn sample_sink() -> Sink {
    let sink = Sink::new();
    sink.incr(MetricKey::per_core("msr", "rdmsr", 0));
    sink.incr(MetricKey::per_core("msr", "rdmsr", 0));
    sink.incr(MetricKey::per_core("msr", "wrmsr", 1));
    sink.set_gauge(MetricKey::global("deploy/microcode", "exposure_ns"), 0.0);
    sink.observe(
        MetricKey::global("poll", "detection_latency_us"),
        HistogramSpec {
            lo: 0.0,
            hi: 10.0,
            bins: 2,
        },
        3.0,
    );
    sink.record_summary(MetricKey::per_core("poll", "detection_latency_us", 0), 3.0);
    sink.emit(
        SimTime::from_picos(1_000),
        TelemetryEvent::Detection {
            core: 0,
            freq_mhz: 4_900,
            offset_mv: -250,
        },
    );
    sink
}

#[test]
fn profile_json_matches_snapshot() {
    let profile = sample_sink().profile("snapshot");
    let expected = r#"{
  "schema_version": 2,
  "experiment": "snapshot",
  "counters": [
    {
      "component": "msr",
      "name": "rdmsr",
      "core": 0,
      "value": 2
    },
    {
      "component": "msr",
      "name": "wrmsr",
      "core": 1,
      "value": 1
    }
  ],
  "gauges": [
    {
      "component": "deploy/microcode",
      "name": "exposure_ns",
      "core": null,
      "value": 0.0
    }
  ],
  "histograms": [
    {
      "component": "poll",
      "name": "detection_latency_us",
      "core": null,
      "lo": 0.0,
      "hi": 10.0,
      "bins": [
        1,
        0
      ]
    }
  ],
  "summaries": [
    {
      "component": "poll",
      "name": "detection_latency_us",
      "core": null,
      "count": 1,
      "mean": 3.0,
      "std_dev": 0.0,
      "min": 3.0,
      "max": 3.0
    },
    {
      "component": "poll",
      "name": "detection_latency_us",
      "core": 0,
      "count": 1,
      "mean": 3.0,
      "std_dev": 0.0,
      "min": 3.0,
      "max": 3.0
    }
  ],
  "events": [
    {
      "at": 1000,
      "event": {
        "Detection": {
          "core": 0,
          "freq_mhz": 4900,
          "offset_mv": -250
        }
      }
    }
  ],
  "events_dropped": 0,
  "trace_dropped": 0,
  "spans_dropped": 0
}"#;
    assert_eq!(profile.to_json(), expected);
}

#[test]
fn schema_version_is_the_first_field() {
    // Consumers sniff the version before parsing the rest; keep it at
    // the top of the document.
    let json = sample_sink().profile("snapshot").to_json();
    let first = json
        .lines()
        .nth(1)
        .expect("profile JSON has at least two lines");
    assert_eq!(
        first.trim(),
        format!("\"schema_version\": {SCHEMA_VERSION},")
    );
}

#[test]
fn profile_round_trips_through_serde() {
    let profile = sample_sink().profile("snapshot");
    let parsed: TelemetryProfile =
        serde_json::from_str(&profile.to_json()).expect("profile JSON parses back");
    assert_eq!(parsed.to_json(), profile.to_json());
}
