//! The committed findings baseline: a one-way ratchet.
//!
//! `results/lint-baseline.json` lists the error-severity findings the
//! tree currently accepts (each with a justification for existing).
//! The gate fails on any error finding *not* in the baseline (no new
//! debt) and on any baseline entry that no longer matches a finding
//! (stale entries must be deleted, so the file can only shrink).
//! Entries match findings by `(rule, path, snippet)` — line numbers
//! drift with unrelated edits; the offending source line does not.
//!
//! The reader is a small hand-rolled JSON parser: the analysis crate is
//! dependency-free by design (it gates the crates the serde shim lives
//! in), and the writer below pins the exact shape it reads back.

use crate::findings::{Finding, Severity};

/// Schema version stamped into baseline files.
pub const BASELINE_SCHEMA_VERSION: u32 = 1;

/// One accepted finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct BaselineEntry {
    /// Rule id.
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// Trimmed offending source line.
    pub snippet: String,
    /// Why this finding is accepted (free text, required on write).
    pub justification: String,
}

/// The result of matching findings against a baseline.
#[derive(Debug, Clone)]
pub struct BaselineDiff {
    /// Error findings not covered by the baseline: gate failures.
    pub new: Vec<Finding>,
    /// Baseline entries matching no current finding: stale, must be
    /// deleted (the ratchet only shrinks).
    pub stale: Vec<BaselineEntry>,
}

impl BaselineDiff {
    /// Whether the ratchet gate passes.
    #[must_use]
    pub fn passes(&self) -> bool {
        self.new.is_empty() && self.stale.is_empty()
    }
}

/// Matches `findings` (errors only — warnings are bounded elsewhere)
/// against `entries`, multiset-style: two identical offending lines
/// need two entries.
#[must_use]
pub fn diff(findings: &[Finding], entries: &[BaselineEntry]) -> BaselineDiff {
    let mut remaining: Vec<(&BaselineEntry, bool)> = entries.iter().map(|e| (e, false)).collect();
    let mut new = Vec::new();
    for f in findings {
        if f.severity != Severity::Error {
            continue;
        }
        let snippet = f.snippet.trim();
        let slot = remaining.iter_mut().find(|(e, used)| {
            !used && e.rule == f.rule && e.path == f.path && e.snippet.trim() == snippet
        });
        match slot {
            Some((_, used)) => *used = true,
            None => new.push(f.clone()),
        }
    }
    let stale = remaining
        .into_iter()
        .filter_map(|(e, used)| (!used).then(|| e.clone()))
        .collect();
    BaselineDiff { new, stale }
}

/// Renders a baseline file covering the error findings in `findings`,
/// with a placeholder justification to be edited before committing.
#[must_use]
pub fn write_baseline(findings: &[Finding]) -> String {
    let mut entries: Vec<BaselineEntry> = findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .map(|f| BaselineEntry {
            rule: f.rule.to_string(),
            path: f.path.clone(),
            snippet: f.snippet.trim().to_string(),
            justification: "TODO: justify or fix".to_string(),
        })
        .collect();
    entries.sort();
    render(&entries)
}

/// Renders `entries` in the pinned baseline shape.
#[must_use]
pub fn render(entries: &[BaselineEntry]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"schema_version\": {BASELINE_SCHEMA_VERSION},\n"
    ));
    out.push_str("  \"entries\": [");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"path\": {}, \"snippet\": {}, \"justification\": {}}}",
            crate::report::json_str(&e.rule),
            crate::report::json_str(&e.path),
            crate::report::json_str(&e.snippet),
            crate::report::json_str(&e.justification),
        ));
    }
    if !entries.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Parses a baseline file.
///
/// # Errors
///
/// Returns a description of the first syntax or shape problem.
pub fn parse(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let value = Json::parse(text)?;
    let Json::Object(top) = value else {
        return Err("baseline root must be an object".to_string());
    };
    let entries_val = top
        .iter()
        .find(|(k, _)| k == "entries")
        .map(|(_, v)| v)
        .ok_or("baseline missing \"entries\"")?;
    let Json::Array(items) = entries_val else {
        return Err("\"entries\" must be an array".to_string());
    };
    let mut entries = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let Json::Object(fields) = item else {
            return Err(format!("entry {i} must be an object"));
        };
        let get = |key: &str| -> Result<String, String> {
            match fields.iter().find(|(k, _)| k == key).map(|(_, v)| v) {
                Some(Json::String(s)) => Ok(s.clone()),
                _ => Err(format!("entry {i} missing string field \"{key}\"")),
            }
        };
        entries.push(BaselineEntry {
            rule: get("rule")?,
            path: get("path")?,
            snippet: get("snippet")?,
            justification: get("justification").unwrap_or_default(),
        });
    }
    Ok(entries)
}

/// A minimal JSON value — just enough to read the pinned baseline
/// shape back. Scalars the baseline reader never inspects (numbers,
/// booleans, null) are recognized but not stored.
enum Json {
    Null,
    Bool,
    Number,
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    fn parse(text: &str) -> Result<Json, String> {
        let chars: Vec<char> = text.chars().collect();
        let mut pos = 0;
        let value = parse_value(&chars, &mut pos)?;
        skip_ws(&chars, &mut pos);
        if pos != chars.len() {
            return Err(format!("trailing data at offset {pos}"));
        }
        Ok(value)
    }
}

fn skip_ws(chars: &[char], pos: &mut usize) {
    while chars.get(*pos).is_some_and(|c| c.is_whitespace()) {
        *pos += 1;
    }
}

fn expect(chars: &[char], pos: &mut usize, c: char) -> Result<(), String> {
    skip_ws(chars, pos);
    if chars.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{c}' at offset {pos}", pos = *pos))
    }
}

fn parse_value(chars: &[char], pos: &mut usize) -> Result<Json, String> {
    skip_ws(chars, pos);
    match chars.get(*pos) {
        Some('{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(chars, pos);
            if chars.get(*pos) == Some(&'}') {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            loop {
                skip_ws(chars, pos);
                let Json::String(key) = parse_value(chars, pos)? else {
                    return Err(format!(
                        "object key must be a string at offset {pos}",
                        pos = *pos
                    ));
                };
                expect(chars, pos, ':')?;
                fields.push((key, parse_value(chars, pos)?));
                skip_ws(chars, pos);
                match chars.get(*pos) {
                    Some(',') => *pos += 1,
                    Some('}') => {
                        *pos += 1;
                        return Ok(Json::Object(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}", pos = *pos)),
                }
            }
        }
        Some('[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(chars, pos);
            if chars.get(*pos) == Some(&']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(chars, pos)?);
                skip_ws(chars, pos);
                match chars.get(*pos) {
                    Some(',') => *pos += 1,
                    Some(']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}", pos = *pos)),
                }
            }
        }
        Some('"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match chars.get(*pos) {
                    Some('"') => {
                        *pos += 1;
                        return Ok(Json::String(s));
                    }
                    Some('\\') => {
                        *pos += 1;
                        match chars.get(*pos) {
                            Some('"') => s.push('"'),
                            Some('\\') => s.push('\\'),
                            Some('/') => s.push('/'),
                            Some('n') => s.push('\n'),
                            Some('t') => s.push('\t'),
                            Some('r') => s.push('\r'),
                            Some('b') => s.push('\u{8}'),
                            Some('f') => s.push('\u{c}'),
                            Some('u') => {
                                let hex: String = chars
                                    .get(*pos + 1..*pos + 5)
                                    .ok_or("truncated \\u escape")?
                                    .iter()
                                    .collect();
                                let code = u32::from_str_radix(&hex, 16)
                                    .map_err(|e| format!("bad \\u escape: {e}"))?;
                                s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                *pos += 4;
                            }
                            _ => return Err(format!("bad escape at offset {pos}", pos = *pos)),
                        }
                        *pos += 1;
                    }
                    Some(&c) => {
                        s.push(c);
                        *pos += 1;
                    }
                    None => return Err("unterminated string".to_string()),
                }
            }
        }
        Some(c) if *c == '-' || c.is_ascii_digit() => {
            let start = *pos;
            while chars
                .get(*pos)
                .is_some_and(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
            {
                *pos += 1;
            }
            let text: String = chars[start..*pos].iter().collect();
            text.parse::<f64>()
                .map(|_| Json::Number)
                .map_err(|e| format!("bad number `{text}`: {e}"))
        }
        Some('t') if chars[*pos..].starts_with(&['t', 'r', 'u', 'e']) => {
            *pos += 4;
            Ok(Json::Bool)
        }
        Some('f') if chars[*pos..].starts_with(&['f', 'a', 'l', 's', 'e']) => {
            *pos += 5;
            Ok(Json::Bool)
        }
        Some('n') if chars[*pos..].starts_with(&['n', 'u', 'l', 'l']) => {
            *pos += 4;
            Ok(Json::Null)
        }
        _ => Err(format!("unexpected character at offset {pos}", pos = *pos)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str, snippet: &str) -> Finding {
        Finding {
            rule,
            severity: Severity::Error,
            path: path.to_string(),
            line: 1,
            column: 1,
            message: String::new(),
            snippet: snippet.to_string(),
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let entries = vec![BaselineEntry {
            rule: "hot-path-transcendentals".to_string(),
            path: "crates/des/src/rng.rs".to_string(),
            snippet: "let g = (-2.0 * u.ln()).sqrt();".to_string(),
            justification: "analytic fallback, gated off on hot paths".to_string(),
        }];
        let text = render(&entries);
        assert_eq!(parse(&text).expect("round trip"), entries);
        assert_eq!(parse(&render(&[])).expect("empty"), Vec::new());
    }

    fn entry(rule: &str, path: &str, snippet: &str) -> BaselineEntry {
        BaselineEntry {
            rule: rule.to_string(),
            path: path.to_string(),
            snippet: snippet.to_string(),
            justification: String::new(),
        }
    }

    #[test]
    fn diff_classifies_new_matched_and_stale() {
        let entries = vec![
            entry("r1", "a.rs", "x.ln()"),
            entry("r1", "gone.rs", "y.exp()"),
        ];
        let findings = vec![
            finding("r1", "a.rs", "x.ln()"),
            finding("r2", "b.rs", "fresh()"),
        ];
        let d = diff(&findings, &entries);
        assert_eq!(d.new.len(), 1);
        assert_eq!(d.new[0].rule, "r2");
        assert_eq!(d.stale.len(), 1);
        assert_eq!(d.stale[0].path, "gone.rs");
        assert!(!d.passes());
        assert!(diff(&findings[..1], &entries[..1]).passes());
    }

    #[test]
    fn duplicate_snippets_need_duplicate_entries() {
        let findings = vec![
            finding("r1", "a.rs", "x.ln()"),
            finding("r1", "a.rs", "x.ln()"),
        ];
        let one = parse(&write_baseline(&findings[..1])).expect("valid");
        assert_eq!(diff(&findings, &one).new.len(), 1, "second hit is new");
        let both = parse(&write_baseline(&findings)).expect("valid");
        assert!(diff(&findings, &both).passes());
    }

    #[test]
    fn warnings_do_not_enter_the_ratchet() {
        let mut f = finding("r1", "a.rs", "x");
        f.severity = Severity::Warning;
        let d = diff(&[f.clone()], &[]);
        assert!(d.passes(), "warnings are bounded elsewhere");
        assert!(write_baseline(&[f]).contains("\"entries\": []"));
    }
}
