//! Cross-file rules over the [`Workspace`] model: the call-graph
//! re-grounding of rules 4/8 plus the four workspace-only rules.
//!
//! All of these chase the same hazard class the paper's countermeasure
//! depends on eliminating: silent nondeterminism. A duplicate seed
//! label correlates two "independent" RNG streams; a lock-accumulated
//! merge in a `thread::scope` region makes output depend on worker
//! scheduling; a telemetry key that drifts from the registry breaks the
//! pinned export schema; a transcendental two calls below a hot entry
//! point undoes the slack-table optimization without failing any test.

use crate::findings::Severity;
use crate::index::FnId;
use crate::rules::{is_sim_crate, RuleMeta, SIM_CRATES};
use crate::source::{FileRole, SourceFile};
use crate::workspace::{brace_block_span, call_string_literals, emit_ws, Workspace, WorkspaceRule};
use crate::Finding;
use std::collections::{BTreeMap, BTreeSet};

/// Metadata for the `unused-suppression` pseudo-rule. Its logic lives
/// in the runner (it needs to know which suppression comments matched a
/// filtered finding), but it is listed, suppressed and baselined like
/// any other rule.
pub const UNUSED_SUPPRESSION_META: RuleMeta = RuleMeta {
    id: "unused-suppression",
    severity: Severity::Error,
    summary: "a `// plugvolt-lint: allow(rule)` comment that suppresses nothing \
              (or names an unknown rule) is itself a finding, so suppressions cannot rot",
};

/// The workspace-rule registry, in reporting order. The last two share
/// ids with per-file rules 4/8 — they are the call-graph halves of the
/// same contract.
#[must_use]
pub fn workspace_registry() -> Vec<Box<dyn WorkspaceRule>> {
    vec![
        Box::new(SeedLabelUniqueness),
        Box::new(ParallelMergeDeterminism),
        Box::new(TelemetryKeyRegistry),
        Box::new(MsrDirectAccess),
        Box::new(HotPathReachability),
    ]
}

/// Rule 9 — `seed-label-uniqueness`.
///
/// Every labelled seed derivation (`derive_seed(root, "…")`,
/// `SimRng::from_seed_label(seed, "…")`, `Scenario::{rng,seed_for,
/// machine_for}("…")`, `SimRng::derive("…")`) must use a literal that is
/// unique across the workspace: two call sites sharing a label produce
/// *identical* streams from the same root seed, silently correlating
/// supposedly independent stochastic components — the #1
/// hardest-to-debug determinism hazard in a seeded simulator. Dynamic
/// labels (`format!`-built) are assumed parameter-distinguished and
/// skipped; so is a call whose argument list carries more than one
/// literal (nested derivations).
pub struct SeedLabelUniqueness;

/// Functions whose single string-literal argument is a seed label.
const SEED_LABEL_FNS: [&str; 6] = [
    "derive_seed",
    "from_seed_label",
    "seed_for",
    "machine_for",
    "rng",
    "derive",
];

impl WorkspaceRule for SeedLabelUniqueness {
    fn meta(&self) -> RuleMeta {
        RuleMeta {
            id: "seed-label-uniqueness",
            severity: Severity::Error,
            summary: "every seed-derivation label literal (derive_seed / from_seed_label / \
                      Scenario::rng / …) must be unique workspace-wide; duplicates \
                      silently correlate RNG streams",
        }
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        // label → sites (path, line, column, called fn).
        let mut sites: BTreeMap<String, Vec<(String, usize, usize, &str)>> = BTreeMap::new();
        for file in &ws.files {
            if !matches!(file.role, FileRole::Lib | FileRole::Bin)
                || file.crate_name.starts_with("shims/")
            {
                continue;
            }
            for name in SEED_LABEL_FNS {
                for (line, column) in file.find_ident(name) {
                    if file.is_test_code(line) {
                        continue;
                    }
                    let text = &file.masked[line - 1];
                    if !text[column - 1 + name.len()..].starts_with('(') {
                        continue;
                    }
                    // `fn rng(` / `pub fn derive(` are declarations.
                    if text[..column - 1].trim_end().ends_with("fn") {
                        continue;
                    }
                    let lits = call_string_literals(file, line, column + name.len());
                    if let [label] = lits.as_slice() {
                        sites.entry(label.clone()).or_default().push((
                            file.path.clone(),
                            line,
                            column,
                            name,
                        ));
                    }
                }
            }
        }
        for (label, group) in &sites {
            if group.len() < 2 {
                continue;
            }
            for (path, line, column, name) in group {
                let (other_path, other_line, ..) = group
                    .iter()
                    .find(|(p, l, ..)| !(p == path && l == line))
                    .unwrap_or(&group[0]);
                emit_ws(
                    ws,
                    self.meta(),
                    path,
                    *line,
                    *column,
                    format!(
                        "seed label \"{label}\" passed to `{name}(…)` is also used at \
                         {other_path}:{other_line}; the same root seed + label yields the \
                         same stream, so these \"independent\" components are correlated — \
                         make every label unique workspace-wide"
                    ),
                    out,
                );
            }
        }
    }
}

/// Rule 10 — `parallel-merge-determinism`.
///
/// The sharded sweeps pin a contract (workers-1/2/7 tests): output must
/// be byte-identical regardless of worker count or scheduling. Inside
/// `std::thread::scope` spawn bodies in sim/bench crates, that means no
/// order-dependent accumulation through shared state — results flow
/// into per-task index-addressed slots (`let i = next.fetch_add(…);
/// *slots[i].lock() = Some(r)`) and merge after `join`. Flagged:
/// pushing/`+=`-ing through a `lock()`/`write()` guard, atomic RMW
/// whose result is discarded (accumulation, not slot-claiming), and
/// `&mut` borrows captured from outside the worker closure.
pub struct ParallelMergeDeterminism;

/// Mutating calls that, through a lock guard, make merge order depend
/// on scheduling.
const ACCUMULATING_CALLS: [&str; 6] = [
    ".push(",
    ".extend(",
    ".append(",
    ".insert(",
    ".push_str(",
    "+=",
];

/// Atomic read-modify-write methods.
const ATOMIC_RMW: [&str; 7] = [
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
];

impl WorkspaceRule for ParallelMergeDeterminism {
    fn meta(&self) -> RuleMeta {
        RuleMeta {
            id: "parallel-merge-determinism",
            severity: Severity::Error,
            summary: "inside thread::scope spawn bodies in sim/bench crates: no \
                      lock-guarded accumulation, discarded atomic RMW, or captured \
                      `&mut` — merges must be index-addressed slots",
        }
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for file in &ws.files {
            if !(is_sim_crate(file) || file.crate_name == "bench") {
                continue;
            }
            for (body_lo, body_hi) in spawn_body_spans(file) {
                self.check_spawn_body(ws, file, body_lo, body_hi, out);
            }
        }
    }
}

impl ParallelMergeDeterminism {
    fn check_spawn_body(
        &self,
        ws: &Workspace,
        file: &SourceFile,
        body_lo: usize,
        body_hi: usize,
        out: &mut Vec<Finding>,
    ) {
        for line in body_lo..=body_hi {
            let masked = &file.masked[line - 1];
            // (1) accumulation through a shared lock guard.
            if masked.contains(".lock()") || masked.contains(".write()") {
                if let Some(pat) = ACCUMULATING_CALLS.iter().find(|p| masked.contains(**p)) {
                    let column = masked.find(*pat).map_or(1, |p| p + 1);
                    emit_ws(
                        ws,
                        self.meta(),
                        &file.path,
                        line,
                        column,
                        format!(
                            "`{}` through a lock guard inside a thread::scope worker: \
                             merge order depends on scheduling, so output varies with \
                             worker count — write into an index-addressed slot \
                             (`*slots[i].lock() = Some(result)`) and merge after join",
                            pat.trim_matches(['.', '('])
                        ),
                        out,
                    );
                    continue;
                }
            }
            // (2) atomic RMW whose result is discarded: accumulation,
            // not slot-claiming (`let i = next.fetch_add(…)` is fine).
            for rmw in ATOMIC_RMW {
                let Some(pos) = find_method_call(masked, rmw) else {
                    continue;
                };
                let lead = masked[..pos - 1].trim_start();
                let bare_receiver = lead
                    .strip_suffix('.')
                    .is_some_and(|r| r.chars().all(|c| is_path_char(c)) && !r.is_empty());
                if bare_receiver && masked.trim_end().ends_with(';') {
                    emit_ws(
                        ws,
                        self.meta(),
                        &file.path,
                        line,
                        pos,
                        format!(
                            "`{rmw}` with a discarded result inside a thread::scope \
                             worker accumulates into shared state; claim an index \
                             instead (`let i = next.{rmw}(…)`) and write to `slots[i]` \
                             so the merge is scheduling-independent"
                        ),
                        out,
                    );
                }
            }
            // (3) `&mut` borrow of something not declared in this body:
            // a capture shared with the enclosing scope.
            let mut search = 0;
            while let Some(rel) = masked[search..].find("&mut ") {
                let at = search + rel;
                search = at + "&mut ".len();
                let ident: String = masked[search..]
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if ident.is_empty()
                    || ident == "self"
                    || ident.chars().next().is_some_and(char::is_uppercase)
                {
                    continue; // type position (`&mut SimRng`) or self.
                }
                let declared_in_body = (body_lo..=body_hi).any(|l| {
                    let m = &file.masked[l - 1];
                    m.contains(&format!("let mut {ident}"))
                        || m.contains(&format!("let {ident}"))
                        || m.contains(&format!("for {ident} "))
                });
                if !declared_in_body {
                    emit_ws(
                        ws,
                        self.meta(),
                        &file.path,
                        line,
                        at + 1,
                        format!(
                            "`&mut {ident}` inside a thread::scope worker borrows state \
                             from the enclosing scope; give each worker its own \
                             index-addressed slot so no mutable state is shared \
                             across workers"
                        ),
                        out,
                    );
                }
            }
        }
    }
}

/// All `spawn(…)` closure-body spans inside `thread::scope(...)` regions
/// of `file`, as inclusive 1-based line ranges.
fn spawn_body_spans(file: &SourceFile) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for (line, column) in file.find_ident("scope") {
        if file.is_test_code(line) {
            continue;
        }
        let text = &file.masked[line - 1];
        if !text[..column - 1].ends_with("thread::")
            || !text[column - 1 + "scope".len()..].starts_with('(')
        {
            continue;
        }
        let Some((scope_lo, scope_hi)) = brace_block_span(file, line, column) else {
            continue;
        };
        for (sl, sc) in file.find_ident("spawn") {
            if sl < scope_lo || sl > scope_hi {
                continue;
            }
            if !file.masked[sl - 1][sc - 1 + "spawn".len()..].starts_with('(') {
                continue;
            }
            if let Some(span) = brace_block_span(file, sl, sc) {
                spans.push(span);
            }
        }
    }
    spans.sort_unstable();
    spans.dedup();
    spans
}

fn is_path_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == ':' || c == '.'
}

/// Position (1-based column) of `.{name}(` on a masked line, or `None`.
fn find_method_call(masked: &str, name: &str) -> Option<usize> {
    let mut start = 0;
    while let Some(rel) = masked[start..].find(name) {
        let at = start + rel;
        start = at + name.len();
        let before_dot = at > 0 && masked.as_bytes()[at - 1] == b'.';
        let called = masked[at + name.len()..].starts_with('(');
        let exact_end = !masked[at + name.len()..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_dot && called && exact_end {
            return Some(at + 1);
        }
    }
    None
}

/// Rule 11 — `telemetry-key-registry`.
///
/// The telemetry export is `schema_version = 1`: downstream parsers pin
/// the key set. Every `MetricKey::global`/`per_core` construction with
/// literal component+name in the cpu/kernel/core crates must appear
/// exactly once in the registry (`crates/telemetry/src/keys.rs`), and
/// every registered key must actually be emitted — in both directions,
/// drift is a schema break that no test would otherwise catch. Calls
/// with computed components or names are assumed covered by the literal
/// sites that feed them (e.g. the hot-counter flush loop) and skipped.
///
/// Span labels are held to the same contract: every literal label in a
/// `.span("…")` / `.record_span("…", …)` method call in cpu/kernel/core
/// must appear exactly once in the registry's `REGISTERED_SPANS` table
/// (declared via `span("label", "doc")`), and every registered label
/// must be emitted somewhere. Relay methods that forward a computed
/// label contribute no literal and are skipped, covered by their
/// literal callers.
pub struct TelemetryKeyRegistry;

/// Where registered keys live.
pub const TELEMETRY_REGISTRY_PATH: &str = "crates/telemetry/src/keys.rs";

/// Crates whose metric emissions the registry must cover (poll lives in
/// `core`).
const TELEMETRY_SCOPE_CRATES: [&str; 3] = ["cpu", "kernel", "core"];

impl WorkspaceRule for TelemetryKeyRegistry {
    fn meta(&self) -> RuleMeta {
        RuleMeta {
            id: "telemetry-key-registry",
            severity: Severity::Error,
            summary: "every metric key and span label emitted in cpu/kernel/core appears \
                      exactly once in crates/telemetry/src/keys.rs and vice versa, \
                      protecting the schema_version=1 export",
        }
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        // Emission sites: MetricKey::{global,per_core}("comp", "name", …).
        let mut emitted: Vec<(String, String, String, usize, usize)> = Vec::new();
        for file in &ws.files {
            if !TELEMETRY_SCOPE_CRATES.contains(&file.crate_name.as_str()) {
                continue;
            }
            for (line, column) in file.find_ident("MetricKey") {
                if file.is_test_code(line) {
                    continue;
                }
                let after = &file.masked[line - 1][column - 1 + "MetricKey".len()..];
                let ctor = if after.starts_with("::global(") {
                    "::global"
                } else if after.starts_with("::per_core(") {
                    "::per_core"
                } else {
                    continue;
                };
                let open_col = column + "MetricKey".len() + ctor.len();
                let lits = call_string_literals(file, line, open_col);
                // `String::from("…")` wrappers contribute their literal;
                // fewer than two literals means a computed key, covered
                // by the literal sites that feed it.
                if lits.len() >= 2 {
                    emitted.push((
                        lits[0].clone(),
                        lits[1].clone(),
                        file.path.clone(),
                        line,
                        column,
                    ));
                }
            }
        }

        // Span-label emission sites: `.span("label"…)` /
        // `.record_span("label"…)` method calls. Bare `span` idents
        // (locals, declarations) and relays forwarding a computed label
        // contribute nothing.
        let mut span_emitted: Vec<(String, String, usize, usize)> = Vec::new();
        for file in &ws.files {
            if !TELEMETRY_SCOPE_CRATES.contains(&file.crate_name.as_str()) {
                continue;
            }
            for method in ["span", "record_span"] {
                for (line, column) in file.find_ident(method) {
                    if file.is_test_code(line) {
                        continue;
                    }
                    let text = &file.masked[line - 1];
                    if !text[..column - 1].ends_with('.')
                        || !text[column - 1 + method.len()..].starts_with('(')
                    {
                        continue;
                    }
                    let lits = call_string_literals(file, line, column + method.len());
                    if let Some(label) = lits.first() {
                        span_emitted.push((label.clone(), file.path.clone(), line, column));
                    }
                }
            }
        }

        // Registry entries: key("comp", "name", …) and
        // span("label", "doc") in keys.rs.
        let registry_file = ws.file(TELEMETRY_REGISTRY_PATH);
        let mut registered: Vec<(String, String, usize, usize)> = Vec::new();
        let mut span_registered: Vec<(String, usize, usize)> = Vec::new();
        if let Some(file) = registry_file {
            for (line, column) in file.find_ident("key") {
                if file.is_test_code(line) {
                    continue;
                }
                let text = &file.masked[line - 1];
                let before = &text[..column - 1];
                if before.trim_end().ends_with("fn") || before.ends_with('.') {
                    continue;
                }
                if !text[column - 1 + "key".len()..].starts_with('(') {
                    continue;
                }
                let lits = call_string_literals(file, line, column + "key".len());
                if lits.len() >= 2 {
                    registered.push((lits[0].clone(), lits[1].clone(), line, column));
                }
            }
            for (line, column) in file.find_ident("span") {
                if file.is_test_code(line) {
                    continue;
                }
                let text = &file.masked[line - 1];
                let before = &text[..column - 1];
                if before.trim_end().ends_with("fn") || before.ends_with('.') {
                    continue;
                }
                if !text[column - 1 + "span".len()..].starts_with('(') {
                    continue;
                }
                let lits = call_string_literals(file, line, column + "span".len());
                if let Some(label) = lits.first() {
                    span_registered.push((label.clone(), line, column));
                }
            }
        }

        if registry_file.is_none() {
            if let Some((comp, name, path, line, column)) = emitted.first() {
                emit_ws(
                    ws,
                    self.meta(),
                    path,
                    *line,
                    *column,
                    format!(
                        "metric key `{comp}/{name}` is emitted but no telemetry key \
                         registry exists ({TELEMETRY_REGISTRY_PATH}); declare every \
                         emitted key there so the export schema stays pinned"
                    ),
                    out,
                );
            }
            if let Some((label, path, line, column)) = span_emitted.first() {
                emit_ws(
                    ws,
                    self.meta(),
                    path,
                    *line,
                    *column,
                    format!(
                        "span label `{label}` is emitted but no telemetry key registry \
                         exists ({TELEMETRY_REGISTRY_PATH}); declare every emitted span \
                         label there so the trace schema stays pinned"
                    ),
                    out,
                );
            }
            return;
        }

        let registered_pairs: BTreeSet<(&str, &str)> = registered
            .iter()
            .map(|(c, n, ..)| (c.as_str(), n.as_str()))
            .collect();
        let emitted_pairs: BTreeSet<(&str, &str)> = emitted
            .iter()
            .map(|(c, n, ..)| (c.as_str(), n.as_str()))
            .collect();

        for (comp, name, path, line, column) in &emitted {
            if !registered_pairs.contains(&(comp.as_str(), name.as_str())) {
                emit_ws(
                    ws,
                    self.meta(),
                    path,
                    *line,
                    *column,
                    format!(
                        "metric key `{comp}/{name}` is not declared in the telemetry \
                         registry ({TELEMETRY_REGISTRY_PATH}); register it so \
                         schema_version=1 consumers see a complete key set"
                    ),
                    out,
                );
            }
        }
        let mut seen: BTreeSet<(&str, &str)> = BTreeSet::new();
        for (comp, name, line, column) in &registered {
            if !seen.insert((comp.as_str(), name.as_str())) {
                emit_ws(
                    ws,
                    self.meta(),
                    TELEMETRY_REGISTRY_PATH,
                    *line,
                    *column,
                    format!(
                        "telemetry key `{comp}/{name}` is registered more than once; \
                         the registry must list every key exactly once"
                    ),
                    out,
                );
                continue;
            }
            if !emitted_pairs.contains(&(comp.as_str(), name.as_str())) {
                emit_ws(
                    ws,
                    self.meta(),
                    TELEMETRY_REGISTRY_PATH,
                    *line,
                    *column,
                    format!(
                        "telemetry key `{comp}/{name}` is registered but never emitted \
                         by the cpu/kernel/core crates; remove the stale entry or wire \
                         up the emission"
                    ),
                    out,
                );
            }
        }

        let span_reg_set: BTreeSet<&str> =
            span_registered.iter().map(|(l, ..)| l.as_str()).collect();
        let span_emit_set: BTreeSet<&str> = span_emitted.iter().map(|(l, ..)| l.as_str()).collect();
        for (label, path, line, column) in &span_emitted {
            if !span_reg_set.contains(label.as_str()) {
                emit_ws(
                    ws,
                    self.meta(),
                    path,
                    *line,
                    *column,
                    format!(
                        "span label `{label}` is not declared in the telemetry registry \
                         ({TELEMETRY_REGISTRY_PATH}); register it in REGISTERED_SPANS so \
                         trace consumers see a complete label set"
                    ),
                    out,
                );
            }
        }
        let mut seen_spans: BTreeSet<&str> = BTreeSet::new();
        for (label, line, column) in &span_registered {
            if !seen_spans.insert(label.as_str()) {
                emit_ws(
                    ws,
                    self.meta(),
                    TELEMETRY_REGISTRY_PATH,
                    *line,
                    *column,
                    format!(
                        "span label `{label}` is registered more than once; the registry \
                         must list every label exactly once"
                    ),
                    out,
                );
                continue;
            }
            if !span_emit_set.contains(label.as_str()) {
                emit_ws(
                    ws,
                    self.meta(),
                    TELEMETRY_REGISTRY_PATH,
                    *line,
                    *column,
                    format!(
                        "span label `{label}` is registered but never emitted by the \
                         cpu/kernel/core crates; remove the stale entry or wire up the \
                         instrumentation"
                    ),
                    out,
                );
            }
        }
    }
}

/// Rule 4 (workspace half) — `msr-write-discipline`.
///
/// The per-file half bans raw `0x150`/`0x198` literals; this half uses
/// the symbol index to catch two *call-shaped* bypasses of the HAL
/// trait seam from outside the blessed hal/msr/kernel/cpu layers:
///
/// 1. `.wrmsr(…)` / `.rdmsr(…)` invoked directly on the CPU package
///    (receiver ends in `cpu()`, `cpu_mut()` or `.cpu`) — skips kernel
///    cost accounting and the `offset_limit` clamp choke point, exactly
///    the unsanctioned undervolting path the paper's Sec. 5
///    countermeasure exists to close;
/// 2. direct `MsrFile::`/`CpuPackage::` construction — conjures a sim
///    register file behind the backend's back instead of going through
///    `plugvolt_hal::sim::SimBackend` / `Machine::with_backend`, so the
///    access never crosses the recordable seam.
///
/// Benchmarks and test code may do both (they measure/poke the raw
/// substrate on purpose).
pub struct MsrDirectAccess;

/// Layers allowed to touch the package MSR interface directly: the HAL
/// itself, the register-file and package crates it abstracts, and the
/// kernel that mounts the seam.
const BLESSED_MSR_CRATES: [&str; 4] = ["msr", "kernel", "cpu", "hal"];

impl WorkspaceRule for MsrDirectAccess {
    fn meta(&self) -> RuleMeta {
        RuleMeta {
            id: "msr-write-discipline",
            severity: Severity::Error,
            summary: "direct package .wrmsr()/.rdmsr() calls or MsrFile/CpuPackage \
                      construction outside the blessed hal/msr/kernel/cpu layers \
                      bypass the HAL seam, cost accounting and the offset_limit clamp",
        }
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for file in &ws.files {
            if BLESSED_MSR_CRATES.contains(&file.crate_name.as_str())
                || file.crate_name.starts_with("shims/")
            {
                continue;
            }
            for ident in ["wrmsr", "rdmsr"] {
                for (line, column) in file.find_ident(ident) {
                    if file.is_test_code(line) {
                        continue;
                    }
                    let text = &file.masked[line - 1];
                    if !text[column - 1 + ident.len()..].starts_with('(') {
                        continue;
                    }
                    let before = &text[..column - 1];
                    let Some(recv) = before.strip_suffix('.') else {
                        continue;
                    };
                    let recv = recv.trim_end();
                    let direct = recv.ends_with("cpu()")
                        || recv.ends_with("cpu_mut()")
                        || recv.ends_with(".cpu")
                        || recv == "cpu";
                    if !direct {
                        continue;
                    }
                    let in_fn = ws
                        .index
                        .enclosing_fn(&file.path, line)
                        .map(|id| format!(" in `{}`", ws.index.symbol(id).name))
                        .unwrap_or_default();
                    emit_ws(
                        ws,
                        self.meta(),
                        &file.path,
                        line,
                        column,
                        format!(
                            "direct package MSR access `.{ident}(…)`{in_fn} outside the \
                             blessed hal/msr/kernel/cpu layers bypasses kernel cost \
                             accounting and the offset_limit clamp (the Sec. 5 choke \
                             point); route the access through `Machine::{ident}`"
                        ),
                        out,
                    );
                }
            }
            // Benchmarks measure the raw substrate on purpose.
            if matches!(file.role, FileRole::Bench) {
                continue;
            }
            for ty in ["MsrFile", "CpuPackage"] {
                for (line, column) in file.find_ident(ty) {
                    if file.is_test_code(line) {
                        continue;
                    }
                    let text = &file.masked[line - 1];
                    if !text[column - 1 + ty.len()..].starts_with("::") {
                        continue;
                    }
                    emit_ws(
                        ws,
                        self.meta(),
                        &file.path,
                        line,
                        column,
                        format!(
                            "direct `{ty}::` access outside the blessed \
                             hal/msr/kernel/cpu layers conjures a sim register file \
                             behind the HAL seam; construct the substrate through \
                             `plugvolt_hal::sim::SimBackend` and mount it with \
                             `Machine::with_backend` instead"
                        ),
                        out,
                    );
                }
            }
        }
    }
}

/// Rule 8 (workspace half) — `hot-path-transcendentals`.
///
/// The per-file half scans `run_batch*`/`run_imul*`/`poll*` bodies; this
/// half walks the call graph: any transcendental (`.powf`/`.exp`/`.ln`)
/// in sim-crate code *reachable* from the characterization entry points
/// (`characterize*`, `run_cells*`, `run_batch*`, `run_imul*`, `poll*`,
/// and the event-queue API `schedule_at`/`pop_due`/`peek_time`) is a
/// hot-path cost, even when it hides two calls down. Traversal stops at
/// `crates/cpu/src/slack.rs` — the sanctioned table-build module pays
/// the analytic cost once per process.
pub struct HotPathReachability;

/// Name prefixes that seed the hot-entry set.
const ENTRY_PREFIXES: [&str; 5] = ["characterize", "run_cells", "run_batch", "run_imul", "poll"];

/// Exact entry names: the event-queue API.
const ENTRY_EXACT: [&str; 3] = ["schedule_at", "pop_due", "peek_time"];

/// The sanctioned analytic site; reachable, but not expanded through.
const BOUNDARY_PATH: &str = "crates/cpu/src/slack.rs";

/// Transcendental float methods the slack tables exist to precompute.
const TRANSCENDENTAL_METHODS: [&str; 3] = ["powf", "exp", "ln"];

impl WorkspaceRule for HotPathReachability {
    fn meta(&self) -> RuleMeta {
        RuleMeta {
            id: "hot-path-transcendentals",
            severity: Severity::Error,
            summary: "powf/exp/ln in sim-crate code reachable from characterization \
                      entry points (call-graph traversal, slack.rs boundary); \
                      precompute via the slack table",
        }
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        let entries: Vec<FnId> = ws
            .index
            .fns
            .iter()
            .filter(|s| {
                !s.in_test_code
                    && (ENTRY_PREFIXES.iter().any(|p| s.name.starts_with(p))
                        || ENTRY_EXACT.contains(&s.name.as_str()))
            })
            .map(|s| s.id)
            .collect();
        let boundaries: BTreeSet<FnId> = ws
            .index
            .fns
            .iter()
            .filter(|s| s.path == BOUNDARY_PATH)
            .map(|s| s.id)
            .collect();
        let reachable = ws.graph.reachable_from(&entries, &boundaries);
        for &id in &reachable {
            let sym = ws.index.symbol(id);
            if sym.in_test_code || boundaries.contains(&id) {
                continue;
            }
            let Some(file) = ws.file(&sym.path) else {
                continue;
            };
            if !is_sim_crate(file) {
                continue;
            }
            for site in ws.graph.call_sites(id) {
                if !site.is_method
                    || !TRANSCENDENTAL_METHODS.contains(&site.callee_name.as_str())
                    || file.is_test_code(site.line)
                {
                    continue;
                }
                let witness = ws
                    .graph
                    .witness_path(&entries, &boundaries, id)
                    .map(|p| {
                        p.iter()
                            .map(|f| ws.index.symbol(*f).name.as_str())
                            .collect::<Vec<_>>()
                            .join(" -> ")
                    })
                    .unwrap_or_else(|| sym.name.clone());
                emit_ws(
                    ws,
                    self.meta(),
                    &sym.path,
                    site.line,
                    site.column,
                    format!(
                        "`.{}()` in `{}` is on a characterization hot path (reachable \
                         via {witness}); precompute the value in the slack table \
                         (crates/cpu/src/slack.rs) or hoist it out of the batch loop",
                        site.callee_name, sym.name
                    ),
                    out,
                );
            }
        }
    }
}

/// Crates the parallel-merge rule scopes to, for docs/tests.
#[must_use]
pub fn parallel_rule_crates() -> Vec<&'static str> {
    let mut v = SIM_CRATES.to_vec();
    v.push("bench");
    v
}
