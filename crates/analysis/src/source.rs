//! Source-file model: comment/string masking, `#[cfg(test)]` span
//! tracking, suppression comments, and token scanning helpers.
//!
//! The scanner is deliberately line/token level — no `syn`, no parse
//! tree — so it builds dependency-free and runs on a partially broken
//! tree (the exact situation in which you most want a lint gate to keep
//! working).

/// Where in the workspace a file sits; several rules scope by role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileRole {
    /// Library code under some crate's `src/`.
    Lib,
    /// A binary under `src/bin/`.
    Bin,
    /// Integration tests under `tests/`.
    Test,
    /// Benchmarks under `benches/`.
    Bench,
    /// Examples under `examples/`.
    Example,
}

impl FileRole {
    /// Lowercase name used in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FileRole::Lib => "lib",
            FileRole::Bin => "bin",
            FileRole::Test => "test",
            FileRole::Bench => "bench",
            FileRole::Example => "example",
        }
    }
}

/// One `// plugvolt-lint: allow(…)` comment, with provenance kept so
/// the `unused-suppression` rule can tell which comments earned their
/// keep.
#[derive(Debug, Clone)]
pub struct SuppressionComment {
    /// 1-based line the comment sits on.
    pub line: usize,
    /// Rule ids listed inside `allow(…)`.
    pub rules: Vec<String>,
    /// 1-based lines the comment covers (its own line, plus the next
    /// line when the comment stands alone).
    pub covers: Vec<usize>,
}

/// A loaded, pre-processed Rust source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Crate the file belongs to (directory name under `crates/`, or
    /// `suite` for the workspace-root package).
    pub crate_name: String,
    /// Role inferred from the path.
    pub role: FileRole,
    /// Raw source lines.
    pub lines: Vec<String>,
    /// Source lines with comment and string/char literal *contents*
    /// replaced by spaces; structure (line count, column positions) is
    /// preserved so findings point at real coordinates.
    pub masked: Vec<String>,
    /// `masked[i]` is inside a `#[cfg(test)] mod … { … }` span.
    pub in_test_span: Vec<bool>,
    /// Rules suppressed on each line via `// plugvolt-lint: allow(...)`.
    pub suppressed: Vec<Vec<String>>,
    /// The suppression comments themselves, in source order.
    pub suppression_comments: Vec<SuppressionComment>,
}

impl SourceFile {
    /// Builds the model from a path and its contents.
    #[must_use]
    pub fn new(path: &str, text: &str) -> Self {
        let path = path.replace('\\', "/");
        let lines: Vec<String> = text.lines().map(str::to_owned).collect();
        let (masked, comment_bytes) = mask_lines(text);
        debug_assert_eq!(masked.len(), lines.len());
        let in_test_span = test_spans(&masked);
        let (suppressed, suppression_comments) = suppressions(&lines, &comment_bytes);
        SourceFile {
            crate_name: crate_of(&path),
            role: role_of(&path),
            path,
            lines,
            masked,
            in_test_span,
            suppressed,
            suppression_comments,
        }
    }

    /// Whether `rule` is suppressed on 1-based `line`.
    #[must_use]
    pub fn is_suppressed(&self, rule: &str, line: usize) -> bool {
        self.suppressed
            .get(line - 1)
            .is_some_and(|rules| rules.iter().any(|r| r == rule || r == "all"))
    }

    /// Whether 1-based `line` is inside a `#[cfg(test)]` module or the
    /// file as a whole is test/bench code.
    #[must_use]
    pub fn is_test_code(&self, line: usize) -> bool {
        matches!(self.role, FileRole::Test | FileRole::Bench)
            || self.in_test_span.get(line - 1).copied().unwrap_or(false)
    }

    /// All occurrences of `ident` as an exact identifier in masked text:
    /// `(line, column)`, both 1-based.
    #[must_use]
    pub fn find_ident(&self, ident: &str) -> Vec<(usize, usize)> {
        let mut hits = Vec::new();
        for (i, line) in self.masked.iter().enumerate() {
            let mut start = 0;
            while let Some(pos) = line[start..].find(ident) {
                let at = start + pos;
                let before_ok =
                    at == 0 || !line[..at].chars().next_back().is_some_and(is_ident_char);
                let after = at + ident.len();
                let after_ok = !line[after..].chars().next().is_some_and(is_ident_char);
                if before_ok && after_ok {
                    hits.push((i + 1, at + 1));
                }
                start = at + ident.len();
            }
        }
        hits
    }

    /// The raw source line at 1-based `line`, trimmed, for snippets.
    #[must_use]
    pub fn snippet(&self, line: usize) -> String {
        self.lines
            .get(line - 1)
            .map(|l| l.trim().to_owned())
            .unwrap_or_default()
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// The crate a workspace-relative path belongs to.
fn crate_of(path: &str) -> String {
    let parts: Vec<&str> = path.split('/').collect();
    match parts.as_slice() {
        ["shims", name, ..] => format!("shims/{name}"),
        ["crates", name, ..] => (*name).to_string(),
        _ => "suite".to_string(),
    }
}

fn role_of(path: &str) -> FileRole {
    let has = |seg: &str| path.split('/').any(|p| p == seg);
    if has("benches") {
        FileRole::Bench
    } else if has("tests") {
        FileRole::Test
    } else if has("examples") {
        FileRole::Example
    } else if has("bin") {
        FileRole::Bin
    } else {
        FileRole::Lib
    }
}

/// Masks comments and string/char literal contents with spaces, keeping
/// line breaks and column positions. Handles `//`, nested `/* */`,
/// `"…"` with escapes, raw strings `r"…"`/`r#"…"#`, byte strings, and
/// char literals (without tripping over lifetimes like `'a`).
///
/// Also returns, per raw line, a byte-level flag vector marking which
/// bytes sit inside *comment* text (as opposed to code or string
/// contents) — the suppression parser needs the distinction so an
/// `allow(…)` mention inside a string literal or example is not treated
/// as a live suppression.
fn mask_lines(text: &str) -> (Vec<String>, Vec<Vec<bool>>) {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(usize),
        Str,
        RawStr(usize),
        Char,
    }
    let mut state = State::Code;
    let mut out = Vec::new();
    let mut flags_out: Vec<Vec<bool>> = Vec::new();
    let mut cur = String::new();
    let mut cur_flags: Vec<bool> = Vec::new();
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            out.push(std::mem::take(&mut cur));
            flags_out.push(std::mem::take(&mut cur_flags));
            i += 1;
            continue;
        }
        let consumed_from = i;
        let was_comment = matches!(state, State::LineComment | State::BlockComment(_));
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    cur.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    cur.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    state = State::Str;
                    cur.push('"');
                    i += 1;
                } else if (c == 'r' || c == 'b')
                    && !prev_is_ident(&cur)
                    && raw_str_hashes(&chars[i..]).is_some()
                {
                    let (skip, hashes) = raw_str_hashes(&chars[i..]).expect("checked");
                    state = State::RawStr(hashes);
                    for _ in 0..skip {
                        cur.push(' ');
                    }
                    cur.push('"');
                    i += skip + 1;
                } else if c == 'b' && next == Some('"') && !prev_is_ident(&cur) {
                    state = State::Str;
                    cur.push(' ');
                    cur.push('"');
                    i += 2;
                } else if c == '\'' && is_char_literal(&chars[i..]) {
                    state = State::Char;
                    cur.push('\'');
                    i += 1;
                } else {
                    cur.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                cur.push(' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    cur.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    cur.push_str("  ");
                    i += 2;
                } else {
                    cur.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    if chars.get(i + 1) == Some(&'\n') {
                        // String-continuation escape: keep the line break.
                        cur.push(' ');
                        i += 1;
                    } else {
                        cur.push_str("  ");
                        i += 2;
                    }
                } else if c == '"' {
                    state = State::Code;
                    cur.push('"');
                    i += 1;
                } else {
                    cur.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"'
                    && chars[i + 1..].iter().take(hashes).all(|&h| h == '#')
                    && chars[i + 1..].len() >= hashes
                {
                    state = State::Code;
                    cur.push('"');
                    for _ in 0..hashes {
                        cur.push(' ');
                    }
                    i += 1 + hashes;
                } else {
                    cur.push(' ');
                    i += 1;
                }
            }
            State::Char => {
                if c == '\\' {
                    cur.push_str("  ");
                    i += 2;
                } else if c == '\'' {
                    state = State::Code;
                    cur.push('\'');
                    i += 1;
                } else {
                    cur.push(' ');
                    i += 1;
                }
            }
        }
        // A byte is "comment" if it was consumed while inside a comment
        // or while entering one (the `//` / `/*` opener itself).
        let in_comment =
            was_comment || matches!(state, State::LineComment | State::BlockComment(_));
        for k in consumed_from..i.min(chars.len()) {
            for _ in 0..chars[k].len_utf8() {
                cur_flags.push(in_comment);
            }
        }
    }
    out.push(cur);
    flags_out.push(cur_flags);
    // `str::lines` drops a trailing newline's empty line (and yields
    // nothing at all for empty input); mirror that.
    if text.ends_with('\n') || text.is_empty() {
        out.pop();
        flags_out.pop();
    }
    (out, flags_out)
}

fn prev_is_ident(cur: &str) -> bool {
    cur.chars().next_back().is_some_and(is_ident_char)
}

/// If `chars` starts a raw (byte) string like `r"`, `r#"`, `br##"`,
/// returns `(chars before the quote, hash count)`.
fn raw_str_hashes(chars: &[char]) -> Option<(usize, usize)> {
    let mut i = 0;
    if chars.get(i) == Some(&'b') {
        i += 1;
    }
    if chars.get(i) != Some(&'r') {
        return None;
    }
    i += 1;
    let mut hashes = 0;
    while chars.get(i + hashes) == Some(&'#') {
        hashes += 1;
    }
    (chars.get(i + hashes) == Some(&'"')).then_some((i + hashes, hashes))
}

/// Distinguishes `'x'`, `'\n'`, `'\u{1F600}'` from lifetimes `'a`.
fn is_char_literal(chars: &[char]) -> bool {
    match chars.get(1) {
        Some('\\') => true,
        Some(_) => chars.get(2) == Some(&'\''),
        None => false,
    }
}

/// Marks lines inside `#[cfg(test)] mod … { … }` spans by brace
/// counting over masked text.
fn test_spans(masked: &[String]) -> Vec<bool> {
    let mut flags = vec![false; masked.len()];
    let mut i = 0;
    while i < masked.len() {
        let line = masked[i].trim();
        if !(line.contains("#[cfg(test)]") || line.contains("# [cfg (test)]")) {
            i += 1;
            continue;
        }
        // Find the opening brace of the annotated item.
        let mut depth = 0_i64;
        let mut opened = false;
        let mut j = i;
        while j < masked.len() {
            for c in masked[j].chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            flags[j] = true;
            if opened && depth <= 0 {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    flags
}

/// Parses `// plugvolt-lint: allow(rule-a, rule-b)` comments. A marker
/// suppresses its own line; a marker alone on a line also suppresses the
/// following line.
///
/// Only markers inside real (non-doc) comments count: a mention inside a
/// string literal or a `///`/`//!` doc comment is documentation, not a
/// directive — treating those as live suppressions would make the lint's
/// own docs and tests self-trigger `unused-suppression`.
fn suppressions(
    lines: &[String],
    comment_bytes: &[Vec<bool>],
) -> (Vec<Vec<String>>, Vec<SuppressionComment>) {
    const MARKER: &str = "plugvolt-lint:";
    let mut out: Vec<Vec<String>> = vec![Vec::new(); lines.len()];
    let mut comments = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let Some(pos) = line.find(MARKER) else {
            continue;
        };
        let flags = &comment_bytes[i];
        if !flags.get(pos).copied().unwrap_or(false) {
            continue; // inside a string literal or plain code
        }
        // Walk back over comment bytes to the opener; doc comments are
        // documentation, not directives.
        let mut start = pos;
        while start > 0 && flags.get(start - 1).copied().unwrap_or(false) {
            start -= 1;
        }
        let opener = &line[start..];
        if ["///", "//!", "/**", "/*!"]
            .iter()
            .any(|d| opener.starts_with(d))
        {
            continue;
        }
        let rest = line[pos + MARKER.len()..].trim_start();
        let Some(inner) = rest
            .strip_prefix("allow(")
            .and_then(|r| r.split(')').next())
        else {
            continue;
        };
        let rules: Vec<String> = inner
            .split([',', ' '])
            .filter(|s| !s.is_empty())
            .map(str::to_owned)
            .collect();
        if rules.is_empty() {
            continue;
        }
        out[i].extend(rules.iter().cloned());
        let mut covers = vec![i + 1];
        // Standalone comment line: also cover the next line.
        let standalone = line.trim_start().starts_with("//");
        if standalone && i + 1 < lines.len() {
            out[i + 1].extend(rules.iter().cloned());
            covers.push(i + 2);
        }
        comments.push(SuppressionComment {
            line: i + 1,
            rules,
            covers,
        });
    }
    (out, comments)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings() {
        let f = SourceFile::new(
            "crates/demo/src/lib.rs",
            "let x = \"HashMap inside\"; // HashMap in comment\nlet m = HashMap::new();\n",
        );
        assert!(!f.masked[0].contains("HashMap"));
        assert!(f.masked[1].contains("HashMap"));
        assert_eq!(f.masked[0].len(), f.lines[0].len());
    }

    #[test]
    fn masks_raw_strings_and_chars() {
        let f = SourceFile::new(
            "crates/demo/src/lib.rs",
            "let s = r#\"thread_rng\"#;\nlet c = '\"'; let l: &'static str = \"x\";\nlet t = thread_rng;\n",
        );
        assert!(!f.masked[0].contains("thread_rng"));
        assert!(f.masked[1].contains("static"), "lifetime survives masking");
        assert!(f.masked[2].contains("thread_rng"));
    }

    #[test]
    fn nested_block_comments() {
        let f = SourceFile::new(
            "crates/demo/src/lib.rs",
            "/* outer /* inner */ still comment HashMap */ let a = 1;\n",
        );
        assert!(!f.masked[0].contains("HashMap"));
        assert!(f.masked[0].contains("let a = 1;"));
    }

    #[test]
    fn finds_exact_identifiers_only() {
        let f = SourceFile::new(
            "crates/demo/src/lib.rs",
            "random_prime(rng); random(); operand; rand::thread_rng();\n",
        );
        assert_eq!(f.find_ident("random").len(), 1);
        assert_eq!(f.find_ident("rand").len(), 1);
        assert!(f.find_ident("operand").len() == 1);
    }

    #[test]
    fn test_span_detection() {
        let src = "\
pub fn real() {}
#[cfg(test)]
mod tests {
    fn helper() {}
}
pub fn also_real() {}
";
        let f = SourceFile::new("crates/demo/src/lib.rs", src);
        assert!(!f.is_test_code(1));
        assert!(f.is_test_code(3));
        assert!(f.is_test_code(4));
        assert!(!f.is_test_code(6));
    }

    #[test]
    fn suppression_same_line_and_next_line() {
        let src = "\
let a = bad(); // plugvolt-lint: allow(no-wall-clock)
// plugvolt-lint: allow(no-ambient-rng, msr-write-discipline)
let b = bad();
let c = bad();
";
        let f = SourceFile::new("crates/demo/src/lib.rs", src);
        assert!(f.is_suppressed("no-wall-clock", 1));
        assert!(!f.is_suppressed("no-wall-clock", 2));
        assert!(f.is_suppressed("no-ambient-rng", 3));
        assert!(f.is_suppressed("msr-write-discipline", 3));
        assert!(!f.is_suppressed("no-ambient-rng", 4));
    }

    #[test]
    fn suppression_ignored_in_docs_and_strings() {
        let src = "\
//! Mentions `// plugvolt-lint: allow(no-wall-clock)` in module docs.
/// Suppress with `// plugvolt-lint: allow(no-ambient-rng)`.
fn documented() {}
let s = \"// plugvolt-lint: allow(msr-write-discipline)\";
let t = bad(); // plugvolt-lint: allow(no-unwrap-in-lib)
";
        let f = SourceFile::new("crates/demo/src/lib.rs", src);
        assert!(!f.is_suppressed("no-wall-clock", 1));
        assert!(!f.is_suppressed("no-wall-clock", 2));
        assert!(!f.is_suppressed("no-ambient-rng", 2));
        assert!(!f.is_suppressed("no-ambient-rng", 3));
        assert!(!f.is_suppressed("msr-write-discipline", 4));
        assert!(f.is_suppressed("no-unwrap-in-lib", 5));
        assert_eq!(f.suppression_comments.len(), 1, "only the real comment");
        assert_eq!(f.suppression_comments[0].line, 5);
    }

    #[test]
    fn suppression_in_block_comment_counts() {
        let f = SourceFile::new(
            "crates/demo/src/lib.rs",
            "let a = bad(); /* plugvolt-lint: allow(no-wall-clock) */\n",
        );
        assert!(f.is_suppressed("no-wall-clock", 1));
    }

    #[test]
    fn crate_and_role_classification() {
        let f = SourceFile::new("crates/des/src/rng.rs", "");
        assert_eq!(f.crate_name, "des");
        assert_eq!(f.role, FileRole::Lib);
        let f = SourceFile::new("crates/bench/benches/attacks.rs", "");
        assert_eq!(f.role, FileRole::Bench);
        let f = SourceFile::new("tests/determinism.rs", "");
        assert_eq!(f.crate_name, "suite");
        assert_eq!(f.role, FileRole::Test);
        let f = SourceFile::new("shims/serde/src/lib.rs", "");
        assert_eq!(f.crate_name, "shims/serde");
        let f = SourceFile::new("crates/bench/src/bin/plugvolt-cli.rs", "");
        assert_eq!(f.role, FileRole::Bin);
    }
}
