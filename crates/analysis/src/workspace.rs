//! The workspace model cross-file rules run against: every source file,
//! the symbol index over them, and the call graph.
//!
//! Per-file rules ([`crate::rules::Rule`]) see one file at a time and
//! cannot notice a duplicate seed label two crates away or a
//! transcendental hiding one call below a hot entry point. Workspace
//! rules get the whole picture.

use crate::callgraph::CallGraph;
use crate::findings::Finding;
use crate::index::SymbolIndex;
use crate::rules::RuleMeta;
use crate::source::SourceFile;
use std::collections::BTreeMap;

/// Every loaded file plus the derived whole-workspace structures.
pub struct Workspace {
    /// All scanned files, in deterministic (path) order.
    pub files: Vec<SourceFile>,
    /// Function symbols across all files.
    pub index: SymbolIndex,
    /// Name-resolved call graph over [`Workspace::index`].
    pub graph: CallGraph,
    /// Path → position in [`Workspace::files`].
    by_path: BTreeMap<String, usize>,
}

impl Workspace {
    /// Builds the index and call graph over `files`.
    #[must_use]
    pub fn build(files: Vec<SourceFile>) -> Self {
        let index = SymbolIndex::build(&files);
        let graph = CallGraph::build(&files, &index);
        let by_path = files
            .iter()
            .enumerate()
            .map(|(i, f)| (f.path.clone(), i))
            .collect();
        Workspace {
            files,
            index,
            graph,
            by_path,
        }
    }

    /// The file at `path`, if it was scanned.
    #[must_use]
    pub fn file(&self, path: &str) -> Option<&SourceFile> {
        self.by_path.get(path).map(|&i| &self.files[i])
    }
}

/// A cross-file rule: runs once over the whole [`Workspace`].
pub trait WorkspaceRule: Sync {
    /// The rule's metadata. Two workspace rules deliberately share ids
    /// with per-file rules 4/8 (`msr-write-discipline`,
    /// `hot-path-transcendentals`): they are the call-graph re-grounding
    /// of the same contract, and suppressing the id silences both
    /// halves.
    fn meta(&self) -> RuleMeta;

    /// Appends findings to `out`. As with per-file rules, suppression
    /// is applied centrally by the runner.
    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>);
}

/// Pushes a workspace-rule finding, resolving snippet text through the
/// owning file.
pub(crate) fn emit_ws(
    ws: &Workspace,
    meta: RuleMeta,
    path: &str,
    line: usize,
    column: usize,
    message: String,
    out: &mut Vec<Finding>,
) {
    let snippet = ws.file(path).map(|f| f.snippet(line)).unwrap_or_default();
    out.push(Finding {
        rule: meta.id,
        severity: meta.severity,
        path: path.to_string(),
        line,
        column,
        message,
        snippet,
    });
}

/// Extracts the string literals appearing inside the parenthesized
/// argument list opening at (`line`, `open_col`), both 1-based,
/// `open_col` pointing at the `(`. Walks masked text for structure
/// (parens and quotes inside literals are blanked), reads literal
/// contents back out of the raw lines. Scans at most `MAX_ARG_LINES`
/// lines so a corrupt file cannot wedge the lint.
pub(crate) fn call_string_literals(file: &SourceFile, line: usize, open_col: usize) -> Vec<String> {
    const MAX_ARG_LINES: usize = 24;
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut li = line - 1;
    let mut ci = open_col - 1;
    let mut scanned = 0usize;
    while li < file.masked.len() && scanned <= MAX_ARG_LINES {
        let masked = file.masked[li].as_bytes();
        while ci < masked.len() {
            match masked[ci] {
                b'(' => depth += 1,
                b')' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return out;
                    }
                }
                b'"' => {
                    // Literal contents are blanked in masked text; the
                    // closing quote survives. Single-line literals only
                    // (labels and metric keys never span lines).
                    if let Some(len) = file.masked[li][ci + 1..].find('"') {
                        let raw = &file.lines[li];
                        if let Some(text) = raw.get(ci + 1..ci + 1 + len) {
                            out.push(text.to_string());
                        }
                        ci += len + 1;
                    }
                }
                _ => {}
            }
            ci += 1;
        }
        li += 1;
        ci = 0;
        scanned += 1;
    }
    out
}

/// The span of the brace block whose `{` is the first one at or after
/// (`line`, `col`) (1-based): returns `(open_line, close_line)`,
/// inclusive, by brace counting over masked text. `None` when no block
/// opens within `MAX_SEEK_LINES` or it never closes.
pub(crate) fn brace_block_span(
    file: &SourceFile,
    line: usize,
    col: usize,
) -> Option<(usize, usize)> {
    const MAX_SEEK_LINES: usize = 4;
    let mut li = line - 1;
    let mut ci = col - 1;
    let mut depth = 0usize;
    let mut open_line = None;
    let mut sought = 0usize;
    while li < file.masked.len() {
        let masked = file.masked[li].as_bytes();
        while ci < masked.len() {
            match masked[ci] {
                b'{' => {
                    depth += 1;
                    if open_line.is_none() {
                        open_line = Some(li + 1);
                    }
                }
                b'}' => {
                    if open_line.is_some() {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            return Some((open_line.expect("set above"), li + 1));
                        }
                    }
                }
                _ => {}
            }
            ci += 1;
        }
        if open_line.is_none() {
            sought += 1;
            if sought > MAX_SEEK_LINES {
                return None;
            }
        }
        li += 1;
        ci = 0;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_literals_cross_lines_and_skip_masked_parens() {
        let f = SourceFile::new(
            "crates/a/src/lib.rs",
            "key(\n    \"comp(x)\",\n    String::from(\"name\"),\n    core,\n);\n",
        );
        let col = f.masked[0].find('(').expect("open paren") + 1;
        let lits = call_string_literals(&f, 1, col);
        assert_eq!(lits, ["comp(x)", "name"]);
    }

    #[test]
    fn brace_block_span_matches_nesting() {
        let f = SourceFile::new(
            "crates/a/src/lib.rs",
            "s.spawn(move || {\n    if x {\n        y();\n    }\n});\nafter();\n",
        );
        assert_eq!(brace_block_span(&f, 1, 1), Some((1, 5)));
        assert_eq!(brace_block_span(&f, 6, 1), None, "no block after");
    }

    #[test]
    fn workspace_lookup_by_path() {
        let ws = Workspace::build(vec![
            SourceFile::new("crates/a/src/lib.rs", "pub fn a() {}\n"),
            SourceFile::new("crates/b/src/lib.rs", "pub fn b() {}\n"),
        ]);
        assert!(ws.file("crates/b/src/lib.rs").is_some());
        assert!(ws.file("crates/c/src/lib.rs").is_none());
        assert_eq!(ws.index.fns.len(), 2);
    }
}
