//! SARIF 2.1.0 report rendering — the exchange format CI artifact
//! uploads and code-scanning UIs consume.
//!
//! Hand-rolled like the JSON reporter (the analysis crate is
//! dependency-free by design) and minimal: one run, the full rule
//! registry under `tool.driver.rules`, one result per finding with a
//! physical location. The shape is pinned by a snapshot test; treat any
//! change as a schema break.

use crate::findings::Severity;
use crate::report::json_str;
use crate::rules::RuleMeta;
use crate::runner::ScanResult;

/// The SARIF spec version emitted.
pub const SARIF_VERSION: &str = "2.1.0";

/// Maps a finding severity onto a SARIF result level.
#[must_use]
pub fn sarif_level(severity: Severity) -> &'static str {
    match severity {
        Severity::Error => "error",
        Severity::Warning => "warning",
        Severity::Info => "note",
    }
}

/// Renders `result` as a SARIF 2.1.0 log with `rules` as the driver's
/// rule table.
#[must_use]
pub fn sarif_report(result: &ScanResult, rules: &[RuleMeta]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"version\": {},\n", json_str(SARIF_VERSION)));
    out.push_str(
        "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \"runs\": [\n    {\n",
    );
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"plugvolt-lint\",\n");
    out.push_str("          \"rules\": [");
    for (i, meta) in rules.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}, \
             \"defaultConfiguration\": {{\"level\": {}}}}}",
            json_str(meta.id),
            json_str(meta.summary),
            json_str(sarif_level(meta.severity)),
        ));
    }
    if !rules.is_empty() {
        out.push_str("\n          ");
    }
    out.push_str("]\n        }\n      },\n");
    out.push_str("      \"results\": [");
    for (i, f) in result.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n        {{\"ruleId\": {}, \"level\": {}, \"message\": {{\"text\": {}}}, \
             \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": \
             {{\"uri\": {}}}, \"region\": {{\"startLine\": {}, \"startColumn\": {}}}}}}}]}}",
            json_str(f.rule),
            json_str(sarif_level(f.severity)),
            json_str(&f.message),
            json_str(&f.path),
            f.line,
            f.column,
        ));
    }
    if !result.findings.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{all_rule_metas, scan_str};

    #[test]
    fn level_mapping() {
        assert_eq!(sarif_level(Severity::Error), "error");
        assert_eq!(sarif_level(Severity::Warning), "warning");
        assert_eq!(sarif_level(Severity::Info), "note");
    }

    #[test]
    fn report_contains_rules_and_locations() {
        let result = ScanResult {
            files_scanned: 1,
            findings: scan_str("crates/kernel/src/x.rs", "use std::time::Instant;\n"),
        };
        let sarif = sarif_report(&result, &all_rule_metas());
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("\"id\": \"seed-label-uniqueness\""));
        assert!(sarif.contains("\"ruleId\": \"no-wall-clock\""));
        assert!(sarif.contains("\"startLine\": 1"));
        assert!(sarif.contains("\"uri\": \"crates/kernel/src/x.rs\""));
    }

    #[test]
    fn empty_scan_has_empty_results_array() {
        let result = ScanResult {
            files_scanned: 0,
            findings: Vec::new(),
        };
        let sarif = sarif_report(&result, &[]);
        assert!(sarif.contains("\"results\": []"));
        assert!(sarif.contains("\"rules\": []"));
    }
}
