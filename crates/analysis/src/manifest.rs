//! Workspace-manifest checks: every member must opt into the shared
//! `[workspace.lints]` table.
//!
//! The compiler-level lint wall (`unsafe_code = "forbid"`,
//! `unused_must_use = "deny"`, …) only applies to a crate whose
//! `Cargo.toml` carries `[lints] workspace = true`. A member that
//! forgets the stanza silently drops out of the wall — exactly the kind
//! of drift a grep in `ci.sh` used to catch for *one* crate, with a
//! GNU-only `grep -Pz` flag on top. This module replaces that with a
//! portable check over **every** workspace member, resolved from the
//! root manifest's `members` globs, plus the root package itself.
//!
//! The parsing is deliberately minimal (section headers + `key = value`
//! lines, comments stripped): workspace manifests are machine-written
//! and flat, and the lint must not pull a TOML dependency into the
//! hermetic build.

use std::path::{Path, PathBuf};

/// One workspace member that fails the opt-in check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintsOptInViolation {
    /// Manifest path, relative to the workspace root where possible.
    pub manifest: String,
    /// Why the member fails.
    pub reason: String,
}

impl std::fmt::Display for LintsOptInViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.manifest, self.reason)
    }
}

/// Resolves the workspace member manifests named by the root
/// `Cargo.toml`'s `members` array (glob patterns of the `dir/*` form
/// are expanded against the filesystem) plus the root manifest itself
/// when it also declares a `[package]`.
///
/// # Errors
///
/// An I/O or parse problem reading the root manifest.
pub fn workspace_member_manifests(root: &Path) -> Result<Vec<PathBuf>, String> {
    let root_manifest = root.join("Cargo.toml");
    let text = std::fs::read_to_string(&root_manifest)
        .map_err(|e| format!("{}: {e}", root_manifest.display()))?;
    let members = members_array(&text)
        .ok_or_else(|| format!("{}: no [workspace] members array", root_manifest.display()))?;
    let mut manifests = Vec::new();
    for pattern in members {
        if let Some(dir) = pattern.strip_suffix("/*") {
            let base = root.join(dir);
            let entries =
                std::fs::read_dir(&base).map_err(|e| format!("{}: {e}", base.display()))?;
            let mut found: Vec<PathBuf> = entries
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.join("Cargo.toml").is_file())
                .map(|p| p.join("Cargo.toml"))
                .collect();
            found.sort();
            manifests.extend(found);
        } else {
            manifests.push(root.join(&pattern).join("Cargo.toml"));
        }
    }
    if section(&text, "package").is_some() {
        manifests.push(root_manifest);
    }
    Ok(manifests)
}

/// Checks that every workspace member's manifest contains a `[lints]`
/// table with `workspace = true`. Returns one violation per
/// non-compliant member (empty = the whole workspace is inside the
/// lint wall).
///
/// # Errors
///
/// An I/O or parse problem reading the root manifest or a member
/// manifest.
pub fn check_workspace_lints_opt_in(root: &Path) -> Result<Vec<LintsOptInViolation>, String> {
    let mut violations = Vec::new();
    for manifest in workspace_member_manifests(root)? {
        let display = manifest
            .strip_prefix(root)
            .unwrap_or(&manifest)
            .display()
            .to_string();
        let text = std::fs::read_to_string(&manifest).map_err(|e| format!("{display}: {e}"))?;
        match section(&text, "lints") {
            None => violations.push(LintsOptInViolation {
                manifest: display,
                reason: "missing the `[lints]` table (add `[lints]\\nworkspace = true`)".into(),
            }),
            Some(body) if !has_workspace_true(&body) => violations.push(LintsOptInViolation {
                manifest: display,
                reason: "`[lints]` table present but `workspace = true` is not".into(),
            }),
            Some(_) => {}
        }
    }
    Ok(violations)
}

/// Extracts the `members = [...]` array from the `[workspace]` section.
fn members_array(toml: &str) -> Option<Vec<String>> {
    let body = section(toml, "workspace")?;
    // The array may span lines; concatenate the section and slice
    // between the brackets following `members`.
    let start = body.find("members")?;
    let rest = &body[start..];
    let open = rest.find('[')?;
    let close = rest[open..].find(']')? + open;
    let inner = &rest[open + 1..close];
    Some(
        inner
            .split(',')
            .map(|s| s.trim().trim_matches('"').to_owned())
            .filter(|s| !s.is_empty())
            .collect(),
    )
}

/// Returns the body of `[name]` (up to the next `[section]` header),
/// with comments stripped. Dotted sub-tables like `[name.foo]` do not
/// match.
fn section(toml: &str, name: &str) -> Option<String> {
    let mut body = String::new();
    let mut inside = false;
    let mut found = false;
    for raw in toml.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.starts_with('[') {
            inside = line == format!("[{name}]");
            found |= inside;
            continue;
        }
        if inside && !line.is_empty() {
            body.push_str(line);
            body.push('\n');
        }
    }
    found.then_some(body)
}

/// Whether a `[lints]` section body sets `workspace = true`.
fn has_workspace_true(body: &str) -> bool {
    body.lines().any(|l| {
        let mut parts = l.splitn(2, '=');
        matches!(
            (parts.next().map(str::trim), parts.next().map(str::trim),),
            (Some("workspace"), Some("true"))
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_extraction_ignores_dotted_tables_and_comments() {
        let toml = "\
[workspace] # root\nmembers = [\"a/*\"] # glob\n\n[workspace.lints.rust]\nunsafe_code = \"forbid\"\n\n[lints]\nworkspace = true\n";
        let ws = section(toml, "workspace").expect("workspace section");
        assert!(ws.contains("members"));
        assert!(!ws.contains("unsafe_code"), "dotted table leaked in");
        let lints = section(toml, "lints").expect("lints section");
        assert!(has_workspace_true(&lints));
    }

    #[test]
    fn members_globs_parse() {
        let toml = "[workspace]\nmembers = [\n    \"crates/*\",\n    \"tools/one\",\n]\n";
        assert_eq!(
            members_array(toml).expect("parses"),
            vec!["crates/*".to_owned(), "tools/one".to_owned()]
        );
    }

    #[test]
    fn missing_lints_table_is_flagged() {
        let dir = std::env::temp_dir().join(format!("plugvolt-manifest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("crates/good")).expect("mkdir");
        std::fs::create_dir_all(dir.join("crates/bad")).expect("mkdir");
        std::fs::write(
            dir.join("Cargo.toml"),
            "[workspace]\nmembers = [\"crates/*\"]\n",
        )
        .expect("write root");
        std::fs::write(
            dir.join("crates/good/Cargo.toml"),
            "[package]\nname = \"good\"\n\n[lints]\nworkspace = true\n",
        )
        .expect("write good");
        std::fs::write(
            dir.join("crates/bad/Cargo.toml"),
            "[package]\nname = \"bad\"\n",
        )
        .expect("write bad");
        let violations = check_workspace_lints_opt_in(&dir).expect("checks");
        assert_eq!(violations.len(), 1);
        assert!(violations[0].manifest.contains("bad"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn this_workspace_is_fully_opted_in() {
        // The real gate: every member of *this* repository must be
        // inside the lint wall. Walk up from the crate dir to the root.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root");
        let violations = check_workspace_lints_opt_in(root).expect("checks");
        assert!(
            violations.is_empty(),
            "members missing [lints] workspace = true: {violations:?}"
        );
    }
}
