//! Finding and severity types shared by every rule.

use std::fmt;

/// How bad a finding is.
///
/// Only [`Severity::Error`] gates the build (tier-1 asserts zero of
/// them); warnings surface in reports and CI logs but do not fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: style or context notes.
    Info,
    /// Should be fixed, does not gate the build.
    Warning,
    /// Gates the build: tier-1 requires zero of these.
    Error,
}

impl Severity {
    /// Lowercase name used in reports and CLI flags.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// Parses a CLI severity name.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "info" => Some(Severity::Info),
            "warning" | "warn" => Some(Severity::Warning),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule violation at one source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule identifier, e.g. `no-wall-clock`.
    pub rule: &'static str,
    /// Severity the rule assigns.
    pub severity: Severity,
    /// Workspace-relative path of the file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column of the matched token, when known.
    pub column: usize,
    /// What went wrong and what to do instead.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {} [{}] {}",
            self.path, self.line, self.column, self.severity, self.rule, self.message
        )
    }
}
