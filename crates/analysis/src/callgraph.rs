//! Workspace call graph and the reachability layer the cross-file
//! rules query.
//!
//! Edges are found by scanning each function body (masked text, so
//! strings and comments cannot fake calls) for call-shaped tokens:
//! `name(`, `.name(`, `name::<…>(` and `Type::name(`. A call token is
//! resolved *by name* against the [`SymbolIndex`] — every function with
//! that name, in any crate, gets an edge. This deliberately
//! over-approximates (no trait dispatch or path resolution, macro
//! bodies opaque, function pointers and closures invisible), which is
//! the safe direction for the determinism rules: reachability can only
//! claim too much code is hot, never miss a genuinely hot path that is
//! spelled as a direct call.
//!
//! [`CallGraph::reachable_from`] supports *boundary* functions whose
//! outgoing edges are not expanded — used to stop hot-path traversal at
//! the sanctioned table-build module (`crates/cpu/src/slack.rs`), which
//! is allowed to pay the analytic cost once per process.

use crate::index::{FnId, SymbolIndex};
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The called name as written.
    pub callee_name: String,
    /// 1-based line of the call token.
    pub line: usize,
    /// 1-based column of the call token.
    pub column: usize,
    /// Whether the token was a method call (`.name(`).
    pub is_method: bool,
}

/// The workspace call graph over [`SymbolIndex`] function ids.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// `edges[caller.0]` = resolved callee ids, deduplicated, sorted.
    edges: Vec<Vec<FnId>>,
    /// Raw call sites per caller (unresolved names included), for rules
    /// that inspect calls rather than reachability.
    sites: Vec<Vec<CallSite>>,
}

impl CallGraph {
    /// Builds the graph: scans every indexed function's body lines in
    /// `files` for call tokens and resolves them by name.
    #[must_use]
    pub fn build(files: &[SourceFile], index: &SymbolIndex) -> Self {
        let by_path: BTreeMap<&str, &SourceFile> =
            files.iter().map(|f| (f.path.as_str(), f)).collect();
        let mut edges = vec![Vec::new(); index.fns.len()];
        let mut sites = vec![Vec::new(); index.fns.len()];
        for sym in &index.fns {
            let Some(file) = by_path.get(sym.path.as_str()) else {
                continue;
            };
            let body_sites = scan_calls(file, sym.start_line, sym.end_line);
            let mut callees: BTreeSet<FnId> = BTreeSet::new();
            for site in &body_sites {
                for &callee in index.fns_named(&site.callee_name) {
                    if callee != sym.id {
                        callees.insert(callee);
                    }
                }
            }
            // A nested fn's body lines overlap its parent's span; drop
            // edges the parent only appears to have because a nested fn
            // (indexed separately) contains the call. Approximation:
            // keep them — nested fns are rare and over-approximate.
            edges[sym.id.0 as usize] = callees.into_iter().collect();
            sites[sym.id.0 as usize] = body_sites;
        }
        CallGraph { edges, sites }
    }

    /// Direct callees of `id`.
    #[must_use]
    pub fn callees(&self, id: FnId) -> &[FnId] {
        self.edges.get(id.0 as usize).map_or(&[], Vec::as_slice)
    }

    /// Raw call sites inside `id`'s body.
    #[must_use]
    pub fn call_sites(&self, id: FnId) -> &[CallSite] {
        self.sites.get(id.0 as usize).map_or(&[], Vec::as_slice)
    }

    /// Every function reachable from `entries` (inclusive), stopping at
    /// `boundaries`: a boundary function is itself reachable but its
    /// outgoing edges are not followed.
    #[must_use]
    pub fn reachable_from(&self, entries: &[FnId], boundaries: &BTreeSet<FnId>) -> BTreeSet<FnId> {
        let mut seen: BTreeSet<FnId> = BTreeSet::new();
        let mut queue: VecDeque<FnId> = VecDeque::new();
        for &e in entries {
            if seen.insert(e) {
                queue.push_back(e);
            }
        }
        while let Some(id) = queue.pop_front() {
            if boundaries.contains(&id) {
                continue;
            }
            for &callee in self.callees(id) {
                if seen.insert(callee) {
                    queue.push_back(callee);
                }
            }
        }
        seen
    }

    /// A shortest entry→target call path (function ids, entry first),
    /// respecting `boundaries`; `None` when unreachable. Used to attach
    /// a human-readable witness to reachability findings.
    #[must_use]
    pub fn witness_path(
        &self,
        entries: &[FnId],
        boundaries: &BTreeSet<FnId>,
        target: FnId,
    ) -> Option<Vec<FnId>> {
        let mut parent: BTreeMap<FnId, Option<FnId>> = BTreeMap::new();
        let mut queue: VecDeque<FnId> = VecDeque::new();
        for &e in entries {
            if !parent.contains_key(&e) {
                parent.insert(e, None);
                queue.push_back(e);
            }
        }
        while let Some(id) = queue.pop_front() {
            if id == target {
                let mut path = vec![id];
                let mut cur = id;
                while let Some(Some(p)) = parent.get(&cur) {
                    path.push(*p);
                    cur = *p;
                }
                path.reverse();
                return Some(path);
            }
            if boundaries.contains(&id) {
                continue;
            }
            for &callee in self.callees(id) {
                if !parent.contains_key(&callee) {
                    parent.insert(callee, Some(id));
                    queue.push_back(callee);
                }
            }
        }
        None
    }
}

/// Rust keywords and common non-call tokens that look like `word(`.
const NON_CALL_KEYWORDS: [&str; 12] = [
    "if", "while", "for", "match", "return", "loop", "else", "fn", "in", "move", "let", "unsafe",
];

/// Scans masked lines `start..=end` (1-based, inclusive) of `file` for
/// call-shaped tokens.
fn scan_calls(file: &SourceFile, start_line: usize, end_line: usize) -> Vec<CallSite> {
    let mut out = Vec::new();
    let lo = start_line.saturating_sub(1);
    let hi = end_line.min(file.masked.len());
    for (offset, masked) in file.masked[lo..hi].iter().enumerate() {
        let line_no = lo + offset + 1;
        let bytes = masked.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i] as char;
            if !(c.is_ascii_alphabetic() || c == '_') {
                i += 1;
                continue;
            }
            // Token start must not be mid-identifier.
            if i > 0 {
                let prev = bytes[i - 1] as char;
                if prev.is_ascii_alphanumeric() || prev == '_' {
                    i += 1;
                    while i < bytes.len()
                        && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    continue;
                }
            }
            let tok_start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            let token = &masked[tok_start..i];
            // Skip turbofish `::<…>` between name and `(`.
            let mut j = i;
            if masked[j..].starts_with("::<") {
                let mut depth = 0usize;
                let mut k = j + 2;
                let b = masked.as_bytes();
                while k < b.len() {
                    match b[k] {
                        b'<' => depth += 1,
                        b'>' => {
                            depth -= 1;
                            if depth == 0 {
                                k += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                j = k;
            }
            if !masked[j..].starts_with('(') {
                continue;
            }
            if NON_CALL_KEYWORDS.contains(&token) {
                continue;
            }
            // `fn name(` is a declaration, not a call.
            let before = masked[..tok_start].trim_end();
            if before.ends_with("fn") {
                continue;
            }
            let is_method = before.ends_with('.');
            out.push(CallSite {
                callee_name: token.to_string(),
                line: line_no,
                column: tok_start + 1,
                is_method,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(srcs: &[(&str, &str)]) -> (Vec<SourceFile>, SymbolIndex, CallGraph) {
        let files: Vec<SourceFile> = srcs.iter().map(|(p, s)| SourceFile::new(p, s)).collect();
        let index = SymbolIndex::build(&files);
        let graph = CallGraph::build(&files, &index);
        (files, index, graph)
    }

    #[test]
    fn resolves_cross_file_calls_and_reachability() {
        let (_files, index, graph) = build(&[
            (
                "crates/a/src/lib.rs",
                "pub fn entry() {\n    helper();\n    Engine::run_batch(1);\n}\n\
                 pub fn helper() {\n    leaf::<u32>();\n}\n\
                 pub fn leaf() {}\n\
                 pub fn dead() {\n    leaf();\n}\n",
            ),
            (
                "crates/b/src/lib.rs",
                "pub struct Engine;\nimpl Engine {\n    pub fn run_batch(n: u32) -> u32 {\n        deep(n)\n    }\n}\n\
                 pub fn deep(n: u32) -> u32 { n }\n",
            ),
        ]);
        let entry = index.fns_named("entry")[0];
        let reach = graph.reachable_from(&[entry], &BTreeSet::new());
        let names: Vec<&str> = reach
            .iter()
            .map(|id| index.symbol(*id).name.as_str())
            .collect();
        assert!(names.contains(&"helper"));
        assert!(names.contains(&"leaf"), "turbofish call resolved");
        assert!(names.contains(&"run_batch"), "Type::method call resolved");
        assert!(names.contains(&"deep"), "transitive cross-crate edge");
        assert!(!names.contains(&"dead"), "unreachable fn stays out");
    }

    #[test]
    fn boundaries_stop_expansion_but_stay_reachable() {
        let (_f, index, graph) = build(&[(
            "crates/a/src/lib.rs",
            "pub fn entry() {\n    boundary();\n}\n\
             pub fn boundary() {\n    past();\n}\n\
             pub fn past() {}\n",
        )]);
        let entry = index.fns_named("entry")[0];
        let boundary = index.fns_named("boundary")[0];
        let mut stops = BTreeSet::new();
        stops.insert(boundary);
        let reach = graph.reachable_from(&[entry], &stops);
        assert!(reach.contains(&boundary));
        assert!(!reach.contains(&index.fns_named("past")[0]));
    }

    #[test]
    fn witness_path_is_entry_to_target() {
        let (_f, index, graph) = build(&[(
            "crates/a/src/lib.rs",
            "pub fn entry() {\n    mid();\n}\npub fn mid() {\n    target();\n}\npub fn target() {}\n",
        )]);
        let entry = index.fns_named("entry")[0];
        let target = index.fns_named("target")[0];
        let path = graph
            .witness_path(&[entry], &BTreeSet::new(), target)
            .expect("reachable");
        let names: Vec<&str> = path
            .iter()
            .map(|id| index.symbol(*id).name.as_str())
            .collect();
        assert_eq!(names, ["entry", "mid", "target"]);
    }

    #[test]
    fn keywords_and_declarations_are_not_calls() {
        let (_f, index, graph) = build(&[(
            "crates/a/src/lib.rs",
            "pub fn f(x: bool) {\n    if (x) {\n        return;\n    }\n    while (x) {}\n}\n",
        )]);
        let f = index.fns_named("f")[0];
        assert!(graph.call_sites(f).is_empty(), "{:?}", graph.call_sites(f));
    }

    #[test]
    fn method_calls_are_flagged_as_methods() {
        let (_f, index, graph) = build(&[(
            "crates/a/src/lib.rs",
            "pub fn f(v: f64) -> f64 {\n    v.powf(2.0)\n}\n",
        )]);
        let f = index.fns_named("f")[0];
        let sites = graph.call_sites(f);
        assert_eq!(sites.len(), 1);
        assert!(sites[0].is_method);
        assert_eq!(sites[0].callee_name, "powf");
    }
}
