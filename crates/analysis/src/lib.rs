//! `plugvolt-analysis` — the workspace's determinism & MSR-safety gate.
//!
//! The paper's countermeasure is only sound if the characterized
//! safe/unsafe map is reproducible: the software substitution stakes
//! everything on *deterministic* simulation. Nothing in the language
//! enforces that — any crate can read wall-clock time, pull ambient
//! randomness, iterate a `HashMap` into a results file, or poke a
//! voltage-offset MSR without passing the `plugvolt-msr` clamp. Each of
//! those is a bug class that silently invalidates the Figure 2–4
//! reproductions (or, for the MSR rule, re-opens the exact hole the
//! paper's Sec. 5 microcode/hardware clamp closes).
//!
//! `plugvolt-lint` is a lightweight, dependency-free source scanner:
//! line/token level, no `syn`, works offline. It masks comments and
//! string literals, tracks `#[cfg(test)]` spans, then runs two rule
//! registries: per-file rules over every Rust file, and workspace rules
//! over an item-granularity symbol index + call graph built from all of
//! them ([`items`], [`index`], [`callgraph`], [`workspace`]). Findings
//! carry a severity; the tier-1 test `tests/static_analysis.rs` asserts
//! the tree has zero error-severity findings outside the committed
//! baseline ratchet ([`baseline`], `results/lint-baseline.json`), making
//! the gate part of the build contract rather than advice.
//!
//! Suppression is per line: `// plugvolt-lint: allow(rule-id)` on the
//! offending line, or alone on the line directly above it. A suppression
//! that silences nothing is itself a finding (`unused-suppression`).
//!
//! # Examples
//!
//! ```
//! use plugvolt_analysis::{registry, scan_str, Severity};
//!
//! let findings = scan_str(
//!     "crates/core/src/charmap.rs",
//!     "use std::collections::HashMap;\n",
//! );
//! assert!(findings
//!     .iter()
//!     .any(|f| f.rule == "no-unordered-iteration" && f.severity == Severity::Error));
//! assert!(registry().len() >= 6);
//! ```

pub mod baseline;
pub mod callgraph;
pub mod findings;
pub mod index;
pub mod items;
pub mod manifest;
pub mod report;
pub mod rules;
pub mod runner;
pub mod sarif;
pub mod source;
pub mod workspace;
pub mod wsrules;

pub use baseline::{diff as baseline_diff, BaselineDiff, BaselineEntry};
pub use callgraph::{CallGraph, CallSite};
pub use findings::{Finding, Severity};
pub use index::{FnId, FnSymbol, SymbolIndex};
pub use items::{parse_items, Item, ItemKind};
pub use manifest::{check_workspace_lints_opt_in, LintsOptInViolation};
pub use report::{human_report, json_report};
pub use rules::{registry, Rule, RuleMeta};
pub use runner::{
    all_rule_metas, scan_files, scan_str, scan_strs, scan_workspace, ScanOptions, ScanResult,
};
pub use sarif::sarif_report;
pub use source::SourceFile;
pub use workspace::{Workspace, WorkspaceRule};
pub use wsrules::workspace_registry;
