//! Workspace symbol index: every parsed item, addressable by name.
//!
//! The index is the bridge between per-file parsing ([`crate::items`])
//! and workspace queries ([`crate::callgraph`], the cross-file rules).
//! Function symbols get stable integer ids (assignment order: files
//! sorted by path, items in source order) so the call graph can use
//! dense adjacency vectors.

use crate::items::{parse_items, Item, ItemKind};
use crate::source::SourceFile;
use std::collections::BTreeMap;

/// Dense id of one function symbol in a [`SymbolIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FnId(pub u32);

/// One indexed function.
#[derive(Debug, Clone)]
pub struct FnSymbol {
    /// Dense id (index into [`SymbolIndex::fns`]).
    pub id: FnId,
    /// Function name (unqualified).
    pub name: String,
    /// Implemented type when the fn is an `impl` method.
    pub owner: Option<String>,
    /// Workspace-relative path of the defining file.
    pub path: String,
    /// Crate the file belongs to (see [`SourceFile::crate_name`]).
    pub crate_name: String,
    /// 1-based declaration line.
    pub start_line: usize,
    /// 1-based body-close line.
    pub end_line: usize,
    /// Whether the definition sits in test code (`#[cfg(test)]` span,
    /// `tests/`, or `benches/`).
    pub in_test_code: bool,
}

/// The workspace-wide item index.
#[derive(Debug, Default)]
pub struct SymbolIndex {
    /// Every function, in id order.
    pub fns: Vec<FnSymbol>,
    /// Name → ids of all functions with that name (trait dispatch is
    /// not resolved, so a call by name maps to every candidate).
    by_name: BTreeMap<String, Vec<FnId>>,
    /// Non-fn items per file, for rules that care about `use`/`mod`
    /// structure.
    pub other_items: BTreeMap<String, Vec<Item>>,
}

impl SymbolIndex {
    /// Builds the index over `files` (each already masked and parsed on
    /// demand). Files should be supplied in deterministic (path) order;
    /// ids follow supply order.
    #[must_use]
    pub fn build(files: &[SourceFile]) -> Self {
        let mut index = SymbolIndex::default();
        for file in files {
            let items = parse_items(file);
            let mut others = Vec::new();
            for item in items {
                match item.kind {
                    ItemKind::Fn => {
                        let id = FnId(u32::try_from(index.fns.len()).unwrap_or(u32::MAX));
                        index.by_name.entry(item.name.clone()).or_default().push(id);
                        index.fns.push(FnSymbol {
                            id,
                            name: item.name,
                            owner: item.owner,
                            path: file.path.clone(),
                            crate_name: file.crate_name.clone(),
                            start_line: item.start_line,
                            end_line: item.end_line,
                            in_test_code: file.is_test_code(item.start_line),
                        });
                    }
                    _ => others.push(item),
                }
            }
            if !others.is_empty() {
                index.other_items.insert(file.path.clone(), others);
            }
        }
        index
    }

    /// All functions named `name`, across the whole workspace.
    #[must_use]
    pub fn fns_named(&self, name: &str) -> &[FnId] {
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// The symbol for an id.
    #[must_use]
    pub fn symbol(&self, id: FnId) -> &FnSymbol {
        &self.fns[id.0 as usize]
    }

    /// Ids of every function whose name matches `pred`.
    pub fn fns_matching(&self, pred: impl Fn(&str) -> bool) -> Vec<FnId> {
        self.fns
            .iter()
            .filter(|f| pred(&f.name))
            .map(|f| f.id)
            .collect()
    }

    /// The innermost function containing `line` of `path`, if any.
    /// Innermost = the matching span with the latest start line.
    #[must_use]
    pub fn enclosing_fn(&self, path: &str, line: usize) -> Option<FnId> {
        self.fns
            .iter()
            .filter(|f| f.path == path && f.start_line <= line && line <= f.end_line)
            .max_by_key(|f| f.start_line)
            .map(|f| f.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_resolves_names_across_files() {
        let files = vec![
            SourceFile::new(
                "crates/a/src/lib.rs",
                "pub fn shared() {}\npub fn only_a() {}\n",
            ),
            SourceFile::new("crates/b/src/lib.rs", "pub fn shared() {}\n"),
        ];
        let index = SymbolIndex::build(&files);
        assert_eq!(index.fns_named("shared").len(), 2);
        assert_eq!(index.fns_named("only_a").len(), 1);
        assert!(index.fns_named("absent").is_empty());
        let sym = index.symbol(index.fns_named("only_a")[0]);
        assert_eq!(sym.crate_name, "a");
    }

    #[test]
    fn enclosing_fn_prefers_innermost() {
        let files = vec![SourceFile::new(
            "crates/a/src/lib.rs",
            "fn outer() {\n    fn inner() {\n        x();\n    }\n    y();\n}\n",
        )];
        let index = SymbolIndex::build(&files);
        let inner = index.enclosing_fn("crates/a/src/lib.rs", 3).expect("in fn");
        assert_eq!(index.symbol(inner).name, "inner");
        let outer = index.enclosing_fn("crates/a/src/lib.rs", 5).expect("in fn");
        assert_eq!(index.symbol(outer).name, "outer");
        assert!(index.enclosing_fn("crates/a/src/lib.rs", 99).is_none());
    }

    #[test]
    fn test_code_definitions_are_marked() {
        let files = vec![SourceFile::new(
            "crates/a/src/lib.rs",
            "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n",
        )];
        let index = SymbolIndex::build(&files);
        assert!(!index.symbol(index.fns_named("real")[0]).in_test_code);
        assert!(index.symbol(index.fns_named("helper")[0]).in_test_code);
    }
}
