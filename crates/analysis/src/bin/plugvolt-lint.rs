//! `plugvolt-lint` — determinism & MSR-safety gate for the workspace.
//!
//! ```text
//! plugvolt-lint [--workspace | --root <path>] [--format human|json|sarif]
//!               [--baseline <path>] [--write-baseline <path>]
//!               [--min-severity <s>] [--rule <id>]... [--list-rules]
//!               [--check-workspace-lints]
//! ```
//!
//! Exit codes: `0` clean (no error-severity findings outside the
//! baseline), `1` gate failed, `2` usage or I/O error.

use plugvolt_analysis::{
    all_rule_metas, baseline, check_workspace_lints_opt_in, human_report, json_report,
    sarif_report, scan_workspace, ScanOptions, Severity,
};
use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Human,
    Json,
    Sarif,
}

struct Args {
    root: PathBuf,
    format: Format,
    min_severity: Severity,
    only_rules: Vec<String>,
    list_rules: bool,
    check_workspace_lints: bool,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
}

fn usage() -> &'static str {
    "plugvolt-lint: determinism & MSR-safety static analysis\n\
     \n\
     USAGE:\n\
     \x20 plugvolt-lint [--workspace] [--root <path>] [--format human|json|sarif]\n\
     \x20               [--baseline <path>] [--write-baseline <path>]\n\
     \x20               [--min-severity info|warning|error] [--rule <id>]...\n\
     \x20               [--list-rules]\n\
     \n\
     OPTIONS:\n\
     \x20 --workspace        scan the enclosing cargo workspace (default)\n\
     \x20 --root <path>      scan an explicit directory instead\n\
     \x20 --format <f>       report format: human (default), json, sarif\n\
     \x20 --json             shorthand for --format json\n\
     \x20 --baseline <path>  ratchet gate: fail on error findings not in the\n\
     \x20                    committed baseline, and on stale baseline entries\n\
     \x20 --write-baseline <path>\n\
     \x20                    write the current error findings as a baseline\n\
     \x20                    (justifications must be edited in) and exit\n\
     \x20 --min-severity <s> hide findings below this severity in output\n\
     \x20 --rule <id>        run only the named rule (repeatable)\n\
     \x20 --list-rules       print the rule registry and exit\n\
     \x20 --check-workspace-lints\n\
     \x20                    verify every workspace member's Cargo.toml\n\
     \x20                    opts into `[lints] workspace = true`, then exit\n\
     \n\
     Suppress a finding with `// plugvolt-lint: allow(<rule-id>)` on the\n\
     offending line or alone on the line above it; a suppression that\n\
     silences nothing is itself a finding (unused-suppression).\n"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::new(),
        format: Format::Human,
        min_severity: Severity::Info,
        only_rules: Vec::new(),
        list_rules: false,
        check_workspace_lints: false,
        baseline: None,
        write_baseline: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => {}
            "--root" => {
                let v = it.next().ok_or("--root needs a path")?;
                args.root = PathBuf::from(v);
            }
            "--json" => args.format = Format::Json,
            "--format" => {
                let v = it.next().ok_or("--format needs a value")?;
                args.format = match v.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--baseline" => {
                let v = it.next().ok_or("--baseline needs a path")?;
                args.baseline = Some(PathBuf::from(v));
            }
            "--write-baseline" => {
                let v = it.next().ok_or("--write-baseline needs a path")?;
                args.write_baseline = Some(PathBuf::from(v));
            }
            "--min-severity" => {
                let v = it.next().ok_or("--min-severity needs a value")?;
                args.min_severity =
                    Severity::parse(&v).ok_or_else(|| format!("unknown severity `{v}`"))?;
            }
            "--rule" => {
                let v = it.next().ok_or("--rule needs a rule id")?;
                // A typo'd id would otherwise silently run zero rules and
                // report the workspace clean.
                if !all_rule_metas().iter().any(|m| m.id == v) {
                    return Err(format!("unknown rule id `{v}` (see --list-rules)"));
                }
                args.only_rules.push(v);
            }
            "--list-rules" => args.list_rules = true,
            "--check-workspace-lints" => args.check_workspace_lints = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.root.as_os_str().is_empty() {
        args.root = find_workspace_root()?;
    }
    Ok(args)
}

/// Walks upward from the current directory to the first `Cargo.toml`
/// containing a `[workspace]` table.
fn find_workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest).map_err(|e| e.to_string())?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace Cargo.toml found above the current directory".into());
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            if msg.is_empty() {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for meta in all_rule_metas() {
            println!(
                "{:<28} {:<8} {}",
                meta.id,
                meta.severity.name(),
                meta.summary
            );
        }
        return ExitCode::SUCCESS;
    }
    if args.check_workspace_lints {
        return match check_workspace_lints_opt_in(&args.root) {
            Ok(violations) if violations.is_empty() => {
                println!("workspace lints: every member opts in");
                ExitCode::SUCCESS
            }
            Ok(violations) => {
                for v in &violations {
                    eprintln!("error: {v}");
                }
                eprintln!(
                    "{} member(s) outside the `[workspace.lints]` wall",
                    violations.len()
                );
                ExitCode::from(1)
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        };
    }
    let options = ScanOptions {
        only_rules: args.only_rules,
    };
    let mut result = match scan_workspace(&args.root, &options) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: scanning {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &args.write_baseline {
        let text = baseline::write_baseline(&result.findings);
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("error: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "wrote {} baseline entr{} to {} — edit the justifications before committing",
            result.count(Severity::Error),
            if result.count(Severity::Error) == 1 {
                "y"
            } else {
                "ies"
            },
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    // Gate: with a baseline, the ratchet decides; without, any error
    // finding fails.
    let gate_passes = match &args.baseline {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: reading baseline {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let entries = match baseline::parse(&text) {
                Ok(e) => e,
                Err(e) => {
                    eprintln!("error: baseline {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let diff = baseline::diff(&result.findings, &entries);
            for f in &diff.new {
                eprintln!(
                    "baseline: NEW error finding {}:{}:{} [{}] {}",
                    f.path, f.line, f.column, f.rule, f.message
                );
            }
            for e in &diff.stale {
                eprintln!(
                    "baseline: STALE entry [{}] {} `{}` — the finding is gone; \
                     delete the entry (the ratchet only shrinks)",
                    e.rule, e.path, e.snippet
                );
            }
            diff.passes()
        }
        None => result.passes_gate(),
    };

    result.findings.retain(|f| f.severity >= args.min_severity);
    match args.format {
        Format::Json => print!("{}", json_report(&result)),
        Format::Sarif => print!("{}", sarif_report(&result, &all_rule_metas())),
        Format::Human => print!("{}", human_report(&result)),
    }
    if gate_passes {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
