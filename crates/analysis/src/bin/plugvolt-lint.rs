//! `plugvolt-lint` — determinism & MSR-safety gate for the workspace.
//!
//! ```text
//! plugvolt-lint [--workspace | --root <path>] [--json] [--min-severity <s>]
//!               [--rule <id>]... [--list-rules] [--check-workspace-lints]
//! ```
//!
//! Exit codes: `0` clean (no error-severity findings), `1` gate failed,
//! `2` usage or I/O error.

use plugvolt_analysis::{
    check_workspace_lints_opt_in, human_report, json_report, registry, scan_workspace, ScanOptions,
    Severity,
};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    json: bool,
    min_severity: Severity,
    only_rules: Vec<String>,
    list_rules: bool,
    check_workspace_lints: bool,
}

fn usage() -> &'static str {
    "plugvolt-lint: determinism & MSR-safety static analysis\n\
     \n\
     USAGE:\n\
     \x20 plugvolt-lint [--workspace] [--root <path>] [--json]\n\
     \x20               [--min-severity info|warning|error] [--rule <id>]...\n\
     \x20               [--list-rules]\n\
     \n\
     OPTIONS:\n\
     \x20 --workspace        scan the enclosing cargo workspace (default)\n\
     \x20 --root <path>      scan an explicit directory instead\n\
     \x20 --json             machine-readable report on stdout\n\
     \x20 --min-severity <s> hide findings below this severity in output\n\
     \x20 --rule <id>        run only the named rule (repeatable)\n\
     \x20 --list-rules       print the rule registry and exit\n\
     \x20 --check-workspace-lints\n\
     \x20                    verify every workspace member's Cargo.toml\n\
     \x20                    opts into `[lints] workspace = true`, then exit\n\
     \n\
     Suppress a finding with `// plugvolt-lint: allow(<rule-id>)` on the\n\
     offending line or alone on the line above it.\n"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::new(),
        json: false,
        min_severity: Severity::Info,
        only_rules: Vec::new(),
        list_rules: false,
        check_workspace_lints: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => {}
            "--root" => {
                let v = it.next().ok_or("--root needs a path")?;
                args.root = PathBuf::from(v);
            }
            "--json" => args.json = true,
            "--min-severity" => {
                let v = it.next().ok_or("--min-severity needs a value")?;
                args.min_severity =
                    Severity::parse(&v).ok_or_else(|| format!("unknown severity `{v}`"))?;
            }
            "--rule" => {
                let v = it.next().ok_or("--rule needs a rule id")?;
                // A typo'd id would otherwise silently run zero rules and
                // report the workspace clean.
                if !registry().iter().any(|r| r.meta().id == v) {
                    return Err(format!("unknown rule id `{v}` (see --list-rules)"));
                }
                args.only_rules.push(v);
            }
            "--list-rules" => args.list_rules = true,
            "--check-workspace-lints" => args.check_workspace_lints = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.root.as_os_str().is_empty() {
        args.root = find_workspace_root()?;
    }
    Ok(args)
}

/// Walks upward from the current directory to the first `Cargo.toml`
/// containing a `[workspace]` table.
fn find_workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest).map_err(|e| e.to_string())?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace Cargo.toml found above the current directory".into());
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            if msg.is_empty() {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for rule in registry() {
            let meta = rule.meta();
            println!(
                "{:<26} {:<8} {}",
                meta.id,
                meta.severity.name(),
                meta.summary
            );
        }
        return ExitCode::SUCCESS;
    }
    if args.check_workspace_lints {
        return match check_workspace_lints_opt_in(&args.root) {
            Ok(violations) if violations.is_empty() => {
                println!("workspace lints: every member opts in");
                ExitCode::SUCCESS
            }
            Ok(violations) => {
                for v in &violations {
                    eprintln!("error: {v}");
                }
                eprintln!(
                    "{} member(s) outside the `[workspace.lints]` wall",
                    violations.len()
                );
                ExitCode::from(1)
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        };
    }
    let options = ScanOptions {
        only_rules: args.only_rules,
    };
    let mut result = match scan_workspace(&args.root, &options) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: scanning {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };
    let gate_passes = result.passes_gate();
    result.findings.retain(|f| f.severity >= args.min_severity);
    if args.json {
        print!("{}", json_report(&result));
    } else {
        print!("{}", human_report(&result));
    }
    if gate_passes {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
