//! Workspace walking and rule execution.
//!
//! Execution order: per-file rules over every file, then workspace
//! rules over the assembled [`Workspace`]. Suppression comments are
//! applied *centrally* here — rules report unconditionally — so the
//! runner knows which comments actually fired and can flag the rest
//! through the `unused-suppression` pseudo-rule. Findings sharing
//! (path, line, column, rule) are deduplicated keeping the earliest
//! producer (per-file before workspace), which makes the re-grounded
//! rules 4/8 a strict superset of their per-file halves.

use crate::findings::{Finding, Severity};
use crate::rules::registry;
use crate::source::SourceFile;
use crate::workspace::Workspace;
use crate::wsrules::{workspace_registry, UNUSED_SUPPRESSION_META};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// What to scan and how.
#[derive(Debug, Clone, Default)]
pub struct ScanOptions {
    /// Only rules with these ids run; empty means all.
    pub only_rules: Vec<String>,
}

impl ScanOptions {
    fn active(&self, id: &str) -> bool {
        self.only_rules.is_empty() || self.only_rules.iter().any(|r| r == id)
    }
}

/// The outcome of a scan.
#[derive(Debug, Clone)]
pub struct ScanResult {
    /// Files scanned, workspace-relative.
    pub files_scanned: usize,
    /// All findings, ordered by path then line.
    pub findings: Vec<Finding>,
}

impl ScanResult {
    /// Number of findings at exactly `severity`.
    #[must_use]
    pub fn count(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == severity)
            .count()
    }

    /// Whether the tree passes the build gate (zero error findings).
    #[must_use]
    pub fn passes_gate(&self) -> bool {
        self.count(Severity::Error) == 0
    }
}

/// Directories never scanned: build output, VCS metadata, and lint
/// fixtures (which contain violations on purpose).
const SKIP_DIRS: [&str; 4] = ["target", ".git", "fixtures", "results"];

/// Scans every `.rs` file under `root` (a workspace checkout) with the
/// full rule registry.
///
/// # Errors
///
/// Returns an [`std::io::Error`] when `root` cannot be read.
pub fn scan_workspace(root: &Path, options: &ScanOptions) -> std::io::Result<ScanResult> {
    let mut paths = Vec::new();
    collect_rs_files(root, root, &mut paths)?;
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for rel in &paths {
        let text = std::fs::read_to_string(root.join(rel))?;
        files.push(SourceFile::new(&rel.to_string_lossy(), &text));
    }
    Ok(scan_files(files, options))
}

/// Runs per-file and workspace rules over already-loaded files: the
/// core of every scan entry point.
#[must_use]
pub fn scan_files(files: Vec<SourceFile>, options: &ScanOptions) -> ScanResult {
    let files_scanned = files.len();
    let ws = Workspace::build(files);
    let mut raw = Vec::new();
    for rule in registry() {
        if !options.active(rule.meta().id) {
            continue;
        }
        for file in &ws.files {
            rule.check(file, &mut raw);
        }
    }
    for rule in workspace_registry() {
        if !options.active(rule.meta().id) {
            continue;
        }
        rule.check(&ws, &mut raw);
    }

    // Central suppression filtering, tracking which comments fired:
    // (path, comment line, allowed-rule entry).
    let mut used: BTreeSet<(&str, usize, &str)> = BTreeSet::new();
    let mut findings = Vec::with_capacity(raw.len());
    for finding in raw {
        let Some(file) = ws.file(&finding.path) else {
            findings.push(finding);
            continue;
        };
        if !file.is_suppressed(finding.rule, finding.line) {
            findings.push(finding);
            continue;
        }
        for comment in &file.suppression_comments {
            if !comment.covers.contains(&finding.line) {
                continue;
            }
            for entry in &comment.rules {
                if entry == finding.rule || entry == "all" {
                    used.insert((file.path.as_str(), comment.line, entry.as_str()));
                }
            }
        }
    }

    if options.active(UNUSED_SUPPRESSION_META.id) {
        let known: BTreeSet<&str> = all_rule_metas().iter().map(|m| m.id).collect();
        for file in &ws.files {
            for comment in &file.suppression_comments {
                if file.is_suppressed(UNUSED_SUPPRESSION_META.id, comment.line) {
                    // `allow(unused-suppression)` covering this comment:
                    // deliberate pre-emptive suppression, honored here
                    // (and self-covering, so it cannot flag itself).
                    continue;
                }
                for entry in &comment.rules {
                    let message = if entry != "all" && !known.contains(entry.as_str()) {
                        format!(
                            "suppression comment allows unknown rule `{entry}` (see \
                             --list-rules); it can never fire — fix the id or delete \
                             the comment"
                        )
                    } else if !used.contains(&(file.path.as_str(), comment.line, entry.as_str())) {
                        format!(
                            "suppression comment allows `{entry}` but no such finding \
                             occurs on the covered lines; stale suppressions hide \
                             future violations — delete it"
                        )
                    } else {
                        continue;
                    };
                    let column = file.lines[comment.line - 1]
                        .find("plugvolt-lint")
                        .map_or(1, |p| p + 1);
                    findings.push(Finding {
                        rule: UNUSED_SUPPRESSION_META.id,
                        severity: UNUSED_SUPPRESSION_META.severity,
                        path: file.path.clone(),
                        line: comment.line,
                        column,
                        message,
                        snippet: file.snippet(comment.line),
                    });
                }
            }
        }
    }

    // Stable sort + dedup: per-file findings were pushed first, so when
    // the workspace half of rules 4/8 re-reports a site the per-file
    // message wins and the finding appears once.
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.column, a.rule).cmp(&(
            b.path.as_str(),
            b.line,
            b.column,
            b.rule,
        ))
    });
    findings.dedup_by(|a, b| {
        (a.path.as_str(), a.line, a.column, a.rule) == (b.path.as_str(), b.line, b.column, b.rule)
    });
    ScanResult {
        files_scanned,
        findings,
    }
}

/// Scans a single in-memory file with the full registry — the embedding
/// used by fixture tests and doc examples. Workspace rules run over the
/// one-file workspace.
#[must_use]
pub fn scan_str(path: &str, text: &str) -> Vec<Finding> {
    scan_strs(&[(path, text)]).findings
}

/// Scans several in-memory files as one workspace — the embedding for
/// cross-file fixture tests.
#[must_use]
pub fn scan_strs(sources: &[(&str, &str)]) -> ScanResult {
    let files = sources
        .iter()
        .map(|(path, text)| SourceFile::new(path, text))
        .collect();
    scan_files(files, &ScanOptions::default())
}

/// Every rule id the engine knows, in reporting order: per-file rules,
/// then workspace-only rules, then the `unused-suppression` pseudo-rule.
/// Ids shared between a per-file rule and its workspace half appear
/// once (the per-file metadata wins).
#[must_use]
pub fn all_rule_metas() -> Vec<crate::rules::RuleMeta> {
    let mut metas: Vec<crate::rules::RuleMeta> = registry().iter().map(|r| r.meta()).collect();
    for rule in workspace_registry() {
        let meta = rule.meta();
        if metas.iter().all(|m| m.id != meta.id) {
            metas.push(meta);
        }
    }
    metas.push(UNUSED_SUPPRESSION_META);
    metas
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_str_flags_and_sorts() {
        let findings = scan_str(
            "crates/cpu/src/demo.rs",
            "use std::time::Instant;\nfn f() { let _ = Instant::now(); }\n",
        );
        assert_eq!(findings.len(), 2);
        assert!(findings.windows(2).all(|w| w[0].line <= w[1].line));
        assert!(findings.iter().all(|f| f.rule == "no-wall-clock"));
    }

    #[test]
    fn gate_logic() {
        let result = ScanResult {
            files_scanned: 1,
            findings: scan_str(
                "crates/core/src/x.rs",
                "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
            ),
        };
        assert_eq!(result.count(Severity::Warning), 1);
        assert!(result.passes_gate(), "warnings do not gate");
    }

    #[test]
    fn unused_suppression_fires_and_used_ones_do_not() {
        // Used suppression: silences a real finding, no residue.
        let findings = scan_str(
            "crates/kernel/src/x.rs",
            "use std::time::Instant; // plugvolt-lint: allow(no-wall-clock)\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
        // Unused suppression: nothing to silence, so the comment itself
        // is the finding.
        let findings = scan_str(
            "crates/kernel/src/x.rs",
            "// plugvolt-lint: allow(no-wall-clock)\nfn fine() {}\n",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "unused-suppression");
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn unknown_rule_in_suppression_is_flagged() {
        let findings = scan_str(
            "crates/kernel/src/x.rs",
            "use std::time::Instant; // plugvolt-lint: allow(no-wallclock)\n",
        );
        // The typo'd id suppresses nothing, so both the original finding
        // and the unknown-rule finding surface.
        assert!(findings.iter().any(|f| f.rule == "no-wall-clock"));
        assert!(findings
            .iter()
            .any(|f| f.rule == "unused-suppression" && f.message.contains("unknown rule")));
    }

    #[test]
    fn allow_unused_suppression_is_honored() {
        let findings = scan_str(
            "crates/kernel/src/x.rs",
            "// plugvolt-lint: allow(unused-suppression, no-wall-clock)\nfn fine() {}\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn all_rule_metas_are_unique_and_cover_both_registries() {
        let metas = all_rule_metas();
        let ids: BTreeSet<&str> = metas.iter().map(|m| m.id).collect();
        assert_eq!(ids.len(), metas.len(), "duplicate rule ids");
        for id in [
            "no-wall-clock",
            "msr-write-discipline",
            "hot-path-transcendentals",
            "seed-label-uniqueness",
            "parallel-merge-determinism",
            "telemetry-key-registry",
            "unused-suppression",
        ] {
            assert!(ids.contains(id), "missing {id}");
        }
    }
}
