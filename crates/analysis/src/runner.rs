//! Workspace walking and rule execution.

use crate::findings::{Finding, Severity};
use crate::rules::registry;
use crate::source::SourceFile;
use std::path::{Path, PathBuf};

/// What to scan and how.
#[derive(Debug, Clone, Default)]
pub struct ScanOptions {
    /// Only rules with these ids run; empty means all.
    pub only_rules: Vec<String>,
}

/// The outcome of a scan.
#[derive(Debug, Clone)]
pub struct ScanResult {
    /// Files scanned, workspace-relative.
    pub files_scanned: usize,
    /// All findings, ordered by path then line.
    pub findings: Vec<Finding>,
}

impl ScanResult {
    /// Number of findings at exactly `severity`.
    #[must_use]
    pub fn count(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == severity)
            .count()
    }

    /// Whether the tree passes the build gate (zero error findings).
    #[must_use]
    pub fn passes_gate(&self) -> bool {
        self.count(Severity::Error) == 0
    }
}

/// Directories never scanned: build output, VCS metadata, and lint
/// fixtures (which contain violations on purpose).
const SKIP_DIRS: [&str; 4] = ["target", ".git", "fixtures", "results"];

/// Scans every `.rs` file under `root` (a workspace checkout) with the
/// full rule registry.
///
/// # Errors
///
/// Returns an [`std::io::Error`] when `root` cannot be read.
pub fn scan_workspace(root: &Path, options: &ScanOptions) -> std::io::Result<ScanResult> {
    let mut paths = Vec::new();
    collect_rs_files(root, root, &mut paths)?;
    paths.sort();
    let rules = active_rules(options);
    let mut findings = Vec::new();
    let files_scanned = paths.len();
    for rel in &paths {
        let text = std::fs::read_to_string(root.join(rel))?;
        let file = SourceFile::new(&rel.to_string_lossy(), &text);
        for rule in &rules {
            rule.check(&file, &mut findings);
        }
    }
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.column, a.rule).cmp(&(
            b.path.as_str(),
            b.line,
            b.column,
            b.rule,
        ))
    });
    Ok(ScanResult {
        files_scanned,
        findings,
    })
}

/// Scans a single in-memory file with the full registry — the embedding
/// used by fixture tests and doc examples.
#[must_use]
pub fn scan_str(path: &str, text: &str) -> Vec<Finding> {
    let file = SourceFile::new(path, text);
    let mut findings = Vec::new();
    for rule in registry() {
        rule.check(&file, &mut findings);
    }
    findings.sort_by(|a, b| (a.line, a.column, a.rule).cmp(&(b.line, b.column, b.rule)));
    findings
}

fn active_rules(options: &ScanOptions) -> Vec<Box<dyn crate::rules::Rule>> {
    registry()
        .into_iter()
        .filter(|r| {
            options.only_rules.is_empty() || options.only_rules.iter().any(|id| id == r.meta().id)
        })
        .collect()
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_str_flags_and_sorts() {
        let findings = scan_str(
            "crates/cpu/src/demo.rs",
            "use std::time::Instant;\nfn f() { let _ = Instant::now(); }\n",
        );
        assert_eq!(findings.len(), 2);
        assert!(findings.windows(2).all(|w| w[0].line <= w[1].line));
        assert!(findings.iter().all(|f| f.rule == "no-wall-clock"));
    }

    #[test]
    fn gate_logic() {
        let result = ScanResult {
            files_scanned: 1,
            findings: scan_str(
                "crates/core/src/x.rs",
                "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
            ),
        };
        assert_eq!(result.count(Severity::Warning), 1);
        assert!(result.passes_gate(), "warnings do not gate");
    }
}
