//! The lint registry: seven determinism & MSR-safety rules.
//!
//! Each rule documents its paper rationale inline; the README's "Static
//! analysis & determinism guarantees" section mirrors this table.

use crate::findings::{Finding, Severity};
use crate::source::{FileRole, SourceFile};

/// Static metadata describing one rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleMeta {
    /// Stable identifier used in reports and suppression comments.
    pub id: &'static str,
    /// Severity of its findings.
    pub severity: Severity,
    /// One-line description for `--list-rules` and docs.
    pub summary: &'static str,
}

/// A lint rule: scoped token scan over one pre-processed source file.
pub trait Rule: Sync {
    /// The rule's metadata.
    fn meta(&self) -> RuleMeta;

    /// Appends findings for `file` to `out`. Suppression comments are
    /// applied centrally by the runner (which also tracks which
    /// comments earned their keep, for `unused-suppression`), so
    /// implementations report every hit.
    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>);
}

/// Pushes a finding. Suppression is applied later, centrally, by the
/// runner — rules report unconditionally so the runner can tell which
/// suppression comments actually fired.
pub fn emit(
    file: &SourceFile,
    meta: RuleMeta,
    line: usize,
    column: usize,
    message: String,
    out: &mut Vec<Finding>,
) {
    out.push(Finding {
        rule: meta.id,
        severity: meta.severity,
        path: file.path.clone(),
        line,
        column,
        message,
        snippet: file.snippet(line),
    });
}

/// The full rule registry, in reporting order.
#[must_use]
pub fn registry() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NoWallClock),
        Box::new(NoAmbientRng),
        Box::new(NoUnorderedIteration),
        Box::new(MsrWriteDiscipline),
        Box::new(NoUnwrapInLib),
        Box::new(FloatAccumulationOrder),
        Box::new(MachineConstructionDiscipline),
        Box::new(HotPathTranscendentals),
    ]
}

/// Crates whose library code must be wall-clock free: everything that
/// executes inside the simulated timeline. `bench`, shims and the CLI
/// may time real-world things.
pub(crate) const SIM_CRATES: [&str; 6] = ["des", "circuit", "cpu", "kernel", "core", "attacks"];

/// Modules that emit experiment results; iteration order there is
/// output order, so unordered containers are forbidden outright.
const RESULT_MODULES: [&str; 4] = ["charmap", "characterize", "maximal", "experiments"];

pub(crate) fn is_sim_crate(file: &SourceFile) -> bool {
    SIM_CRATES.contains(&file.crate_name.as_str())
}

fn is_result_module(file: &SourceFile) -> bool {
    let stem = file
        .path
        .rsplit('/')
        .next()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or_default();
    RESULT_MODULES.contains(&stem) || file.path.split('/').any(|seg| seg == "experiments")
}

/// Rule 1 — `no-wall-clock`.
///
/// Simulation crates must not read host time: results would depend on
/// scheduler noise and the characterized map (Figures 2–4) would stop
/// being reproducible. All time comes from the DES clock
/// (`plugvolt_des::time`).
pub struct NoWallClock;

impl Rule for NoWallClock {
    fn meta(&self) -> RuleMeta {
        RuleMeta {
            id: "no-wall-clock",
            severity: Severity::Error,
            summary: "std::time::{Instant,SystemTime} banned in simulation crates; \
                      use the plugvolt-des simulated clock",
        }
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if !is_sim_crate(file) || matches!(file.role, FileRole::Bench) {
            return;
        }
        for ident in ["Instant", "SystemTime"] {
            for (line, column) in file.find_ident(ident) {
                if file.is_test_code(line) {
                    continue;
                }
                emit(
                    file,
                    self.meta(),
                    line,
                    column,
                    format!(
                        "`{ident}` reads host wall-clock time inside simulation crate \
                         `{}`; derive all time from the deterministic DES clock \
                         (plugvolt_des::time::SimTime)",
                        file.crate_name
                    ),
                    out,
                );
            }
        }
    }
}

/// Rule 2 — `no-ambient-rng`.
///
/// Ambient randomness (`rand::thread_rng`, `random()`, OS entropy) makes
/// every run unique, which is exactly what a characterization framework
/// cannot afford. All randomness flows through the seeded, labelled
/// `plugvolt_des::rng::SimRng` streams.
pub struct NoAmbientRng;

impl Rule for NoAmbientRng {
    fn meta(&self) -> RuleMeta {
        RuleMeta {
            id: "no-ambient-rng",
            severity: Severity::Error,
            summary: "ambient RNG (rand::thread_rng / random() / OS entropy) banned; \
                      use seeded plugvolt-des::rng streams",
        }
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if file.crate_name.starts_with("shims/") {
            return;
        }
        for ident in ["thread_rng", "from_entropy", "getrandom", "OsRng"] {
            for (line, column) in file.find_ident(ident) {
                emit(
                    file,
                    self.meta(),
                    line,
                    column,
                    format!(
                        "`{ident}` draws ambient randomness; every stochastic component \
                         must take a seeded plugvolt_des::rng::SimRng stream"
                    ),
                    out,
                );
            }
        }
        // A bare `rand` path segment (e.g. `rand::random()`, `use rand::…`)
        // means the external crate: banned workspace-wide since the
        // in-tree generator replaced it.
        for (line, column) in file.find_ident("rand") {
            let text = &file.masked[line - 1];
            let after = &text[column - 1 + "rand".len()..];
            if after.starts_with("::") || text.trim_start().starts_with("use rand") {
                emit(
                    file,
                    self.meta(),
                    line,
                    column,
                    "the external `rand` crate is banned (hermetic build, deterministic \
                     streams); use plugvolt_des::rng::SimRng"
                        .to_string(),
                    out,
                );
            }
        }
    }
}

/// Rule 3 — `no-unordered-iteration`.
///
/// In result-producing modules, `HashMap`/`HashSet` iteration order leaks
/// straight into emitted artifacts. `BTreeMap`/`BTreeSet` (or an explicit
/// sort before emitting) keeps Figures 2–4 byte-stable across runs and
/// Rust versions.
pub struct NoUnorderedIteration;

impl Rule for NoUnorderedIteration {
    fn meta(&self) -> RuleMeta {
        RuleMeta {
            id: "no-unordered-iteration",
            severity: Severity::Error,
            summary: "HashMap/HashSet banned in result-producing modules \
                      (charmap, characterize, maximal, experiments); use BTree* or sort",
        }
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if !is_result_module(file) {
            return;
        }
        for ident in ["HashMap", "HashSet"] {
            for (line, column) in file.find_ident(ident) {
                if file.is_test_code(line) {
                    continue;
                }
                emit(
                    file,
                    self.meta(),
                    line,
                    column,
                    format!(
                        "`{ident}` iteration order is unspecified and leaks into emitted \
                         results in module `{}`; use BTreeMap/BTreeSet or sort before emit",
                        file.path
                    ),
                    out,
                );
            }
        }
    }
}

/// Rule 4 — `msr-write-discipline`.
///
/// The software analogue of the paper's Sec. 5 microcode/hardware clamp:
/// every undervolt request must pass through `plugvolt-msr`'s
/// `offset_limit` choke point. Raw `0x150`/`0x198` literals outside
/// `crates/msr` are bypasses waiting to happen — V0LTpwn worked because
/// undervolting paths existed that no single clamp covered.
pub struct MsrWriteDiscipline;

impl Rule for MsrWriteDiscipline {
    fn meta(&self) -> RuleMeta {
        RuleMeta {
            id: "msr-write-discipline",
            severity: Severity::Error,
            summary: "raw MSR 0x150/0x198 literals and direct package rdmsr/wrmsr calls \
                      banned outside the blessed msr wrappers (workspace rule adds \
                      call-graph detection); go through the offset_limit clamp",
        }
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if file.crate_name == "msr" {
            return;
        }
        for literal in ["0x150", "0x198"] {
            for (line, column) in find_hex_literal(file, literal) {
                emit(
                    file,
                    self.meta(),
                    line,
                    column,
                    format!(
                        "raw MSR literal `{literal}` outside crates/msr bypasses the \
                         offset_limit clamp (the Sec. 5 choke point); use \
                         plugvolt_msr::addr::Msr::{} instead",
                        if literal == "0x150" {
                            "OC_MAILBOX"
                        } else {
                            "IA32_PERF_STATUS"
                        }
                    ),
                    out,
                );
            }
        }
    }
}

/// Finds a hex literal token (case-insensitive on the payload digits),
/// rejecting matches embedded in longer literals like `0x1500`.
pub(crate) fn find_hex_literal(file: &SourceFile, literal: &str) -> Vec<(usize, usize)> {
    let mut hits = Vec::new();
    let lower = literal.to_ascii_lowercase();
    for (i, line) in file.masked.iter().enumerate() {
        let hay = line.to_ascii_lowercase();
        let mut start = 0;
        while let Some(pos) = hay[start..].find(&lower) {
            let at = start + pos;
            let before_ok = at == 0
                || !hay[..at]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_');
            let after = at + lower.len();
            let after_ok = !hay[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_hexdigit() || c == '_');
            if before_ok && after_ok {
                hits.push((i + 1, at + 1));
            }
            start = at + lower.len();
        }
    }
    hits
}

/// Rule 5 — `no-unwrap-in-lib`.
///
/// Library code aborting the whole simulation on a recoverable error is
/// how long characterization campaigns die at hour six. Return typed
/// errors, or use `expect` with a message stating the invariant that
/// makes the failure impossible. Test code is exempt.
pub struct NoUnwrapInLib;

impl Rule for NoUnwrapInLib {
    fn meta(&self) -> RuleMeta {
        RuleMeta {
            id: "no-unwrap-in-lib",
            severity: Severity::Warning,
            summary: "unwrap()/expect(\"\")/panic! flagged in library crates; \
                      return typed errors or expect with an invariant message",
        }
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if !matches!(file.role, FileRole::Lib) || file.crate_name.starts_with("shims/") {
            return;
        }
        for (line, column) in file.find_ident("unwrap") {
            if file.is_test_code(line) {
                continue;
            }
            let text = &file.masked[line - 1];
            let is_call = text[column - 1 + "unwrap".len()..]
                .trim_start()
                .starts_with("()");
            let is_method = text[..column - 1].trim_end().ends_with('.');
            if is_call && is_method {
                emit(
                    file,
                    self.meta(),
                    line,
                    column,
                    "`.unwrap()` in library code aborts the whole simulation; return a \
                     typed error or use `.expect(\"<invariant>\")`"
                        .to_string(),
                    out,
                );
            }
        }
        for (line, column) in file.find_ident("expect") {
            if file.is_test_code(line) {
                continue;
            }
            // Empty message check must look at the raw line (masked text
            // blanks string contents).
            let raw = &file.lines[line - 1];
            // Columns come from masked text; masking a non-ASCII string
            // character to one space can shift byte offsets, so index
            // defensively.
            if raw
                .get(column - 1..)
                .is_some_and(|r| r.starts_with("expect(\"\")"))
            {
                emit(
                    file,
                    self.meta(),
                    line,
                    column,
                    "`.expect(\"\")` carries no invariant; state why the failure is \
                     impossible or return a typed error"
                        .to_string(),
                    out,
                );
            }
        }
        for (line, column) in file.find_ident("panic") {
            if file.is_test_code(line) {
                continue;
            }
            let text = &file.masked[line - 1];
            if text[column - 1 + "panic".len()..].starts_with('!') {
                emit(
                    file,
                    self.meta(),
                    line,
                    column,
                    "`panic!` in library code; prefer a typed error (panics are \
                     acceptable only for documented invariant violations)"
                        .to_string(),
                    out,
                );
            }
        }
    }
}

/// Rule 6 — `float-accumulation-order`.
///
/// Floating-point addition is not associative: folding or summing floats
/// out of an unordered collection produces run-dependent low bits, which
/// then leak into serialized results. Accumulate over ordered containers
/// or sort first.
pub struct FloatAccumulationOrder;

impl Rule for FloatAccumulationOrder {
    fn meta(&self) -> RuleMeta {
        RuleMeta {
            id: "float-accumulation-order",
            severity: Severity::Warning,
            summary: "fold/sum over float iterators derived from unordered collections; \
                      float addition is order-sensitive, iterate a BTree* or sort first",
        }
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        // Identifiers bound to Hash* containers anywhere in the file.
        let mut hash_idents: Vec<String> = Vec::new();
        for (i, _) in file.find_ident("HashMap") {
            if let Some(name) = binding_name(&file.masked[i - 1]) {
                hash_idents.push(name);
            }
        }
        for (i, _) in file.find_ident("HashSet") {
            if let Some(name) = binding_name(&file.masked[i - 1]) {
                hash_idents.push(name);
            }
        }
        for (i, masked) in file.masked.iter().enumerate() {
            let line = i + 1;
            if file.is_test_code(line) {
                continue;
            }
            let accumulates = masked.contains(".sum::<f64>()")
                || masked.contains(".sum::<f32>()")
                || masked.contains(".fold(");
            if !accumulates {
                continue;
            }
            let from_hash_ident = hash_idents.iter().any(|id| {
                [
                    ".iter()",
                    ".values()",
                    ".keys()",
                    ".into_iter()",
                    ".drain()",
                ]
                .iter()
                .any(|m| masked.contains(&format!("{id}{m}")))
            });
            let inline_hash = masked.contains("HashMap") || masked.contains("HashSet");
            if from_hash_ident || inline_hash {
                let column = masked
                    .find(".fold(")
                    .or_else(|| masked.find(".sum::"))
                    .map_or(1, |p| p + 1);
                emit(
                    file,
                    self.meta(),
                    line,
                    column,
                    "float accumulation over an unordered collection: addition order \
                     varies per run and perturbs low bits of emitted results; iterate \
                     a BTree* container or sort before accumulating"
                        .to_string(),
                    out,
                );
            }
        }
    }
}

/// Rule 7 — `machine-construction-discipline`.
///
/// Non-test code must obtain machines through the bench `Scenario`
/// layer (`crates/bench/src/scenario.rs`), which owns root-seed policy,
/// labelled seed derivation, and telemetry installation. A scattered
/// `Machine::new(model, <ad-hoc seed>)` silently forks the seed policy:
/// two call sites can collide on a seed (correlated "independent" runs)
/// or drift apart when the root seed changes. Code that sits below the
/// bench crate in the dependency graph and genuinely cannot use the
/// Scenario layer documents why and suppresses the rule.
pub struct MachineConstructionDiscipline;

impl Rule for MachineConstructionDiscipline {
    fn meta(&self) -> RuleMeta {
        RuleMeta {
            id: "machine-construction-discipline",
            severity: Severity::Warning,
            summary: "Machine::new/new_unit outside crates/bench/src/scenario.rs and test \
                      code; construct machines through the bench Scenario layer",
        }
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if file.path == "crates/bench/src/scenario.rs" {
            return;
        }
        for (line, column) in file.find_ident("Machine") {
            if file.is_test_code(line) {
                continue;
            }
            let after = &file.masked[line - 1][column - 1 + "Machine".len()..];
            let ctor = if after.starts_with("::new(") {
                "new"
            } else if after.starts_with("::new_unit(") {
                "new_unit"
            } else {
                continue;
            };
            emit(
                file,
                self.meta(),
                line,
                column,
                format!(
                    "`Machine::{ctor}` outside the Scenario layer forks the seed policy; \
                     use `Scenario::machine`/`machine_for` (crates/bench/src/scenario.rs) \
                     so seeds stay derived, labelled and collision-free"
                ),
                out,
            );
        }
    }
}

/// Rule 8 — `hot-path-transcendentals`.
///
/// The simulator's per-batch hot paths (`run_batch*`, `run_imul*`,
/// `poll*`) are called millions of times per characterization sweep;
/// the slack-table refactor exists precisely so they never evaluate the
/// alpha-power delay model (`powf`) or the fault-band sigmoid
/// (`exp`/`ln`) inline. A transcendental call creeping back into one of
/// those functions silently undoes the optimization — the results stay
/// identical, only the sweep gets slow again — so the lint, not a perf
/// regression six PRs later, is what catches it. The table-build module
/// (`crates/cpu/src/slack.rs`) is exempt: it is the one place allowed
/// to pay the analytic cost, once per process.
pub struct HotPathTranscendentals;

/// Function-name prefixes whose bodies count as batch hot paths.
const HOT_PATH_FN_PREFIXES: [&str; 3] = ["run_batch", "run_imul", "poll"];

impl Rule for HotPathTranscendentals {
    fn meta(&self) -> RuleMeta {
        RuleMeta {
            id: "hot-path-transcendentals",
            severity: Severity::Error,
            summary: "powf/exp/ln calls banned in code reachable from the \
                      characterize*/run_cells/run_batch*/run_imul*/poll*/queue entry \
                      points (call-graph reachability); precompute via the slack table",
        }
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if !is_sim_crate(file) || file.path == "crates/cpu/src/slack.rs" {
            return;
        }
        let enclosing = enclosing_fn_names(file);
        for ident in ["powf", "exp", "ln"] {
            for (line, column) in file.find_ident(ident) {
                if file.is_test_code(line) {
                    continue;
                }
                // Only method-call position (`.powf(`, `.exp()`, `.ln()`):
                // bare identifiers named `exp`/`ln` are not transcendentals.
                let text = &file.masked[line - 1];
                let is_method = text[..column - 1].trim_end().ends_with('.');
                let is_call = text[column - 1 + ident.len()..].starts_with('(');
                if !(is_method && is_call) {
                    continue;
                }
                let Some(fn_name) = &enclosing[line - 1] else {
                    continue;
                };
                if !HOT_PATH_FN_PREFIXES.iter().any(|p| fn_name.starts_with(p)) {
                    continue;
                }
                emit(
                    file,
                    self.meta(),
                    line,
                    column,
                    format!(
                        "`.{ident}()` inside hot path `{fn_name}`: batch loops must not \
                         evaluate transcendentals per call — precompute the value in the \
                         slack table (crates/cpu/src/slack.rs) or hoist it out of the loop"
                    ),
                    out,
                );
            }
        }
    }
}

/// For each line, the name of the innermost enclosing `fn`, tracked by
/// brace depth over the masked source (strings and comments are already
/// blanked, so every brace is structural).
fn enclosing_fn_names(file: &SourceFile) -> Vec<Option<String>> {
    let mut result = Vec::with_capacity(file.masked.len());
    let mut depth = 0usize;
    // (fn name, depth of its body's opening brace)
    let mut stack: Vec<(String, usize)> = Vec::new();
    // A declared fn whose body brace has not opened yet (signature may
    // span lines).
    let mut pending: Option<String> = None;
    for masked in &file.masked {
        result.push(stack.last().map(|(name, _)| name.clone()));
        // One in-order pass: `fn` declarations and braces must be seen
        // in source order, or `impl Foo { fn bar() {` would attach the
        // pending name to the impl block's brace.
        let bytes = masked.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'{' => {
                    depth += 1;
                    if let Some(name) = pending.take() {
                        stack.push((name, depth));
                    }
                    i += 1;
                }
                b'}' => {
                    if stack.last().is_some_and(|(_, d)| *d == depth) {
                        stack.pop();
                    }
                    depth = depth.saturating_sub(1);
                    i += 1;
                }
                b'f' if masked[i..].starts_with("fn ") => {
                    let token_ok = i == 0
                        || !masked[..i]
                            .chars()
                            .next_back()
                            .is_some_and(|c| c.is_alphanumeric() || c == '_');
                    let name: String = masked[i + 3..]
                        .trim_start()
                        .chars()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect();
                    if token_ok && !name.is_empty() {
                        pending = Some(name);
                    }
                    i += 3;
                }
                _ => i += 1,
            }
        }
    }
    result
}

/// For a masked line like `let totals: HashMap<…> = …` or
/// `let mut seen = HashSet::new()`, the bound identifier.
fn binding_name(masked_line: &str) -> Option<String> {
    let after_let = masked_line.trim_start().strip_prefix("let ")?;
    let after_mut = after_let
        .trim_start()
        .strip_prefix("mut ")
        .unwrap_or(after_let);
    let name: String = after_mut
        .trim_start()
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(path: &str, src: &str) -> Vec<Finding> {
        let file = SourceFile::new(path, src);
        let mut out = Vec::new();
        for rule in registry() {
            rule.check(&file, &mut out);
        }
        out
    }

    #[test]
    fn clean_sim_code_has_no_findings() {
        let findings = scan(
            "crates/des/src/clock.rs",
            "use crate::time::SimTime;\npub fn tick(t: SimTime) -> SimTime { t }\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn hex_literal_boundaries() {
        let file = SourceFile::new("crates/cpu/src/x.rs", "let a = 0x1500; let b = 0x150;\n");
        let hits = find_hex_literal(&file, "0x150");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0], (1, 25));
    }

    #[test]
    fn hot_path_transcendentals_flags_only_hot_fns() {
        let src = "pub fn run_batch(v: f64) -> f64 {\n    v.powf(2.0)\n}\n\
                   pub fn build_table(v: f64) -> f64 {\n    v.powf(2.0)\n}\n\
                   pub fn poll_core(p: f64) -> f64 {\n    (-p).exp()\n}\n";
        let findings = scan("crates/cpu/src/package.rs", src);
        let hits: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == "hot-path-transcendentals")
            .collect();
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert_eq!(hits[0].line, 2);
        assert_eq!(hits[1].line, 8);
    }

    #[test]
    fn hot_path_transcendentals_exempts_table_build_and_non_sim() {
        let src = "pub fn run_imul_loop(v: f64) -> f64 {\n    v.exp()\n}\n";
        // The table-build module is the sanctioned analytic site.
        assert!(scan("crates/cpu/src/slack.rs", src)
            .iter()
            .all(|f| f.rule != "hot-path-transcendentals"));
        // Non-simulation crates are out of scope.
        assert!(scan("crates/bench/src/perf.rs", src)
            .iter()
            .all(|f| f.rule != "hot-path-transcendentals"));
        // Bare identifiers named `exp`/`ln` are not method calls.
        let src = "pub fn poll_once(exp: f64, ln: f64) -> f64 {\n    exp + ln\n}\n";
        assert!(scan("crates/core/src/poll.rs", src)
            .iter()
            .all(|f| f.rule != "hot-path-transcendentals"));
    }

    #[test]
    fn enclosing_fn_tracking_handles_inline_impl_braces() {
        let file = SourceFile::new(
            "crates/cpu/src/x.rs",
            "impl Foo { fn run_batch(&self) {\n    self.v.powf(2.0);\n} }\n\
             fn outside(v: f64) -> f64 { v.powf(2.0) }\n",
        );
        let names = enclosing_fn_names(&file);
        assert_eq!(names[1].as_deref(), Some("run_batch"));
        let mut out = Vec::new();
        HotPathTranscendentals.check(&file, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn binding_name_extraction() {
        assert_eq!(
            binding_name("    let mut totals: HashMap<u32, f64> = HashMap::new();"),
            Some("totals".to_string())
        );
        assert_eq!(
            binding_name("let seen = HashSet::new();"),
            Some("seen".to_string())
        );
        assert_eq!(binding_name("totals.insert(1, 2.0);"), None);
    }
}
