//! Human-readable and JSON report rendering.
//!
//! The JSON writer is hand-rolled (the analyzer is dependency-free by
//! design — it gates the crates the serde shim lives in, so it must not
//! depend on them). The schema is pinned by a snapshot test.

use crate::findings::Severity;
use crate::runner::ScanResult;

/// Schema version stamped into JSON reports; bump on breaking changes.
pub const JSON_SCHEMA_VERSION: u32 = 1;

/// Renders the classic compiler-style text report.
#[must_use]
pub fn human_report(result: &ScanResult) -> String {
    let mut out = String::new();
    for f in &result.findings {
        out.push_str(&format!(
            "{}:{}:{}: {} [{}] {}\n",
            f.path, f.line, f.column, f.severity, f.rule, f.message
        ));
        if !f.snippet.is_empty() {
            out.push_str(&format!("    | {}\n", f.snippet));
        }
    }
    out.push_str(&format!(
        "plugvolt-lint: {} files scanned, {} errors, {} warnings, {} info\n",
        result.files_scanned,
        result.count(Severity::Error),
        result.count(Severity::Warning),
        result.count(Severity::Info),
    ));
    out
}

/// Renders the machine-readable JSON report.
#[must_use]
pub fn json_report(result: &ScanResult) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema_version\": {JSON_SCHEMA_VERSION},\n"));
    out.push_str(&format!(
        "  \"files_scanned\": {},\n  \"counts\": {{\"error\": {}, \"warning\": {}, \"info\": {}}},\n",
        result.files_scanned,
        result.count(Severity::Error),
        result.count(Severity::Warning),
        result.count(Severity::Info),
    ));
    out.push_str("  \"findings\": [");
    for (i, f) in result.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"severity\": {}, \"path\": {}, \"line\": {}, \
             \"column\": {}, \"message\": {}, \"snippet\": {}}}",
            json_str(f.rule),
            json_str(f.severity.name()),
            json_str(&f.path),
            f.line,
            f.column,
            json_str(&f.message),
            json_str(&f.snippet),
        ));
    }
    if !result.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::scan_str;

    #[test]
    fn json_escapes_quotes() {
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }

    #[test]
    fn empty_scan_renders() {
        let result = ScanResult {
            files_scanned: 0,
            findings: Vec::new(),
        };
        let json = json_report(&result);
        assert!(json.contains("\"findings\": []"));
        assert!(human_report(&result).contains("0 errors"));
    }

    #[test]
    fn report_counts_match_findings() {
        let result = ScanResult {
            files_scanned: 1,
            findings: scan_str("crates/kernel/src/x.rs", "use std::time::SystemTime;\n"),
        };
        assert!(human_report(&result).contains("1 errors"));
        assert!(json_report(&result).contains("\"error\": 1"));
    }
}
