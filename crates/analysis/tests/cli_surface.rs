//! End-to-end tests of the `plugvolt-lint` binary surface: the
//! `--list-rules` registry snapshot, and the SARIF + baseline-ratchet
//! invocation `ci.sh` runs.

use std::path::Path;
use std::process::Command;

fn lint() -> Command {
    Command::new(env!("CARGO_BIN_EXE_plugvolt-lint"))
}

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analysis sits two levels under the root")
}

/// The rule registry is a public contract: ids and severities are pinned
/// here, in registry order. Adding a rule means extending this snapshot;
/// renaming or dropping one is a breaking change to committed baselines
/// and suppression comments.
#[test]
fn list_rules_snapshot() {
    let out = lint().arg("--list-rules").output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    let seen: Vec<(String, String)> = stdout
        .lines()
        .map(|l| {
            let mut cols = l.split_whitespace();
            (
                cols.next().unwrap_or_default().to_owned(),
                cols.next().unwrap_or_default().to_owned(),
            )
        })
        .collect();
    let expected: Vec<(String, String)> = [
        ("no-wall-clock", "error"),
        ("no-ambient-rng", "error"),
        ("no-unordered-iteration", "error"),
        ("msr-write-discipline", "error"),
        ("no-unwrap-in-lib", "warning"),
        ("float-accumulation-order", "warning"),
        ("machine-construction-discipline", "warning"),
        ("hot-path-transcendentals", "error"),
        ("seed-label-uniqueness", "error"),
        ("parallel-merge-determinism", "error"),
        ("telemetry-key-registry", "error"),
        ("unused-suppression", "error"),
    ]
    .map(|(id, sev)| (id.to_owned(), sev.to_owned()))
    .to_vec();
    assert_eq!(seen, expected, "full output:\n{stdout}");
}

#[test]
fn unknown_rule_id_is_a_usage_error() {
    let out = lint()
        .args(["--rule", "no-wall-clocks"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown rule id"), "{stderr}");
}

/// The exact invocation `ci.sh` gates on: SARIF output against the
/// committed baseline must exit 0 and emit a well-formed log.
#[test]
fn sarif_with_baseline_gates_clean() {
    let root = workspace_root();
    let out = lint()
        .current_dir(root)
        .args([
            "--workspace",
            "--format",
            "sarif",
            "--baseline",
            "results/lint-baseline.json",
        ])
        .output()
        .expect("binary runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "lint gate failed against the committed baseline:\n{stderr}"
    );
    let sarif = String::from_utf8(out.stdout).expect("utf8");
    assert!(sarif.contains("\"version\": \"2.1.0\""));
    assert!(sarif.contains("\"name\": \"plugvolt-lint\""));
    // Every baselined finding still appears in the SARIF log — the
    // baseline gates the exit code, it does not censor the report.
    assert!(sarif.contains("\"ruleId\": \"hot-path-transcendentals\""));
}
