//! Proves each rule fires on a seeded-violation fixture, that clean code
//! stays clean, and that suppression comments silence findings.
//!
//! Fixtures live under `tests/fixtures/` (a directory the workspace
//! runner skips) and are scanned under *virtual* paths, because several
//! rules scope by crate or module name.

use plugvolt_analysis::{scan_str, Finding, Severity};

/// Scans fixture `text` as if it lived at `virtual_path`.
fn scan(virtual_path: &str, text: &str) -> Vec<Finding> {
    scan_str(virtual_path, text)
}

fn rules_hit(findings: &[Finding]) -> Vec<&'static str> {
    let mut ids: Vec<&'static str> = findings.iter().map(|f| f.rule).collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

#[test]
fn no_wall_clock_fires() {
    let findings = scan(
        "crates/kernel/src/fixture.rs",
        include_str!("fixtures/no_wall_clock.rs"),
    );
    assert_eq!(rules_hit(&findings), ["no-wall-clock"]);
    // `use` line (×2), `Instant::now()`, `SystemTime::now()`.
    assert_eq!(findings.len(), 4, "{findings:?}");
    assert!(findings.iter().all(|f| f.severity == Severity::Error));
}

#[test]
fn no_wall_clock_is_scoped_to_sim_crates() {
    // The same source inside the bench crate is legal (it times the host).
    let findings = scan(
        "crates/bench/src/fixture.rs",
        include_str!("fixtures/no_wall_clock.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn no_ambient_rng_fires() {
    let findings = scan(
        "crates/cpu/src/fixture.rs",
        include_str!("fixtures/no_ambient_rng.rs"),
    );
    assert_eq!(rules_hit(&findings), ["no-ambient-rng"]);
    // `use rand::thread_rng` (rand + thread_rng), `thread_rng()`,
    // `rand::rngs::OsRng` (rand + OsRng).
    assert_eq!(findings.len(), 5, "{findings:?}");
    assert!(findings.iter().all(|f| f.severity == Severity::Error));
}

#[test]
fn no_unordered_iteration_fires() {
    let findings = scan(
        "crates/core/src/charmap.rs",
        include_str!("fixtures/no_unordered_iteration.rs"),
    );
    assert_eq!(rules_hit(&findings), ["no-unordered-iteration"]);
    // HashMap on `use`/signature/`new` + HashSet on `use`/`new`.
    assert_eq!(findings.len(), 5, "{findings:?}");
    assert!(findings.iter().all(|f| f.severity == Severity::Error));
}

#[test]
fn no_unordered_iteration_is_scoped_to_result_modules() {
    let findings = scan(
        "crates/des/src/queue.rs",
        include_str!("fixtures/no_unordered_iteration.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn msr_write_discipline_fires() {
    let findings = scan(
        "crates/kernel/src/fixture.rs",
        include_str!("fixtures/msr_write_discipline.rs"),
    );
    assert_eq!(rules_hit(&findings), ["msr-write-discipline"]);
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings.iter().all(|f| f.severity == Severity::Error));
    assert!(findings[0].message.contains("OC_MAILBOX"));
    assert!(findings[1].message.contains("IA32_PERF_STATUS"));
}

#[test]
fn msr_write_discipline_exempts_the_msr_crate() {
    let findings = scan(
        "crates/msr/src/addr.rs",
        include_str!("fixtures/msr_write_discipline.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn no_unwrap_in_lib_fires() {
    let findings = scan(
        "crates/circuit/src/fixture.rs",
        include_str!("fixtures/no_unwrap_in_lib.rs"),
    );
    assert_eq!(rules_hit(&findings), ["no-unwrap-in-lib"]);
    // `.unwrap()`, `.expect("")`, `panic!`.
    assert_eq!(findings.len(), 3, "{findings:?}");
    assert!(findings.iter().all(|f| f.severity == Severity::Warning));
}

#[test]
fn no_unwrap_in_lib_exempts_tests_and_bins() {
    let text = include_str!("fixtures/no_unwrap_in_lib.rs");
    assert!(scan("crates/circuit/tests/fixture.rs", text).is_empty());
    assert!(scan("crates/bench/src/bin/fixture.rs", text).is_empty());
}

#[test]
fn float_accumulation_order_fires() {
    let findings = scan(
        "crates/cpu/src/fixture.rs",
        include_str!("fixtures/float_accumulation_order.rs"),
    );
    assert_eq!(rules_hit(&findings), ["float-accumulation-order"]);
    // One `.sum::<f64>()` and one `.fold(` over HashMap-bound idents.
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings.iter().all(|f| f.severity == Severity::Warning));
}

#[test]
fn machine_construction_discipline_fires() {
    let findings = scan(
        "crates/attacks/src/fixture.rs",
        include_str!("fixtures/machine_construction_discipline.rs"),
    );
    assert_eq!(rules_hit(&findings), ["machine-construction-discipline"]);
    // `Machine::new(` and `Machine::new_unit(` in live code; the
    // `#[cfg(test)]` constructions and the bare type mention stay clean.
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings.iter().all(|f| f.severity == Severity::Warning));
    assert!(findings.iter().all(|f| f.message.contains("Scenario")));
}

#[test]
fn machine_construction_discipline_exempts_scenario_and_tests() {
    let text = include_str!("fixtures/machine_construction_discipline.rs");
    // The Scenario layer itself is the one sanctioned construction site.
    assert!(scan("crates/bench/src/scenario.rs", text).is_empty());
    // Whole-file test roles are exempt wholesale.
    assert!(scan("tests/fixture.rs", text).is_empty());
    assert!(scan("crates/kernel/benches/fixture.rs", text).is_empty());
}

#[test]
fn clean_fixture_is_clean_even_in_strictest_scope() {
    // Result module inside a sim crate: every rule is active here, and
    // banned names appear only in comments and strings.
    let findings = scan(
        "crates/core/src/charmap.rs",
        include_str!("fixtures/clean.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn suppression_comments_silence_findings() {
    let text = include_str!("fixtures/suppressed.rs");
    let findings = scan("crates/kernel/src/fixture.rs", text);
    assert!(findings.is_empty(), "{findings:?}");
    // Sanity: with the suppression markers stripped, the same code is
    // flagged — the comments are load-bearing.
    let stripped = text.replace("plugvolt-lint: allow", "comment");
    let findings = scan("crates/kernel/src/fixture.rs", &stripped);
    assert!(!findings.is_empty());
}
