//! Pins the `--json` report schema. Downstream tooling (ci.sh, result
//! archives) parses this output; if the shape must change, bump
//! `JSON_SCHEMA_VERSION` and update this snapshot deliberately.

use plugvolt_analysis::runner::ScanResult;
use plugvolt_analysis::{json_report, scan_str};

#[test]
fn json_report_matches_snapshot() {
    let result = ScanResult {
        files_scanned: 1,
        findings: scan_str("crates/kernel/src/fixture.rs", "use std::time::Instant;\n"),
    };
    let expected = r#"{
  "schema_version": 1,
  "files_scanned": 1,
  "counts": {"error": 1, "warning": 0, "info": 0},
  "findings": [
    {"rule": "no-wall-clock", "severity": "error", "path": "crates/kernel/src/fixture.rs", "line": 1, "column": 16, "message": "`Instant` reads host wall-clock time inside simulation crate `kernel`; derive all time from the deterministic DES clock (plugvolt_des::time::SimTime)", "snippet": "use std::time::Instant;"}
  ]
}
"#;
    assert_eq!(json_report(&result), expected);
}

#[test]
fn empty_report_matches_snapshot() {
    let result = ScanResult {
        files_scanned: 3,
        findings: Vec::new(),
    };
    let expected = r#"{
  "schema_version": 1,
  "files_scanned": 3,
  "counts": {"error": 0, "warning": 0, "info": 0},
  "findings": []
}
"#;
    assert_eq!(json_report(&result), expected);
}
