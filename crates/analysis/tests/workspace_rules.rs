//! Proves each workspace rule fires on a seeded-violation fixture, that
//! the sanctioned patterns stay clean, and that the call-graph halves of
//! rules 4/8 report a superset of the per-file heuristics.
//!
//! Single-file fixtures go through `scan_str` (which builds a one-file
//! workspace); the telemetry-registry rule needs two files, so its
//! fixtures are embedded and fed to `scan_strs`.

use plugvolt_analysis::{scan_str, scan_strs, Finding, Severity, SourceFile, Workspace};

fn rules_hit(findings: &[Finding]) -> Vec<&'static str> {
    let mut ids: Vec<&'static str> = findings.iter().map(|f| f.rule).collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

#[test]
fn seed_label_uniqueness_fires_on_duplicates_only() {
    let findings = scan_str(
        "crates/des/src/fixture.rs",
        include_str!("fixtures/seed_label_uniqueness.rs"),
    );
    assert_eq!(rules_hit(&findings), ["seed-label-uniqueness"]);
    // Both sites of the duplicated label are flagged; the unique label,
    // the computed label, and the test-code use are not.
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings.iter().all(|f| f.severity == Severity::Error));
    assert!(findings
        .iter()
        .all(|f| f.message.contains("\"attack-stream\"")));
}

#[test]
fn parallel_merge_determinism_flags_all_three_shapes() {
    let findings = scan_str(
        "crates/des/src/fixture.rs",
        include_str!("fixtures/parallel_merge_determinism.rs"),
    );
    assert_eq!(rules_hit(&findings), ["parallel-merge-determinism"]);
    // One lock-guarded push, one discarded fetch_add, one captured
    // `&mut` — all in `bad_merge`; the index-addressed `good_merge`
    // pattern stays clean.
    assert_eq!(findings.len(), 3, "{findings:?}");
    assert!(findings.iter().any(|f| f.message.contains("lock guard")));
    assert!(findings.iter().any(|f| f.message.contains("fetch_add")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("&mut grand_total")));
}

#[test]
fn parallel_merge_determinism_is_scoped_to_sim_and_bench_crates() {
    // The same source in the analysis crate itself (host-side tooling)
    // is out of scope.
    let findings = scan_str(
        "crates/analysis/src/fixture.rs",
        include_str!("fixtures/parallel_merge_determinism.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn unused_suppression_flags_rot_and_unknown_rules() {
    let findings = scan_str(
        "crates/kernel/src/fixture.rs",
        include_str!("fixtures/unused_suppression.rs"),
    );
    assert_eq!(rules_hit(&findings), ["unused-suppression"]);
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings
        .iter()
        .any(|f| f.message.contains("unknown rule `not-a-real-rule`")));
    // The two suppressions that silence real `no-wall-clock` findings
    // are used, hence absent here.
}

#[test]
fn telemetry_key_registry_checks_both_directions() {
    let emitter = r#"
pub fn record(sink: &Sink) {
    sink.incr(MetricKey::global("cpu", "crashes"));
    sink.incr(MetricKey::global("cpu", "typo_key"));
}
"#;
    let registry = r#"
const fn key(component: &'static str, name: &'static str, doc: &'static str) -> KeyDecl {
    KeyDecl { component, name, doc }
}
pub const KEYS: &[KeyDecl] = &[
    key("cpu", "crashes", "crash count"),
    key("cpu", "crashes", "registered twice"),
    key("cpu", "stale_key", "never emitted"),
];
"#;
    let result = scan_strs(&[
        ("crates/cpu/src/fixture.rs", emitter),
        ("crates/telemetry/src/keys.rs", registry),
    ]);
    let findings = result.findings;
    assert_eq!(rules_hit(&findings), ["telemetry-key-registry"]);
    assert_eq!(findings.len(), 3, "{findings:?}");
    assert!(findings
        .iter()
        .any(|f| f.message.contains("`cpu/typo_key`") && f.message.contains("not declared")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("`cpu/crashes`") && f.message.contains("more than once")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("`cpu/stale_key`") && f.message.contains("never emitted")));
}

#[test]
fn telemetry_span_registry_checks_both_directions() {
    let emitter = r#"
pub fn instrument(tracer: &Tracer) {
    let _g = tracer.span("characterize/point");
    tracer.record_span("typo/span", 0);
    let label = dynamic_label();
    tracer.record_span(label, 1);
}
"#;
    let registry = r#"
const fn span(label: &'static str, doc: &'static str) -> SpanDecl {
    SpanDecl { label, doc }
}
pub const REGISTERED_SPANS: &[SpanDecl] = &[
    span("characterize/point", "one grid point"),
    span("characterize/point", "registered twice"),
    span("stale/span", "never emitted"),
];
"#;
    let result = scan_strs(&[
        ("crates/core/src/fixture.rs", emitter),
        ("crates/telemetry/src/keys.rs", registry),
    ]);
    let findings = result.findings;
    assert_eq!(rules_hit(&findings), ["telemetry-key-registry"]);
    // The computed-label relay contributes nothing; the typo'd label,
    // the duplicate entry and the stale entry are each one finding.
    assert_eq!(findings.len(), 3, "{findings:?}");
    assert!(findings
        .iter()
        .any(|f| f.message.contains("`typo/span`") && f.message.contains("not declared")));
    assert!(findings.iter().any(
        |f| f.message.contains("`characterize/point`") && f.message.contains("more than once")
    ));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("`stale/span`") && f.message.contains("never emitted")));
}

#[test]
fn telemetry_rule_reports_missing_registry_for_spans() {
    let findings = scan_str(
        "crates/core/src/fixture.rs",
        "pub fn f(t: &Tracer) {\n    t.record_span(\"poll/iteration\", 0);\n}\n",
    );
    assert_eq!(rules_hit(&findings), ["telemetry-key-registry"]);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("no telemetry key registry"));
    assert!(findings[0].message.contains("`poll/iteration`"));
}

#[test]
fn telemetry_rule_reports_missing_registry() {
    let findings = scan_str(
        "crates/cpu/src/fixture.rs",
        "pub fn record(sink: &Sink) {\n    sink.incr(MetricKey::global(\"cpu\", \"crashes\"));\n}\n",
    );
    assert_eq!(rules_hit(&findings), ["telemetry-key-registry"]);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("no telemetry key registry"));
}

#[test]
fn hot_path_reachability_walks_the_call_graph() {
    let src = r#"
pub fn characterize_sweep(x: f64) -> f64 {
    stage_one(x)
}
fn stage_one(x: f64) -> f64 {
    stage_two(x) + 1.0
}
fn stage_two(x: f64) -> f64 {
    x.powf(3.0)
}
fn unreached(x: f64) -> f64 {
    x.exp()
}
"#;
    let findings = scan_str("crates/circuit/src/fixture.rs", src);
    assert_eq!(rules_hit(&findings), ["hot-path-transcendentals"]);
    // `stage_two` is two calls below the entry point — the per-file
    // body scan cannot see it; `unreached` is not flagged.
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0]
        .message
        .contains("characterize_sweep -> stage_one -> stage_two"));
}

#[test]
fn msr_direct_access_names_the_enclosing_fn() {
    let src = r#"
pub fn drain(machine: &mut Machine) -> u64 {
    machine.cpu().rdmsr(machine.now(), CoreId(0), Msr::PKG_ENERGY_STATUS)
}
"#;
    let findings = scan_str("crates/attacks/src/fixture.rs", src);
    assert_eq!(rules_hit(&findings), ["msr-write-discipline"]);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("in `drain`"));
    // The same call in a blessed layer is the sanctioned wrapper itself.
    let blessed = scan_str("crates/kernel/src/fixture.rs", src);
    assert!(blessed.is_empty(), "{blessed:?}");
}

#[test]
fn msr_seam_flags_substrate_conjuring_outside_blessed_layers() {
    // The HAL-seam half of rule 4: `MsrFile::`/`CpuPackage::` paths in
    // lib code outside hal/msr/kernel/cpu conjure a raw substrate the
    // backend cannot see.
    let src = r#"
pub fn sneaky() -> CpuPackage {
    let _file = MsrFile::new();
    CpuPackage::new(CpuModel::CometLake, 7)
}
"#;
    let findings = scan_str("crates/attacks/src/fixture.rs", src);
    assert_eq!(rules_hit(&findings), ["msr-write-discipline"]);
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings.iter().all(|f| f.message.contains("HAL seam")));
    // The HAL crate is the seam — it is blessed.
    let hal = scan_str("crates/hal/src/fixture.rs", src);
    assert!(hal.is_empty(), "{hal:?}");
    // Benchmarks measure the raw substrate on purpose.
    let bench = scan_str("crates/bench/benches/fixture.rs", src);
    assert!(bench.is_empty(), "{bench:?}");
}

#[test]
fn rules_4_and_8_union_per_file_and_workspace_halves() {
    // One fixture violating both halves of rule 4: the raw-literal
    // heuristic and the call-shaped workspace detection. The merged scan
    // must carry both under the same rule id — the workspace half is a
    // strict superset of the old heuristic, never a replacement.
    let src = r#"
pub fn poke(machine: &mut Machine) {
    let addr = 0x150;
    machine.cpu().wrmsr(CoreId(0), addr, 0);
}
"#;
    let findings = scan_str("crates/attacks/src/fixture.rs", src);
    let msr: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == "msr-write-discipline")
        .collect();
    assert_eq!(msr.len(), 2, "{findings:?}");
    assert!(msr.iter().any(|f| f.message.contains("raw MSR literal")));
    assert!(msr
        .iter()
        .any(|f| f.message.contains("direct package MSR access")));
}

#[test]
fn reachability_respects_the_slack_boundary() {
    // The boundary module itself is reachable, but traversal does not
    // expand through it: a transcendental *behind* slack.rs is the
    // sanctioned table build.
    let entry = "pub fn characterize_grid() {\n    build_table();\n}\n";
    let slack = "pub fn build_table() {\n    analytic();\n}\nfn analytic() {\n    let _ = (2.0_f64).powf(3.0);\n}\n";
    let result = scan_strs(&[
        ("crates/cpu/src/fixture.rs", entry),
        ("crates/cpu/src/slack.rs", slack),
    ]);
    assert!(result.findings.is_empty(), "{:?}", result.findings);

    // Structural check on the same mini-workspace via the public API.
    let files = vec![
        SourceFile::new("crates/cpu/src/fixture.rs", entry),
        SourceFile::new("crates/cpu/src/slack.rs", slack),
    ];
    let ws = Workspace::build(files);
    let entries: Vec<_> = ws
        .index
        .fns
        .iter()
        .filter(|s| s.name.starts_with("characterize"))
        .map(|s| s.id)
        .collect();
    let boundaries = ws
        .index
        .fns
        .iter()
        .filter(|s| s.path == "crates/cpu/src/slack.rs")
        .map(|s| s.id)
        .collect();
    let reachable = ws.graph.reachable_from(&entries, &boundaries);
    let names: Vec<&str> = reachable
        .iter()
        .map(|id| ws.index.symbol(*id).name.as_str())
        .collect();
    assert!(names.contains(&"characterize_grid"));
    assert!(names.contains(&"build_table"), "boundary fn is reachable");
    assert!(
        !names.contains(&"analytic"),
        "traversal must not expand through the boundary: {names:?}"
    );
}
