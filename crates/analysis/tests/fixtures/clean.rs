//! Fixture: deterministic code that must produce zero findings even in
//! the strictest scope (a sim crate's result module). Mentions of banned
//! names in comments or strings — Instant, thread_rng, HashMap, 0x150 —
//! must be masked out.

use std::collections::BTreeMap;

/// Not a violation: "0x150" and "Instant::now()" only appear in text.
pub fn summarize(samples: &BTreeMap<u32, f64>) -> f64 {
    let banner = "HashMap is banned here; so is thread_rng";
    let _ = banner;
    samples.values().sum::<f64>()
}
