//! Fixture: hash-ordered containers in a result-producing module.
//! Iteration order would vary run-to-run, perturbing serialized output.

use std::collections::{HashMap, HashSet};

pub fn tally(xs: &[u32]) -> HashMap<u32, u32> {
    let mut seen = HashSet::new();
    let mut out = HashMap::new();
    for &x in xs {
        if seen.insert(x) {
            out.insert(x, 1);
        }
    }
    out
}
