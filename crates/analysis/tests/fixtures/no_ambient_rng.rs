//! Fixture: ambient (OS-seeded) randomness. Every draw here would make
//! a simulation run irreproducible.

use rand::thread_rng;

pub fn roll() -> u64 {
    let mut rng = thread_rng();
    rng.gen()
}

pub fn reseed() -> u64 {
    let rng = rand::rngs::OsRng;
    let _ = rng;
    0
}
