//! Fixture: suppression comments that earn their keep vs. ones that rot.

use std::time::Instant; // plugvolt-lint: allow(no-wall-clock)

pub fn stamp() -> u64 {
    // plugvolt-lint: allow(no-wall-clock)
    let _ = Instant::now();
    0
}

pub fn clean() -> u64 {
    // plugvolt-lint: allow(no-wall-clock)
    42
}

// plugvolt-lint: allow(not-a-real-rule)
pub fn also_clean() -> u64 {
    7
}
