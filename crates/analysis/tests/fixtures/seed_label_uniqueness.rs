//! Fixture: duplicate seed-derivation labels across call sites.

pub fn build_attack(root: u64) -> (u64, u64) {
    let a = derive_seed(root, "attack-stream");
    let b = derive_seed(root, "attack-stream");
    (a, b)
}

pub fn build_noise(root: u64) -> u64 {
    derive_seed(root, "noise-stream")
}

pub fn build_computed(root: u64, core: usize) -> u64 {
    let label = label_for(core);
    derive_seed(root, &label)
}

fn label_for(core: usize) -> String {
    let mut s = String::new();
    s.push_str("core-");
    s.push((b'0' + core as u8) as char);
    s
}

fn derive_seed(root: u64, label: &str) -> u64 {
    root ^ label.len() as u64
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_labels_are_exempt() {
        let _ = super::derive_seed(1, "attack-stream");
    }
}
