//! Fixture: order-dependent merges inside `thread::scope` workers, next
//! to the sanctioned index-addressed-slot pattern.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub fn bad_merge(items: &[u64]) -> Vec<u64> {
    let results = Mutex::new(Vec::new());
    let counter = AtomicUsize::new(0);
    let mut grand_total = 0u64;
    std::thread::scope(|s| {
        for &item in items {
            s.spawn(|| {
                let r = item * 2;
                if let Ok(mut guard) = results.lock() { guard.push(r); }
                counter.fetch_add(1, Ordering::SeqCst);
                accumulate(&mut grand_total, r);
            });
        }
    });
    results.into_inner().unwrap_or_default()
}

pub fn good_merge(items: &[u64]) -> Vec<u64> {
    let slots: Vec<Mutex<Option<u64>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= slots.len() {
                    break;
                }
                if let Ok(mut slot) = slots[i].lock() {
                    *slot = Some(compute(i));
                }
            });
        }
    });
    slots
        .into_iter()
        .filter_map(|m| m.into_inner().ok().flatten())
        .collect()
}

fn accumulate(total: &mut u64, r: u64) {
    *total += r;
}

fn compute(i: usize) -> u64 {
    i as u64
}
