//! Fixture: float reduction over a hash-ordered container. Float
//! addition is not associative, so the total depends on iteration order.

use std::collections::HashMap;

pub fn total(by_core: &HashMap<u32, f64>) -> f64 {
    let energies: HashMap<u32, f64> = by_core.clone();
    energies.values().sum::<f64>()
}

pub fn folded(by_core: &HashMap<u32, f64>) -> f64 {
    let watts: HashMap<u32, f64> = by_core.clone();
    watts.values().fold(0.0, |acc, w| acc + w)
}
