//! Fixture: panicking shortcuts in library code.

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn second(xs: &[u32]) -> u32 {
    *xs.get(1).expect("")
}

pub fn boom() {
    panic!("unconditional");
}
