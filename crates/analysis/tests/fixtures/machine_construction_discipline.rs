//! Seeded violations for `machine-construction-discipline`: ad-hoc
//! machine construction outside the Scenario layer.
//!
//! Mentioning Machine::new in a comment is fine — only code is flagged.

use plugvolt_kernel::machine::Machine;

pub fn adhoc_machine() -> Machine {
    Machine::new(CpuModel::CometLake, 42) // flagged: ad-hoc seed policy
}

pub fn adhoc_unit_machine() -> Machine {
    Machine::new_unit(CpuModel::KabyLakeR, 7, 3) // flagged too
}

pub fn unrelated_new() -> Vec<u8> {
    // `new` on other types stays legal, as does naming the type alone.
    let _phantom: Option<Machine> = None;
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_construct_machines_directly() {
        let _m = Machine::new(CpuModel::CometLake, 1);
        let _u = Machine::new_unit(CpuModel::CometLake, 1, 0);
    }
}
