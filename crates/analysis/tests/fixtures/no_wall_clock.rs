//! Fixture: wall-clock usage inside a simulation crate. Scanned by the
//! integration tests under a virtual `crates/kernel/src/` path; never
//! compiled and never scanned as part of the workspace (the runner
//! skips `fixtures/` directories).

use std::time::{Instant, SystemTime};

pub fn tick() -> u128 {
    let started = Instant::now();
    let _ = SystemTime::now();
    started.elapsed().as_nanos()
}
