//! Fixture: the same violations as elsewhere, silenced with suppression
//! comments — one same-line, one line-above, one `allow(all)`.

use std::time::Instant; // plugvolt-lint: allow(no-wall-clock)

pub fn timed() -> u128 {
    // plugvolt-lint: allow(no-wall-clock)
    let t = Instant::now();
    // plugvolt-lint: allow(all)
    let _ = Instant::now();
    t.elapsed().as_nanos()
}
