//! Fixture: raw overclocking-mailbox / perf-status MSR addresses outside
//! `crates/msr`. All register access must flow through the typed `Msr`
//! constants so the clamp of paper Sec. 5 cannot be bypassed.

pub fn poke() -> u64 {
    let mailbox = 0x150;
    let status = 0x198u32;
    mailbox + u64::from(status)
}
