//! The machine: a CPU package under a minimal kernel.
//!
//! [`Machine`] owns the simulated clock, a [`MachineBackend`] carrying
//! the [`CpuPackage`], and a set of loadable [`KernelModule`]s with
//! kernel-timer semantics — the substrate the paper's countermeasure is
//! deployed on. Modules steal core time when their timers run (the
//! source of the Table 2 overhead), and all MSR traffic they issue is
//! cost-accounted (IPI to the target core plus the `rdmsr`/`wrmsr`
//! microcode flow; the paper's Sec. 5 names this ioctl/MSR path as one
//! contributor to countermeasure turnaround time).
//!
//! All software MSR/DVFS traffic — module context, `msr-dev`, cpufreq —
//! flows through the backend seam ([`Machine::rdmsr`],
//! [`Machine::wrmsr`], [`Machine::set_freq`] and the [`ModuleCtx`]
//! accessors), so a recording backend observes exactly the accesses the
//! software stack makes. Direct `cpu_mut()` access remains the
//! "privileged attacker / physical package" escape hatch and is not
//! part of the recorded surface.

use plugvolt_cpu::core::CoreId;
use plugvolt_cpu::exec::InstrClass;
use plugvolt_cpu::freq::FreqMhz;
use plugvolt_cpu::model::CpuModel;
use plugvolt_cpu::package::{CpuPackage, PackageError};
use plugvolt_des::rng::SimRng;
use plugvolt_des::time::{SimDuration, SimTime};
use plugvolt_des::trace::{TraceBuffer, TraceLevel};
use plugvolt_hal::backend::{MachineBackend, MsrBackend};
use plugvolt_hal::sim::SimBackend;
use plugvolt_msr::addr::Msr;
use plugvolt_msr::file::WriteOutcome;
use plugvolt_telemetry::{HistogramSpec, MetricKey, Sink, Tracer};
use std::collections::BinaryHeap;
use std::fmt;

/// Cross-core IPI cost for a remote MSR access from kernel context.
pub const IPI_COST: SimDuration = SimDuration::from_nanos(1_900);

/// Errors from machine-level operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// Underlying package error.
    Package(PackageError),
    /// A module with this name is already loaded.
    ModuleLoaded(String),
    /// No module with this name is loaded.
    ModuleNotLoaded(String),
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::Package(e) => write!(f, "{e}"),
            MachineError::ModuleLoaded(n) => write!(f, "module '{n}' already loaded"),
            MachineError::ModuleNotLoaded(n) => write!(f, "module '{n}' not loaded"),
        }
    }
}

impl std::error::Error for MachineError {}

impl From<PackageError> for MachineError {
    fn from(e: PackageError) -> Self {
        MachineError::Package(e)
    }
}

/// Context handed to a module while its timer runs.
///
/// All MSR accesses through the context are **cost-accounted**: they
/// consume time on the accessed core (IPI + microcode flow), which is
/// how the polling countermeasure's overhead arises.
pub struct ModuleCtx<'a> {
    now: SimTime,
    backend: &'a mut dyn MachineBackend,
    trace: &'a mut TraceBuffer,
    stolen: &'a mut [SimDuration],
    module_name: &'a str,
}

impl fmt::Debug for ModuleCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModuleCtx")
            .field("now", &self.now)
            .field("module", &self.module_name)
            .finish()
    }
}

impl ModuleCtx<'_> {
    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Immutable access to the package (frequency tables, specs…).
    #[must_use]
    pub fn cpu(&self) -> &CpuPackage {
        self.backend.cpu()
    }

    /// Cost-accounted `rdmsr` on `core`.
    ///
    /// # Errors
    ///
    /// Propagates [`PackageError`].
    pub fn rdmsr(&mut self, core: CoreId, msr: Msr) -> Result<u64, PackageError> {
        let cost = self.access_cost(core);
        self.note_access_cost(core, cost);
        self.charge(core, cost);
        self.record_span("msr/access", cost);
        self.backend
            .rdmsr(self.now, core, msr)
            .map_err(PackageError::from)
    }

    /// Cost-accounted `wrmsr` on `core`.
    ///
    /// # Errors
    ///
    /// Propagates [`PackageError`].
    pub fn wrmsr(
        &mut self,
        core: CoreId,
        msr: Msr,
        value: u64,
    ) -> Result<WriteOutcome, PackageError> {
        let cost = self.access_cost(core);
        self.note_access_cost(core, cost);
        self.charge(core, cost);
        self.record_span("msr/access", cost);
        self.backend
            .wrmsr(self.now, core, msr, value)
            .map_err(PackageError::from)
    }

    /// Cost-accounted `rdmsr` from a **per-CPU timer context** on `core`
    /// itself: no IPI, only the microcode flow (plus the timer-interrupt
    /// overhead charged separately by the module).
    ///
    /// # Errors
    ///
    /// Propagates [`PackageError`].
    pub fn rdmsr_local(&mut self, core: CoreId, msr: Msr) -> Result<u64, PackageError> {
        let cost = self.local_access_cost(core);
        self.note_access_cost(core, cost);
        self.charge(core, cost);
        self.record_span("msr/access", cost);
        self.backend
            .rdmsr(self.now, core, msr)
            .map_err(PackageError::from)
    }

    /// Cost-accounted `wrmsr` from a per-CPU timer context on `core`.
    ///
    /// # Errors
    ///
    /// Propagates [`PackageError`].
    pub fn wrmsr_local(
        &mut self,
        core: CoreId,
        msr: Msr,
        value: u64,
    ) -> Result<WriteOutcome, PackageError> {
        let cost = self.local_access_cost(core);
        self.note_access_cost(core, cost);
        self.charge(core, cost);
        self.record_span("msr/access", cost);
        self.backend
            .wrmsr(self.now, core, msr, value)
            .map_err(PackageError::from)
    }

    fn local_access_cost(&self, core: CoreId) -> SimDuration {
        let cpu = self.backend.cpu();
        let freq = cpu.core_freq(core).unwrap_or(cpu.spec().base_freq);
        cpu.engine().msr_access_duration(freq)
    }

    /// Accounts the modelled cost of one kernel-context MSR access in
    /// the telemetry registry (the time itself is charged separately).
    fn note_access_cost(&self, core: CoreId, cost: SimDuration) {
        self.backend
            .cpu()
            .note_kernel_msr_cost(core, cost.as_picos());
    }

    /// Charges pure compute time (comparisons, set lookups) to a core.
    pub fn charge(&mut self, core: CoreId, cost: SimDuration) {
        if let Some(slot) = self.stolen.get_mut(core.0) {
            *slot += cost;
            self.backend.cpu().note_stolen(core, cost.as_picos());
        }
    }

    /// The span tracer shared with the machine's telemetry sink, for
    /// modules opening their own spans (e.g. the poll loop).
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        self.backend.cpu().telemetry().tracer()
    }

    /// Point-records `cost` of simulated time under span `label`
    /// (see `Tracer::record_span`); free when tracing is disabled.
    fn record_span(&self, label: &'static str, cost: SimDuration) {
        self.backend
            .cpu()
            .telemetry()
            .tracer()
            .record_span(label, cost.as_picos());
    }

    /// Emits a trace record attributed to this module.
    pub fn trace(&mut self, level: TraceLevel, message: impl Into<String>) {
        self.trace.emit(self.now, level, self.module_name, message);
    }

    fn access_cost(&self, core: CoreId) -> SimDuration {
        let cpu = self.backend.cpu();
        let freq = cpu.core_freq(core).unwrap_or(cpu.spec().base_freq);
        IPI_COST + cpu.engine().msr_access_duration(freq)
    }
}

/// A loadable kernel module with timer-driven work.
pub trait KernelModule {
    /// Unique module name (what `lsmod` would show).
    fn name(&self) -> &str;

    /// Called at load; returns the delay until the first timer firing, or
    /// `None` for a module with no timer.
    fn init(&mut self, ctx: &mut ModuleCtx<'_>) -> Option<SimDuration>;

    /// Called when the timer fires; returns the delay until the next
    /// firing, or `None` to stop the timer.
    fn on_timer(&mut self, ctx: &mut ModuleCtx<'_>) -> Option<SimDuration>;

    /// Called at unload.
    fn exit(&mut self, ctx: &mut ModuleCtx<'_>) {
        let _ = ctx;
    }
}

struct PendingTimer {
    at: SimTime,
    seq: u64,
    module_idx: usize,
}

impl PartialEq for PendingTimer {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for PendingTimer {}
impl PartialOrd for PendingTimer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingTimer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

struct ModuleSlot {
    module: Option<Box<dyn KernelModule>>,
    name: String,
    live: bool,
}

/// Result of running a workload batch on a core (see
/// [`Machine::run_workload`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadRun {
    /// Instructions retired.
    pub instructions: u64,
    /// Architecturally incorrect results among them.
    pub faults: u64,
    /// Wall-clock time consumed, including time stolen by modules.
    pub wall: SimDuration,
    /// Time stolen from this core by kernel modules during the run.
    pub stolen: SimDuration,
}

/// A CPU package under a minimal kernel, on a simulated clock.
///
/// # Examples
///
/// ```
/// use plugvolt_kernel::machine::Machine;
/// use plugvolt_cpu::model::CpuModel;
/// use plugvolt_des::time::SimDuration;
///
/// let mut m = Machine::new(CpuModel::CometLake, 1);
/// m.advance(SimDuration::from_millis(5));
/// assert_eq!(m.now().as_picos(), 5_000_000_000);
/// ```
pub struct Machine {
    now: SimTime,
    backend: Box<dyn MachineBackend>,
    modules: Vec<ModuleSlot>,
    timers: BinaryHeap<PendingTimer>,
    timer_seq: u64,
    trace: TraceBuffer,
    stolen: Vec<SimDuration>,
    rng: SimRng,
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("now", &self.now)
            .field("backend", &self.backend_name())
            .field("cpu", self.backend.cpu())
            .field("modules", &self.loaded_modules().collect::<Vec<_>>())
            .finish()
    }
}

impl Machine {
    /// Boots a machine with the given CPU model and deterministic seed.
    #[must_use]
    pub fn new(model: CpuModel, seed: u64) -> Self {
        Self::from_package(CpuPackage::new(model, seed), seed)
    }

    /// Boots physical *unit* `unit` of the model (die-to-die variation).
    #[must_use]
    pub fn new_unit(model: CpuModel, seed: u64, unit: u64) -> Self {
        Self::from_package(CpuPackage::new_unit(model, seed, unit), seed)
    }

    /// Boots a machine around an explicit package.
    #[must_use]
    pub fn from_package(cpu: CpuPackage, seed: u64) -> Self {
        Self::with_backend(Box::new(SimBackend::from_package(cpu)), seed)
    }

    /// Boots a machine around an arbitrary machine backend (sim,
    /// recording, replay — anything implementing [`MachineBackend`]).
    #[must_use]
    pub fn with_backend(backend: Box<dyn MachineBackend>, seed: u64) -> Self {
        let cores = backend.cpu().core_count();
        Machine {
            now: SimTime::ZERO,
            backend,
            modules: Vec::new(),
            timers: BinaryHeap::new(),
            timer_seq: 0,
            trace: TraceBuffer::with_capacity(16_384),
            stolen: vec![SimDuration::ZERO; cores],
            rng: SimRng::from_seed_label(seed, "machine"),
        }
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Stable name of the mounted backend (`"sim"`, `"record"`,
    /// `"replay"`).
    #[must_use]
    pub fn backend_name(&self) -> &'static str {
        MsrBackend::name(self.backend.as_ref())
    }

    /// The CPU package.
    #[must_use]
    pub fn cpu(&self) -> &CpuPackage {
        self.backend.cpu()
    }

    /// Mutable access to the CPU package — the "privileged software"
    /// escape hatch attacks use (direct `wrmsr` etc. are methods on the
    /// package and need the current time; pair with [`now`](Self::now)).
    /// Package mutations through here bypass the backend seam and are
    /// invisible to a recording backend — exactly like physical
    /// tampering would be.
    pub fn cpu_mut(&mut self) -> &mut CpuPackage {
        self.backend.cpu_mut()
    }

    /// Privileged zero-cost `rdmsr` through the backend seam (root
    /// userspace reading without the kernel's IPI/syscall accounting —
    /// what experiment harness code should use instead of `cpu_mut()`).
    ///
    /// # Errors
    ///
    /// Propagates the package error.
    pub fn rdmsr(&mut self, core: CoreId, msr: Msr) -> Result<u64, MachineError> {
        self.backend
            .rdmsr(self.now, core, msr)
            .map_err(|e| MachineError::Package(e.into()))
    }

    /// Privileged zero-cost `wrmsr` through the backend seam.
    ///
    /// # Errors
    ///
    /// Propagates the package error.
    pub fn wrmsr(
        &mut self,
        core: CoreId,
        msr: Msr,
        value: u64,
    ) -> Result<WriteOutcome, MachineError> {
        self.backend
            .wrmsr(self.now, core, msr, value)
            .map_err(|e| MachineError::Package(e.into()))
    }

    /// Requests a core frequency through the backend's scaling driver
    /// (quantized to the hardware table), returning what was applied.
    ///
    /// # Errors
    ///
    /// Propagates the package error.
    pub fn set_freq(&mut self, core: CoreId, freq: FreqMhz) -> Result<FreqMhz, MachineError> {
        let now = self.now;
        self.backend
            .set_freq(now, core, freq)
            .map_err(|e| MachineError::Package(e.into()))
    }

    /// The machine trace (modules, faults, countermeasure actions).
    #[must_use]
    pub fn trace(&self) -> &TraceBuffer {
        &self.trace
    }

    /// The machine's telemetry sink (shared with the CPU package).
    #[must_use]
    pub fn telemetry(&self) -> &Sink {
        self.backend.cpu().telemetry()
    }

    /// Installs a shared telemetry sink so several machines (e.g. the
    /// fresh instances an experiment boots per measurement) record into
    /// one registry.
    pub fn set_telemetry(&mut self, sink: Sink) {
        self.backend.cpu_mut().set_telemetry(sink);
    }

    /// Folds the trace buffer's silent-drop counter, the slack-table
    /// hit/fallback counters, and the batched per-core hot counters
    /// into the telemetry registry. Call once per machine, after its
    /// run completes (extra calls only add deltas).
    pub fn publish_trace_drops(&self) {
        let cpu = self.backend.cpu();
        cpu.telemetry().tracer().record_span("telemetry/flush", 0);
        let dropped = self.trace.dropped();
        if dropped > 0 {
            cpu.telemetry().add_trace_dropped(dropped);
        }
        cpu.publish_slack_table_stats();
        cpu.publish_hot_counters();
    }

    /// Attaches (or detaches, with `None`) a precomputed slack table on
    /// the CPU's execution engine (see `plugvolt_cpu::slack`).
    pub fn set_slack_table(
        &mut self,
        table: Option<std::sync::Arc<plugvolt_cpu::slack::SlackTable>>,
    ) {
        self.backend.cpu_mut().set_slack_table(table);
    }

    /// Deterministic per-machine random stream (for workload jitter).
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Cumulative module-stolen time per core since boot.
    #[must_use]
    pub fn stolen_time(&self, core: CoreId) -> SimDuration {
        self.stolen
            .get(core.0)
            .copied()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Names of loaded modules (what the SGX attestation report lists).
    pub fn loaded_modules(&self) -> impl Iterator<Item = &str> {
        self.modules
            .iter()
            .filter(|s| s.live)
            .map(|s| s.name.as_str())
    }

    /// Whether the named module is loaded.
    #[must_use]
    pub fn is_module_loaded(&self, name: &str) -> bool {
        self.loaded_modules().any(|n| n == name)
    }

    /// Loads a kernel module (`insmod`), running its `init`.
    ///
    /// # Errors
    ///
    /// [`MachineError::ModuleLoaded`] if a module of that name is live.
    pub fn load_module(&mut self, module: Box<dyn KernelModule>) -> Result<(), MachineError> {
        let name = module.name().to_owned();
        if self.is_module_loaded(&name) {
            return Err(MachineError::ModuleLoaded(name));
        }
        let idx = self.modules.len();
        self.modules.push(ModuleSlot {
            module: Some(module),
            name: name.clone(),
            live: true,
        });
        self.trace.emit(
            self.now,
            TraceLevel::Info,
            "kernel",
            format!("insmod {name}"),
        );
        if let Some(delay) = self.with_module(idx, |m, ctx| m.init(ctx)) {
            self.arm_timer(idx, delay);
        }
        Ok(())
    }

    /// Unloads a module (`rmmod`), running its `exit` and cancelling its
    /// timers. This is the adversary capability discussed in Sec. 4.1 —
    /// visible in the attestation report.
    ///
    /// # Errors
    ///
    /// [`MachineError::ModuleNotLoaded`] if no such module is live.
    pub fn unload_module(&mut self, name: &str) -> Result<(), MachineError> {
        let idx = self
            .modules
            .iter()
            .position(|s| s.live && s.name == name)
            .ok_or_else(|| MachineError::ModuleNotLoaded(name.to_owned()))?;
        self.with_module(idx, |m, ctx| {
            m.exit(ctx);
        });
        self.modules[idx].live = false;
        self.trace.emit(
            self.now,
            TraceLevel::Info,
            "kernel",
            format!("rmmod {name}"),
        );
        Ok(())
    }

    fn arm_timer(&mut self, module_idx: usize, delay: SimDuration) {
        // Queue churn is attributed, not costed: scheduling a kernel
        // timer is free on the sim clock.
        self.backend
            .cpu()
            .telemetry()
            .tracer()
            .record_span("queue/schedule", 0);
        let seq = self.timer_seq;
        self.timer_seq += 1;
        self.timers.push(PendingTimer {
            at: self.now + delay,
            seq,
            module_idx,
        });
    }

    fn with_module<R>(
        &mut self,
        idx: usize,
        f: impl FnOnce(&mut Box<dyn KernelModule>, &mut ModuleCtx<'_>) -> R,
    ) -> R {
        let mut module = self.modules[idx].module.take().expect("module re-entered");
        let mut ctx = ModuleCtx {
            now: self.now,
            backend: self.backend.as_mut(),
            trace: &mut self.trace,
            stolen: &mut self.stolen,
            module_name: &self.modules[idx].name,
        };
        let r = f(&mut module, &mut ctx);
        self.modules[idx].module = Some(module);
        r
    }

    /// Advances the clock to `horizon`, firing due module timers in order.
    pub fn advance_to(&mut self, horizon: SimTime) {
        // `with_module` needs `&mut self`, so hold the tracer by clone
        // (it is an `Rc` handle onto the sink's shared span tree).
        let tracer = self.backend.cpu().telemetry().tracer().clone();
        while let Some(t) = self.timers.peek() {
            if t.at > horizon {
                break;
            }
            let timer = self.timers.pop().expect("peeked timer vanished");
            if !self.modules[timer.module_idx].live {
                continue;
            }
            self.now = timer.at;
            tracer.set_sim_now(self.now);
            let span = tracer.span("kernel/timer");
            let steal_before: SimDuration = self.stolen.iter().copied().sum();
            if let Some(next) = self.with_module(timer.module_idx, |m, ctx| m.on_timer(ctx)) {
                self.arm_timer(timer.module_idx, next);
            }
            drop(span);
            let steal_after: SimDuration = self.stolen.iter().copied().sum();
            let iteration = steal_after.saturating_sub(steal_before);
            self.backend.cpu().telemetry().observe(
                MetricKey::global("kernel", "timer_iteration_us"),
                HistogramSpec::POLL_ITERATION_US,
                iteration.as_picos() as f64 / 1e6,
            );
        }
        if horizon > self.now {
            self.now = horizon;
            tracer.set_sim_now(self.now);
        }
    }

    /// Advances the clock by `span`.
    pub fn advance(&mut self, span: SimDuration) {
        self.advance_to(self.now + span);
    }

    /// Runs `iters` instructions of `class` on `core` starting now,
    /// interleaved with module timers; the core only makes progress when
    /// no module work is stealing it. Returns the retired/fault/steal
    /// accounting — the primitive behind the SPEC-style overhead runs.
    ///
    /// # Errors
    ///
    /// Propagates a package crash.
    pub fn run_workload(
        &mut self,
        core: CoreId,
        class: InstrClass,
        iters: u64,
    ) -> Result<WorkloadRun, MachineError> {
        let started = self.now;
        let stolen_before = self.stolen_time(core);
        let mut remaining = iters;
        let mut faults = 0u64;
        loop {
            let freq = self.backend.cpu().core_freq(core)?;
            // Loop invariant we maintain: now == started + work_time(done)
            // + steal accrued on this core. Catch up first if module work
            // just pushed us behind that line.
            let accrued = self.stolen_time(core).saturating_sub(stolen_before);
            let done = iters - remaining;
            let work_time = self
                .backend
                .cpu()
                .engine()
                .batch_duration(class, done, freq);
            let target = started + work_time + accrued;
            if target > self.now {
                self.advance_to(target);
                continue; // re-evaluate: the catch-up may have fired timers
            }
            if remaining == 0 {
                break;
            }
            let full = self
                .backend
                .cpu()
                .engine()
                .batch_duration(class, remaining, freq);
            let next_timer = self.timers.peek().map(|t| t.at);
            match next_timer {
                Some(t) if t < self.now + full => {
                    // Run the part of the batch that fits before the timer.
                    let slice = t.saturating_duration_since(self.now);
                    let cycles = slice.cycles_at(freq.mhz());
                    let n = ((cycles as f64 / class.cpi()).floor() as u64).min(remaining);
                    if n > 0 {
                        let now = self.now;
                        faults += self.backend.cpu_mut().run_batch(now, core, class, n)?;
                        remaining -= n;
                    }
                    self.advance_to(t); // fires the timer, accrues steal
                }
                _ => {
                    let now = self.now;
                    faults += self
                        .backend
                        .cpu_mut()
                        .run_batch(now, core, class, remaining)?;
                    remaining = 0;
                    self.advance_to(self.now + full);
                }
            }
        }
        let stolen = self.stolen_time(core).saturating_sub(stolen_before);
        Ok(WorkloadRun {
            instructions: iters,
            faults,
            wall: self.now.saturating_duration_since(started),
            stolen,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TickModule {
        period: SimDuration,
        cost: SimDuration,
        ticks: u64,
    }

    impl KernelModule for TickModule {
        fn name(&self) -> &str {
            "tick"
        }
        fn init(&mut self, _ctx: &mut ModuleCtx<'_>) -> Option<SimDuration> {
            Some(self.period)
        }
        fn on_timer(&mut self, ctx: &mut ModuleCtx<'_>) -> Option<SimDuration> {
            self.ticks += 1;
            for c in 0..ctx.cpu().core_count() {
                ctx.charge(CoreId(c), self.cost);
            }
            Some(self.period)
        }
    }

    fn machine() -> Machine {
        Machine::new(CpuModel::CometLake, 5)
    }

    #[test]
    fn advance_moves_clock() {
        let mut m = machine();
        m.advance(SimDuration::from_micros(100));
        assert_eq!(m.now(), SimTime::ZERO + SimDuration::from_micros(100));
    }

    #[test]
    fn module_load_unload_lifecycle() {
        let mut m = machine();
        assert!(!m.is_module_loaded("tick"));
        m.load_module(Box::new(TickModule {
            period: SimDuration::from_millis(1),
            cost: SimDuration::from_micros(2),
            ticks: 0,
        }))
        .unwrap();
        assert!(m.is_module_loaded("tick"));
        // Double-load is rejected.
        let err = m
            .load_module(Box::new(TickModule {
                period: SimDuration::from_millis(1),
                cost: SimDuration::ZERO,
                ticks: 0,
            }))
            .unwrap_err();
        assert_eq!(err, MachineError::ModuleLoaded("tick".into()));
        m.unload_module("tick").unwrap();
        assert!(!m.is_module_loaded("tick"));
        assert_eq!(
            m.unload_module("tick"),
            Err(MachineError::ModuleNotLoaded("tick".into()))
        );
    }

    #[test]
    fn timers_fire_and_steal_time() {
        let mut m = machine();
        m.load_module(Box::new(TickModule {
            period: SimDuration::from_millis(1),
            cost: SimDuration::from_micros(2),
            ticks: 0,
        }))
        .unwrap();
        m.advance(SimDuration::from_millis(10));
        // 10 ticks × 2 µs stolen per core.
        assert_eq!(m.stolen_time(CoreId(0)), SimDuration::from_micros(20));
        assert_eq!(m.stolen_time(CoreId(3)), SimDuration::from_micros(20));
    }

    #[test]
    fn unloaded_module_timers_stop() {
        let mut m = machine();
        m.load_module(Box::new(TickModule {
            period: SimDuration::from_millis(1),
            cost: SimDuration::from_micros(2),
            ticks: 0,
        }))
        .unwrap();
        m.advance(SimDuration::from_millis(3));
        m.unload_module("tick").unwrap();
        let stolen = m.stolen_time(CoreId(0));
        m.advance(SimDuration::from_millis(10));
        assert_eq!(m.stolen_time(CoreId(0)), stolen);
    }

    #[test]
    fn workload_without_modules_runs_at_full_rate() {
        let mut m = machine();
        let run = m
            .run_workload(CoreId(0), InstrClass::Imul, 1_000_000)
            .unwrap();
        assert_eq!(run.instructions, 1_000_000);
        assert_eq!(run.faults, 0);
        assert_eq!(run.stolen, SimDuration::ZERO);
        // 1M imul at CPI 1, 1.8 GHz base → ≈ 555 µs.
        let expect = SimDuration::from_cycles(1_000_000, 1_800);
        let diff = run.wall.saturating_sub(expect) + expect.saturating_sub(run.wall);
        assert!(diff < SimDuration::from_micros(5), "wall={}", run.wall);
    }

    #[test]
    fn workload_with_module_pays_overhead() {
        let mut m = machine();
        m.load_module(Box::new(TickModule {
            period: SimDuration::from_millis(1),
            cost: SimDuration::from_micros(5),
            ticks: 0,
        }))
        .unwrap();
        // A long run: 100M ALU ops ≈ 13.9 ms at 1.8 GHz.
        let run = m
            .run_workload(CoreId(0), InstrClass::AluAdd, 100_000_000)
            .unwrap();
        assert!(run.stolen > SimDuration::ZERO);
        // Overhead ratio ≈ 5 µs/ms = 0.5 %.
        let ratio = run.stolen.as_picos() as f64 / run.wall.as_picos() as f64;
        assert!((0.002..0.008).contains(&ratio), "ratio={ratio}");
        // Wall = compute + stolen, within slice rounding.
        let compute = run.wall.saturating_sub(run.stolen);
        let pure = SimDuration::from_cycles(25_000_000, 1_800);
        let diff = compute.saturating_sub(pure) + pure.saturating_sub(compute);
        assert!(
            diff < SimDuration::from_micros(50),
            "compute={compute} pure={pure}"
        );
    }

    #[test]
    fn trace_records_module_lifecycle() {
        let mut m = machine();
        m.load_module(Box::new(TickModule {
            period: SimDuration::from_millis(1),
            cost: SimDuration::ZERO,
            ticks: 0,
        }))
        .unwrap();
        m.unload_module("tick").unwrap();
        assert!(m.trace().any(|r| r.message == "insmod tick"));
        assert!(m.trace().any(|r| r.message == "rmmod tick"));
    }
}
