//! SGX enclave context and remote attestation (threat-model substrate).
//!
//! The paper's threat model (Sec. 4.1) hinges on what the SGX attestation
//! report *attests*:
//!
//! - Intel's fix for CVE-2019-11157 added the **disabled status of the
//!   overclocking mailbox** to the report — denying DVFS to benign
//!   software whenever an enclave must be trusted;
//! - the paper instead proposes attesting the **load state of the
//!   countermeasure kernel module**, so the OCM can stay enabled.
//!
//! It also models the single/zero-stepping adversary (SGX-Step-style)
//! that defeats trap-deflection defenses but not state polling.

use crate::machine::Machine;
use serde::{Deserialize, Serialize};

/// A signed attestation *quote*: the report plus a MAC under a key only
/// the (simulated) CPU holds. The paper's threat model gives the
/// adversary the OS and BIOS — but not the CPU — so a quote it forges or
/// replays with altered contents fails verification. The MAC here is a
/// keyed sponge over the canonical report encoding (a stand-in for
/// EPID/ECDSA quoting; collision resistance is not the point, key
/// separation from the OS is).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Quote {
    /// The attested report.
    pub report: AttestationReport,
    /// MAC over the canonical report encoding.
    pub mac: u64,
}

/// The CPU-held quoting key (per package, derived from fuses; the
/// simulated fuse value is fixed per machine seed in a real deployment —
/// here a constant suffices since the adversary never learns it).
const QUOTING_KEY: u64 = 0x5EED_F00D_CAFE_D00D;

fn mac_bytes(key: u64, bytes: &[u8]) -> u64 {
    // Keyed SplitMix sponge: absorb 8 bytes at a time.
    let mut state = key ^ 0x9E37_79B9_7F4A_7C15;
    for chunk in bytes.chunks(8) {
        let mut block = [0u8; 8];
        block[..chunk.len()].copy_from_slice(chunk);
        state ^= u64::from_le_bytes(block);
        state = state.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        state ^= state >> 27;
        state = state.wrapping_mul(0x94D0_49BB_1331_11EB);
        state ^= state >> 31;
    }
    state
}

impl Quote {
    /// The CPU quoting operation: only reachable through the package
    /// (the OS cannot invoke it with arbitrary report contents).
    #[must_use]
    pub fn issue(machine: &Machine) -> Quote {
        let report = AttestationReport::collect(machine);
        let mac = mac_bytes(QUOTING_KEY, &report.canonical_bytes());
        Quote { report, mac }
    }

    /// Remote verification: recompute the MAC over the claimed report.
    #[must_use]
    pub fn verify(&self) -> bool {
        mac_bytes(QUOTING_KEY, &self.report.canonical_bytes()) == self.mac
    }
}

/// What a verifier learns from a (simulated) SGX attestation quote.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttestationReport {
    /// Microcode revision in the CPU SVN.
    pub microcode_revision: u32,
    /// Whether the overclocking mailbox is disabled (Intel's fix \[12\]).
    pub ocm_disabled: bool,
    /// Whether hyper-threading is off (already attested on real parts).
    pub hyperthreading_disabled: bool,
    /// Kernel modules loaded at quote time — carries the paper's
    /// proposed countermeasure-module attestation.
    pub loaded_modules: Vec<String>,
}

impl AttestationReport {
    /// Collects a report from the running machine.
    #[must_use]
    pub fn collect(machine: &Machine) -> Self {
        AttestationReport {
            microcode_revision: machine.cpu().microcode_revision(),
            ocm_disabled: !machine.cpu().ocm_enabled(),
            hyperthreading_disabled: true,
            loaded_modules: machine.loaded_modules().map(str::to_owned).collect(),
        }
    }

    /// The paper's acceptance policy: the verifier requires the polling
    /// countermeasure module to be loaded (and does **not** require the
    /// OCM to be disabled).
    #[must_use]
    pub fn acceptable_to_plugvolt_verifier(&self, module_name: &str) -> bool {
        self.loaded_modules.iter().any(|m| m == module_name)
    }

    /// Intel's CVE-2019-11157 acceptance policy: OCM must be disabled.
    #[must_use]
    pub fn acceptable_to_intel_verifier(&self) -> bool {
        self.ocm_disabled
    }

    /// Canonical byte encoding the quote MAC covers.
    #[must_use]
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.microcode_revision.to_le_bytes());
        out.push(u8::from(self.ocm_disabled));
        out.push(u8::from(self.hyperthreading_disabled));
        for m in &self.loaded_modules {
            out.extend_from_slice(&(m.len() as u32).to_le_bytes());
            out.extend_from_slice(m.as_bytes());
        }
        out
    }
}

/// How precisely the adversary can interrupt enclave execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SteppingCapability {
    /// No fine-grained control (the weaker model prior defenses assume).
    None,
    /// APIC-timer single-stepping (SGX-Step \[27\]): isolate one
    /// instruction per resume.
    SingleStep,
    /// Zero-stepping \[17\]: replay without forward progress, giving the
    /// adversary unbounded time between fault injection and any
    /// in-enclave detection (trap) running.
    ZeroStep,
}

impl SteppingCapability {
    /// Whether this adversary can isolate the faulted instruction from a
    /// subsequently executed in-enclave *trap* check — i.e. whether a
    /// Minefield-style deflection defense can be raced.
    #[must_use]
    pub fn defeats_trap_deflection(self) -> bool {
        !matches!(self, SteppingCapability::None)
    }
}

/// A victim enclave running a sensitive computation.
///
/// The enclave body is opaque to the OS; what the adversary controls is
/// *when* it runs (stepping) and the physical conditions (DVFS). The
/// generic parameter is the sensitive computation's state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Enclave {
    name: String,
    /// Instructions retired inside the enclave so far.
    steps_retired: u64,
    /// Whether an in-enclave trap (deflection defense) has fired.
    trap_fired: bool,
}

impl Enclave {
    /// Creates an enclave.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Enclave {
            name: name.into(),
            steps_retired: 0,
            trap_fired: false,
        }
    }

    /// The enclave's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Instructions retired so far.
    #[must_use]
    pub fn steps_retired(&self) -> u64 {
        self.steps_retired
    }

    /// Retires `n` instructions (normal execution).
    pub fn retire(&mut self, n: u64) {
        self.steps_retired += n;
    }

    /// Whether the deflection trap has fired.
    #[must_use]
    pub fn trap_fired(&self) -> bool {
        self.trap_fired
    }

    /// Fires the deflection trap (a Minefield-style guard detected a
    /// faulted canary). Once fired, the enclave aborts the computation.
    pub fn fire_trap(&mut self) {
        self.trap_fired = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{KernelModule, ModuleCtx};
    use plugvolt_cpu::model::CpuModel;
    use plugvolt_des::time::SimDuration;

    struct Noop;
    impl KernelModule for Noop {
        fn name(&self) -> &str {
            "plugvolt-poll"
        }
        fn init(&mut self, _ctx: &mut ModuleCtx<'_>) -> Option<SimDuration> {
            None
        }
        fn on_timer(&mut self, _ctx: &mut ModuleCtx<'_>) -> Option<SimDuration> {
            None
        }
    }

    #[test]
    fn report_reflects_machine_state() {
        let mut m = Machine::new(CpuModel::SkyLake, 6);
        let r = AttestationReport::collect(&m);
        assert!(!r.ocm_disabled);
        assert_eq!(r.microcode_revision, 0xf0);
        assert!(r.loaded_modules.is_empty());
        m.load_module(Box::new(Noop)).unwrap();
        m.cpu_mut().set_ocm_enabled(false);
        let r = AttestationReport::collect(&m);
        assert!(r.ocm_disabled);
        assert_eq!(r.loaded_modules, vec!["plugvolt-poll".to_owned()]);
    }

    #[test]
    fn verifier_policies_differ() {
        let mut m = Machine::new(CpuModel::SkyLake, 6);
        m.load_module(Box::new(Noop)).unwrap();
        let r = AttestationReport::collect(&m);
        // Paper's verifier: module loaded suffices, OCM may stay enabled.
        assert!(r.acceptable_to_plugvolt_verifier("plugvolt-poll"));
        assert!(!r.acceptable_to_intel_verifier());
        // Unloading the module is attestation-visible (Sec. 4.1).
        m.unload_module("plugvolt-poll").unwrap();
        let r = AttestationReport::collect(&m);
        assert!(!r.acceptable_to_plugvolt_verifier("plugvolt-poll"));
    }

    #[test]
    fn quotes_verify_and_forgeries_fail() {
        let mut m = Machine::new(CpuModel::SkyLake, 6);
        m.load_module(Box::new(Noop)).unwrap();
        let quote = Quote::issue(&m);
        assert!(quote.verify());
        assert!(quote
            .report
            .acceptable_to_plugvolt_verifier("plugvolt-poll"));

        // The OS adversary unloads the module and tries to keep showing
        // the old report — but the honest quote now differs, and editing
        // the report body breaks the MAC.
        m.unload_module("plugvolt-poll").unwrap();
        let honest = Quote::issue(&m);
        assert!(honest.verify());
        assert!(!honest
            .report
            .acceptable_to_plugvolt_verifier("plugvolt-poll"));
        let mut forged = honest.clone();
        forged.report.loaded_modules = vec!["plugvolt-poll".to_owned()];
        assert!(!forged.verify(), "forged module list must not verify");
        let mut tampered = quote;
        tampered.report.ocm_disabled = true;
        assert!(!tampered.verify());
    }

    #[test]
    fn canonical_encoding_is_injective_on_module_lists() {
        // ["ab","c"] must not collide with ["a","bc"].
        let a = AttestationReport {
            microcode_revision: 1,
            ocm_disabled: false,
            hyperthreading_disabled: true,
            loaded_modules: vec!["ab".into(), "c".into()],
        };
        let b = AttestationReport {
            loaded_modules: vec!["a".into(), "bc".into()],
            ..a.clone()
        };
        assert_ne!(a.canonical_bytes(), b.canonical_bytes());
    }

    #[test]
    fn stepping_defeats_deflection() {
        assert!(!SteppingCapability::None.defeats_trap_deflection());
        assert!(SteppingCapability::SingleStep.defeats_trap_deflection());
        assert!(SteppingCapability::ZeroStep.defeats_trap_deflection());
    }

    #[test]
    fn enclave_trap_lifecycle() {
        let mut e = Enclave::new("rsa-signer");
        assert_eq!(e.name(), "rsa-signer");
        e.retire(100);
        assert_eq!(e.steps_retired(), 100);
        assert!(!e.trap_fired());
        e.fire_trap();
        assert!(e.trap_fired());
    }
}
