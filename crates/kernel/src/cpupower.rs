//! The `cpupower` utility façade.
//!
//! The paper's Algorithm 2 sets test frequencies with the `cpupower`
//! Linux utility (`CPU_POWER(test_frequency)`). This module is that
//! command-line surface over [`crate::cpufreq`]: frequency-set,
//! frequency-info, and the all-cores convenience the DVFS thread uses.

use crate::cpufreq::{CpuFreq, Governor};
use crate::machine::{Machine, MachineError};
use plugvolt_cpu::core::CoreId;
use plugvolt_cpu::freq::FreqMhz;
use serde::{Deserialize, Serialize};

/// Output of `cpupower frequency-info`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrequencyInfo {
    /// Hardware limits (table min/max).
    pub hw_min: FreqMhz,
    /// Hardware limits (table min/max).
    pub hw_max: FreqMhz,
    /// Frequency the core currently runs at.
    pub current: FreqMhz,
    /// The governor in charge.
    pub governor: Governor,
}

/// The `cpupower` utility bound to a machine's cpufreq subsystem.
#[derive(Debug)]
pub struct CpuPower {
    cpufreq: CpuFreq,
}

impl CpuPower {
    /// Creates the utility (initializing cpufreq policies).
    #[must_use]
    pub fn new(machine: &Machine) -> Self {
        CpuPower {
            cpufreq: CpuFreq::new(machine),
        }
    }

    /// Shared access to the underlying cpufreq state.
    #[must_use]
    pub fn cpufreq(&self) -> &CpuFreq {
        &self.cpufreq
    }

    /// `cpupower -c <core> frequency-set -f <freq>`: pins one core to a
    /// fixed frequency (userspace governor). Returns the quantized
    /// frequency actually applied.
    ///
    /// # Errors
    ///
    /// Propagates machine errors.
    pub fn frequency_set(
        &mut self,
        machine: &mut Machine,
        core: CoreId,
        freq: FreqMhz,
    ) -> Result<FreqMhz, MachineError> {
        self.cpufreq
            .set_governor(machine, core, Governor::Userspace(freq))
    }

    /// `cpupower frequency-set -f <freq>` without `-c`: all cores.
    ///
    /// # Errors
    ///
    /// Propagates machine errors.
    pub fn frequency_set_all(
        &mut self,
        machine: &mut Machine,
        freq: FreqMhz,
    ) -> Result<FreqMhz, MachineError> {
        let cores = machine.cpu().core_count();
        let mut applied = freq;
        for c in 0..cores {
            applied = self.frequency_set(machine, CoreId(c), freq)?;
        }
        Ok(applied)
    }

    /// `cpupower -c <core> frequency-info`.
    ///
    /// # Errors
    ///
    /// Propagates machine errors.
    pub fn frequency_info(
        &self,
        machine: &Machine,
        core: CoreId,
    ) -> Result<FrequencyInfo, MachineError> {
        let table = &machine.cpu().spec().freq_table;
        Ok(FrequencyInfo {
            hw_min: table.min(),
            hw_max: table.max(),
            current: machine.cpu().core_freq(core)?,
            governor: self.cpufreq.policy(core).governor,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plugvolt_cpu::model::CpuModel;

    #[test]
    fn frequency_set_quantizes_and_applies() {
        let mut m = Machine::new(CpuModel::KabyLakeR, 3);
        let mut cp = CpuPower::new(&m);
        let applied = cp.frequency_set(&mut m, CoreId(0), FreqMhz(2_150)).unwrap();
        assert_eq!(applied, FreqMhz(2_200));
        assert_eq!(m.cpu().core_freq(CoreId(0)).unwrap(), FreqMhz(2_200));
    }

    #[test]
    fn frequency_set_all_reaches_every_core() {
        let mut m = Machine::new(CpuModel::KabyLakeR, 3);
        let mut cp = CpuPower::new(&m);
        cp.frequency_set_all(&mut m, FreqMhz(1_200)).unwrap();
        for c in 0..m.cpu().core_count() {
            assert_eq!(m.cpu().core_freq(CoreId(c)).unwrap(), FreqMhz(1_200));
        }
    }

    #[test]
    fn frequency_info_reports_state() {
        let mut m = Machine::new(CpuModel::KabyLakeR, 3);
        let mut cp = CpuPower::new(&m);
        cp.frequency_set(&mut m, CoreId(2), FreqMhz(3_000)).unwrap();
        let info = cp.frequency_info(&m, CoreId(2)).unwrap();
        assert_eq!(info.current, FreqMhz(3_000));
        assert_eq!(info.hw_min, FreqMhz(400));
        assert_eq!(info.hw_max, FreqMhz(3_400));
        assert_eq!(info.governor, Governor::Userspace(FreqMhz(3_000)));
    }

    #[test]
    fn sweep_resolution_matches_paper() {
        // Algorithm 2 sweeps at 0.1 GHz resolution; the table step is
        // 100 MHz so every sweep point is exactly representable.
        let m = Machine::new(CpuModel::KabyLakeR, 3);
        assert_eq!(m.cpu().spec().freq_table.step_mhz(), 100);
    }
}
