//! A cooperative, time-sliced thread scheduler over the machine.
//!
//! The paper's characterization framework runs a *DVFS thread* and an
//! *EXECUTE thread* concurrently; attack campaigns pair adversary and
//! victim loops. This scheduler expresses such structures directly:
//! threads are spawned per core and executed in rounds — every round,
//! each core's front thread receives one quantum, then the global clock
//! advances by the quantum (firing kernel-module timers). Within a round
//! the threads' machine operations are applied sequentially but
//! represent concurrent execution in the same window, which is exact for
//! the instantaneous state changes (MSR writes, batch retirements) the
//! simulation deals in.

use crate::machine::{Machine, MachineError};
use plugvolt_cpu::core::CoreId;
use plugvolt_des::time::{SimDuration, SimTime};
use std::collections::VecDeque;
use std::fmt;

/// What a thread wants after consuming (part of) its quantum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Yield {
    /// Runnable again next round.
    Ready,
    /// Sleep for at least this long before running again.
    Sleep(SimDuration),
    /// Finished; remove from the scheduler.
    Done,
}

/// A schedulable activity.
pub trait SimThread {
    /// Thread name (for diagnostics).
    fn name(&self) -> &str;

    /// Runs up to one `quantum` of work on `core` at the current machine
    /// time, returning what to do next.
    ///
    /// # Errors
    ///
    /// Machine errors abort the whole schedule (a crashed package is the
    /// caller's to handle).
    fn run(
        &mut self,
        machine: &mut Machine,
        core: CoreId,
        quantum: SimDuration,
    ) -> Result<Yield, MachineError>;
}

struct Task {
    thread: Box<dyn SimThread>,
    wake_at: SimTime,
}

/// The scheduler: per-core round-robin queues on a shared quantum.
pub struct Scheduler {
    quantum: SimDuration,
    queues: Vec<VecDeque<Task>>,
    rounds: u64,
}

impl fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scheduler")
            .field("quantum", &self.quantum)
            .field("rounds", &self.rounds)
            .field(
                "tasks",
                &self.queues.iter().map(VecDeque::len).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Scheduler {
    /// Creates a scheduler for `machine` with the given time quantum.
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero.
    #[must_use]
    pub fn new(machine: &Machine, quantum: SimDuration) -> Self {
        assert!(!quantum.is_zero(), "quantum must be non-zero");
        Scheduler {
            quantum,
            queues: (0..machine.cpu().core_count())
                .map(|_| VecDeque::new())
                .collect(),
            rounds: 0,
        }
    }

    /// Spawns a thread pinned to `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn spawn_on(&mut self, core: CoreId, thread: Box<dyn SimThread>) {
        self.queues[core.0].push_back(Task {
            thread,
            wake_at: SimTime::ZERO,
        });
    }

    /// Number of live threads.
    #[must_use]
    pub fn live_threads(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Rounds executed so far.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Runs rounds until `horizon` or until every thread is done.
    ///
    /// # Errors
    ///
    /// Propagates the first thread error (machine crash etc.); remaining
    /// threads stay queued so the caller can reset and resume.
    pub fn run_until(
        &mut self,
        machine: &mut Machine,
        horizon: SimTime,
    ) -> Result<(), MachineError> {
        while machine.now() < horizon && self.live_threads() > 0 {
            let round_start = machine.now();
            self.rounds += 1;
            for core_idx in 0..self.queues.len() {
                // Rotate to the first runnable (awake) task, if any.
                let queue_len = self.queues[core_idx].len();
                let mut picked = None;
                for _ in 0..queue_len {
                    let task = self.queues[core_idx].pop_front().expect("len checked");
                    if task.wake_at <= round_start {
                        picked = Some(task);
                        break;
                    }
                    self.queues[core_idx].push_back(task);
                }
                let Some(mut task) = picked else { continue };
                match task.thread.run(machine, CoreId(core_idx), self.quantum) {
                    Ok(Yield::Ready) => self.queues[core_idx].push_back(task),
                    Ok(Yield::Sleep(d)) => {
                        task.wake_at = round_start + d;
                        self.queues[core_idx].push_back(task);
                    }
                    Ok(Yield::Done) => {}
                    Err(e) => {
                        self.queues[core_idx].push_back(task);
                        return Err(e);
                    }
                }
            }
            // One quantum per round; module timers fire inside advance.
            machine.advance_to(round_start + self.quantum);
        }
        Ok(())
    }

    /// Runs until all threads finish (no horizon).
    ///
    /// # Errors
    ///
    /// Propagates thread errors.
    pub fn run_to_completion(&mut self, machine: &mut Machine) -> Result<(), MachineError> {
        self.run_until(machine, SimTime::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plugvolt_cpu::exec::InstrClass;
    use plugvolt_cpu::model::CpuModel;

    /// A thread that retires `remaining` instructions of a class.
    struct Worker {
        class: InstrClass,
        remaining: u64,
        faults: u64,
        finished_at: Option<SimTime>,
    }

    impl SimThread for Worker {
        fn name(&self) -> &str {
            "worker"
        }
        fn run(
            &mut self,
            machine: &mut Machine,
            core: CoreId,
            quantum: SimDuration,
        ) -> Result<Yield, MachineError> {
            let freq = machine.cpu().core_freq(core)?;
            let fit = (quantum.cycles_at(freq.mhz()) as f64 / self.class.cpi()) as u64;
            let n = fit.min(self.remaining).max(1);
            let now = machine.now();
            self.faults += machine.cpu_mut().run_batch(now, core, self.class, n)?;
            self.remaining -= n.min(self.remaining);
            if self.remaining == 0 {
                self.finished_at = Some(machine.now());
                Ok(Yield::Done)
            } else {
                Ok(Yield::Ready)
            }
        }
    }

    struct Sleeper {
        naps: u32,
        log: Vec<SimTime>,
    }

    impl SimThread for Sleeper {
        fn name(&self) -> &str {
            "sleeper"
        }
        fn run(
            &mut self,
            machine: &mut Machine,
            _core: CoreId,
            _quantum: SimDuration,
        ) -> Result<Yield, MachineError> {
            self.log.push(machine.now());
            if self.log.len() as u32 > self.naps {
                Ok(Yield::Done)
            } else {
                Ok(Yield::Sleep(SimDuration::from_millis(1)))
            }
        }
    }

    #[test]
    fn parallel_workers_share_wall_clock() {
        // Two equal workers on two cores must finish in ≈ the time one
        // worker needs — that is what per-core parallelism means.
        let mut m = Machine::new(CpuModel::CometLake, 41);
        let mut sched = Scheduler::new(&m, SimDuration::from_micros(100));
        for c in [0, 1] {
            sched.spawn_on(
                CoreId(c),
                Box::new(Worker {
                    class: InstrClass::AluAdd,
                    remaining: 10_000_000,
                    faults: 0,
                    finished_at: None,
                }),
            );
        }
        sched.run_to_completion(&mut m).unwrap();
        // 10M ALU at CPI 0.25 and 1.8 GHz ≈ 1.39 ms.
        let expect = SimDuration::from_cycles(2_500_000, 1_800);
        let wall = m.now().saturating_duration_since(SimTime::ZERO);
        assert!(
            wall < expect * 2,
            "two cores took {wall}, sequential would be {}",
            expect * 2
        );
        assert!(
            wall + SimDuration::from_micros(200) >= expect,
            "wall={wall}"
        );
        assert_eq!(sched.live_threads(), 0);
    }

    #[test]
    fn round_robin_interleaves_same_core_threads() {
        // Two workers on ONE core take twice as long as one.
        let solo = {
            let mut m = Machine::new(CpuModel::CometLake, 41);
            let mut sched = Scheduler::new(&m, SimDuration::from_micros(100));
            sched.spawn_on(
                CoreId(0),
                Box::new(Worker {
                    class: InstrClass::AluAdd,
                    remaining: 5_000_000,
                    faults: 0,
                    finished_at: None,
                }),
            );
            sched.run_to_completion(&mut m).unwrap();
            m.now()
        };
        let duo = {
            let mut m = Machine::new(CpuModel::CometLake, 41);
            let mut sched = Scheduler::new(&m, SimDuration::from_micros(100));
            for _ in 0..2 {
                sched.spawn_on(
                    CoreId(0),
                    Box::new(Worker {
                        class: InstrClass::AluAdd,
                        remaining: 5_000_000,
                        faults: 0,
                        finished_at: None,
                    }),
                );
            }
            sched.run_to_completion(&mut m).unwrap();
            m.now()
        };
        let ratio = duo.as_picos() as f64 / solo.as_picos() as f64;
        assert!((1.8..2.3).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn sleeping_threads_wake_on_time() {
        let mut m = Machine::new(CpuModel::CometLake, 41);
        let mut sched = Scheduler::new(&m, SimDuration::from_micros(100));
        sched.spawn_on(
            CoreId(2),
            Box::new(Sleeper {
                naps: 3,
                log: Vec::new(),
            }),
        );
        sched.run_to_completion(&mut m).unwrap();
        // Four invocations, ≥1 ms apart.
        assert!(m.now() >= SimTime::ZERO + SimDuration::from_millis(3));
        assert_eq!(sched.live_threads(), 0);
        assert!(sched.rounds() > 30);
    }

    #[test]
    fn horizon_stops_an_endless_thread() {
        struct Forever;
        impl SimThread for Forever {
            fn name(&self) -> &str {
                "forever"
            }
            fn run(
                &mut self,
                _machine: &mut Machine,
                _core: CoreId,
                _quantum: SimDuration,
            ) -> Result<Yield, MachineError> {
                Ok(Yield::Ready)
            }
        }
        let mut m = Machine::new(CpuModel::CometLake, 41);
        let mut sched = Scheduler::new(&m, SimDuration::from_micros(50));
        sched.spawn_on(CoreId(0), Box::new(Forever));
        sched
            .run_until(&mut m, SimTime::ZERO + SimDuration::from_millis(1))
            .unwrap();
        assert_eq!(m.now(), SimTime::ZERO + SimDuration::from_millis(1));
        assert_eq!(sched.live_threads(), 1, "thread still queued");
    }

    #[test]
    fn module_timers_fire_between_rounds() {
        use crate::machine::{KernelModule, ModuleCtx};
        struct Ticker {
            ticks: std::rc::Rc<std::cell::Cell<u64>>,
        }
        impl KernelModule for Ticker {
            fn name(&self) -> &str {
                "ticker"
            }
            fn init(&mut self, _ctx: &mut ModuleCtx<'_>) -> Option<SimDuration> {
                Some(SimDuration::from_micros(200))
            }
            fn on_timer(&mut self, _ctx: &mut ModuleCtx<'_>) -> Option<SimDuration> {
                self.ticks.set(self.ticks.get() + 1);
                Some(SimDuration::from_micros(200))
            }
        }
        let ticks = std::rc::Rc::new(std::cell::Cell::new(0));
        let mut m = Machine::new(CpuModel::CometLake, 41);
        m.load_module(Box::new(Ticker {
            ticks: std::rc::Rc::clone(&ticks),
        }))
        .unwrap();
        let mut sched = Scheduler::new(&m, SimDuration::from_micros(100));
        sched.spawn_on(
            CoreId(0),
            Box::new(Worker {
                class: InstrClass::AluAdd,
                remaining: 20_000_000,
                faults: 0,
                finished_at: None,
            }),
        );
        sched.run_to_completion(&mut m).unwrap();
        assert!(ticks.get() > 10, "ticks={}", ticks.get());
    }
}
