//! The cpuidle subsystem: C-state entry/exit with residency accounting.
//!
//! The paper frames DVFS around the P-state/C-state spectrum (Sec. 1):
//! idle cores drop into **C**-states where execution units are power
//! gated. For the countermeasure this matters twice — an idle core
//! cannot retire (and therefore cannot fault) instructions, and the
//! shared rail retreats when demand drops, so idle-aware polling saves
//! both overhead and energy.

use crate::machine::{Machine, MachineError};
use plugvolt_cpu::core::CoreId;
use plugvolt_des::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// C-state levels we model (deeper = more gating, longer wake latency).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CState {
    /// Halt: clock gated, instant wake.
    C1,
    /// Deeper clock/power gating.
    C3,
    /// Core power gated, caches flushed.
    C6,
}

impl CState {
    /// The level byte stored in the core state.
    #[must_use]
    pub fn level(self) -> u8 {
        match self {
            CState::C1 => 1,
            CState::C3 => 3,
            CState::C6 => 6,
        }
    }

    /// Exit latency back to executing.
    #[must_use]
    pub fn wake_latency(self) -> SimDuration {
        match self {
            CState::C1 => SimDuration::from_nanos(500),
            CState::C3 => SimDuration::from_micros(30),
            CState::C6 => SimDuration::from_micros(90),
        }
    }
}

/// Per-core idle bookkeeping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
struct IdleSlot {
    state: Option<CState>,
    entered_at: Option<SimTime>,
    total_residency: SimDuration,
    entries: u64,
}

/// The cpuidle driver for one machine.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuIdle {
    slots: Vec<IdleSlot>,
}

impl CpuIdle {
    /// Creates the driver for a machine's core count.
    #[must_use]
    pub fn new(machine: &Machine) -> Self {
        CpuIdle {
            slots: vec![IdleSlot::default(); machine.cpu().core_count()],
        }
    }

    /// Parks `core` in `state`.
    ///
    /// # Errors
    ///
    /// Propagates machine errors.
    pub fn enter(
        &mut self,
        machine: &mut Machine,
        core: CoreId,
        state: CState,
    ) -> Result<(), MachineError> {
        let now = machine.now();
        machine.cpu_mut().enter_idle(now, core, state.level())?;
        if let Some(slot) = self.slots.get_mut(core.0) {
            slot.state = Some(state);
            slot.entered_at = Some(now);
            slot.entries += 1;
        }
        Ok(())
    }

    /// Wakes `core`, paying the C-state's exit latency on the machine
    /// clock.
    ///
    /// # Errors
    ///
    /// Propagates machine errors.
    pub fn wake(&mut self, machine: &mut Machine, core: CoreId) -> Result<(), MachineError> {
        let latency = self
            .slots
            .get(core.0)
            .and_then(|s| s.state)
            .map_or(SimDuration::ZERO, CState::wake_latency);
        machine.advance(latency);
        let now = machine.now();
        machine.cpu_mut().wake_core(now, core)?;
        if let Some(slot) = self.slots.get_mut(core.0) {
            if let Some(entered) = slot.entered_at.take() {
                slot.total_residency += now.saturating_duration_since(entered);
            }
            slot.state = None;
        }
        Ok(())
    }

    /// Cumulative idle residency of `core`.
    #[must_use]
    pub fn residency(&self, core: CoreId) -> SimDuration {
        self.slots
            .get(core.0)
            .map_or(SimDuration::ZERO, |s| s.total_residency)
    }

    /// Number of idle entries on `core`.
    #[must_use]
    pub fn entries(&self, core: CoreId) -> u64 {
        self.slots.get(core.0).map_or(0, |s| s.entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plugvolt_cpu::model::CpuModel;

    #[test]
    fn enter_and_wake_track_residency() {
        let mut m = Machine::new(CpuModel::KabyLakeR, 13);
        let mut idle = CpuIdle::new(&m);
        idle.enter(&mut m, CoreId(0), CState::C6).unwrap();
        assert!(!m.cpu().is_core_running(CoreId(0)).unwrap());
        m.advance(SimDuration::from_millis(2));
        idle.wake(&mut m, CoreId(0)).unwrap();
        assert!(m.cpu().is_core_running(CoreId(0)).unwrap());
        // Residency = 2 ms sleep + 90 µs exit latency.
        let r = idle.residency(CoreId(0));
        assert!(r >= SimDuration::from_millis(2), "r={r}");
        assert!(r <= SimDuration::from_micros(2_200), "r={r}");
        assert_eq!(idle.entries(CoreId(0)), 1);
    }

    #[test]
    fn wake_latency_ordering() {
        assert!(CState::C1.wake_latency() < CState::C3.wake_latency());
        assert!(CState::C3.wake_latency() < CState::C6.wake_latency());
    }

    #[test]
    fn all_idle_drops_package_power() {
        let mut m = Machine::new(CpuModel::KabyLakeR, 13);
        let mut idle = CpuIdle::new(&m);
        let spec = m.cpu().spec().clone();
        for c in 0..m.cpu().core_count() {
            idle.enter(&mut m, CoreId(c), CState::C6).unwrap();
        }
        m.advance(SimDuration::from_millis(60)); // rail retreats
        let v = m.cpu().core_voltage_mv(m.now());
        let min_nominal = spec.nominal_voltage_mv(spec.freq_table.min());
        assert!((v - min_nominal).abs() < 1.0, "v={v}");
    }
}
