//! # plugvolt-kernel
//!
//! Minimal kernel substrate for the *Plug Your Volt* (DAC 2024)
//! reproduction: everything the paper's software stack needs from an OS,
//! on the simulated CPUs of `plugvolt-cpu`.
//!
//! - [`machine`] — [`machine::Machine`]: clock + package + loadable
//!   [`machine::KernelModule`]s with cost-accounted timers (the module
//!   substrate the countermeasure deploys into, and the source of the
//!   Table 2 overhead);
//! - [`cpufreq`] — scaling governors and the `IA32_PERF_CTL` driver;
//! - [`cpuidle`] — C-state entry/exit with residency accounting;
//! - [`cpupower`] — the `cpupower` utility used by Algorithm 2;
//! - [`msr_dev`] — the userspace `/dev/cpu/*/msr` path with syscall
//!   costs (what attacks pay);
//! - [`sched`] — a cooperative time-sliced thread scheduler (concurrent
//!   victim/adversary/housekeeping activities, like the paper's
//!   two-thread characterization framework);
//! - [`sgx`] — enclaves, stepping adversaries, and attestation reports
//!   carrying the paper's module-load-state proposal.
//!
//! # Examples
//!
//! Boot a machine, pin a core, read back its status MSR:
//!
//! ```
//! use plugvolt_kernel::prelude::*;
//! use plugvolt_cpu::prelude::*;
//! use plugvolt_msr::prelude::*;
//!
//! let mut m = Machine::new(CpuModel::KabyLakeR, 9);
//! let mut cpupower = CpuPower::new(&m);
//! cpupower.frequency_set(&mut m, CoreId(0), FreqMhz(2_000))?;
//! let now = m.now();
//! let raw = m.cpu().rdmsr(now, CoreId(0), Msr::IA32_PERF_STATUS)?;
//! assert_eq!(PerfStatus::decode(raw).freq_mhz(), 2_000);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod cpufreq;
pub mod cpuidle;
pub mod cpupower;
pub mod machine;
pub mod msr_dev;
pub mod sched;
pub mod sgx;

/// Convenient glob-import of the commonly used names.
pub mod prelude {
    pub use crate::cpufreq::{CpuFreq, Governor, Policy};
    pub use crate::cpuidle::{CState, CpuIdle};
    pub use crate::cpupower::{CpuPower, FrequencyInfo};
    pub use crate::machine::{KernelModule, Machine, MachineError, ModuleCtx, WorkloadRun};
    pub use crate::msr_dev::MsrDev;
    pub use crate::sched::{Scheduler, SimThread, Yield};
    pub use crate::sgx::{AttestationReport, Enclave, Quote, SteppingCapability};
}
