//! The `/dev/cpu/<n>/msr` userspace interface (Intel msr-tools path).
//!
//! Attacks in the literature drive MSR 0x150 from userspace through the
//! `msr` character device: each access is an `open`/`ioctl`-style syscall
//! plus the in-kernel `rdmsr`/`wrmsr`. This costs microseconds — one of
//! the two turnaround-time contributors the paper's Sec. 5 lists (the
//! other being VR settle). Kernel modules bypass the syscall layer and
//! pay only the IPI + microcode-flow cost.

use crate::machine::{Machine, MachineError};
use plugvolt_cpu::core::CoreId;
use plugvolt_des::time::SimDuration;
use plugvolt_msr::addr::Msr;
use plugvolt_msr::file::WriteOutcome;

/// Syscall entry/exit plus ioctl dispatch overhead of one msr-dev access.
pub const SYSCALL_COST: SimDuration = SimDuration::from_nanos(1_400);

/// A userspace handle on `/dev/cpu/<core>/msr`.
///
/// All accesses advance the machine clock by the syscall plus MSR flow
/// cost, so an attack's wrmsr lands *later* than the instant it is
/// issued, exactly the latency a real attacker pays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsrDev {
    core: CoreId,
}

impl MsrDev {
    /// Opens the device for `core`.
    ///
    /// # Errors
    ///
    /// [`MachineError`] if the core does not exist.
    pub fn open(machine: &Machine, core: CoreId) -> Result<Self, MachineError> {
        machine.cpu().core_freq(core)?; // existence check
        Ok(MsrDev { core })
    }

    /// The core this device addresses.
    #[must_use]
    pub fn core(&self) -> CoreId {
        self.core
    }

    fn access_cost(&self, machine: &Machine) -> SimDuration {
        let freq = machine
            .cpu()
            .core_freq(self.core)
            .unwrap_or(machine.cpu().spec().base_freq);
        SYSCALL_COST + machine.cpu().engine().msr_access_duration(freq)
    }

    /// Userspace `rdmsr`: pays the syscall + flow cost, then reads.
    ///
    /// # Errors
    ///
    /// Propagates package errors (crash, `#GP`).
    pub fn read(&self, machine: &mut Machine, msr: Msr) -> Result<u64, MachineError> {
        let cost = self.access_cost(machine);
        machine.advance(cost);
        machine.rdmsr(self.core, msr)
    }

    /// Userspace `wrmsr`: pays the syscall + flow cost, then writes.
    ///
    /// # Errors
    ///
    /// Propagates package errors (crash, `#GP`, write faults).
    pub fn write(
        &self,
        machine: &mut Machine,
        msr: Msr,
        value: u64,
    ) -> Result<WriteOutcome, MachineError> {
        let cost = self.access_cost(machine);
        machine.advance(cost);
        machine.wrmsr(self.core, msr, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plugvolt_cpu::model::CpuModel;
    use plugvolt_cpu::package::PackageError;
    use plugvolt_msr::oc_mailbox::{OcRequest, Plane};

    #[test]
    fn open_checks_core() {
        let m = Machine::new(CpuModel::CometLake, 4);
        assert!(MsrDev::open(&m, CoreId(0)).is_ok());
        assert!(matches!(
            MsrDev::open(&m, CoreId(99)),
            Err(MachineError::Package(PackageError::NoSuchCore(_)))
        ));
    }

    #[test]
    fn accesses_advance_time() {
        let mut m = Machine::new(CpuModel::CometLake, 4);
        let dev = MsrDev::open(&m, CoreId(0)).unwrap();
        let t0 = m.now();
        dev.read(&mut m, Msr::IA32_PERF_STATUS).unwrap();
        let t1 = m.now();
        assert!(t1 > t0);
        // Syscall + 250 cycles at 1.8 GHz ≈ 1.4 µs + 139 ns.
        let cost = t1.saturating_duration_since(t0);
        assert!(cost >= SYSCALL_COST, "cost={cost}");
        assert!(cost < SimDuration::from_micros(3), "cost={cost}");
    }

    #[test]
    fn write_reaches_the_mailbox() {
        let mut m = Machine::new(CpuModel::CometLake, 4);
        let dev = MsrDev::open(&m, CoreId(0)).unwrap();
        let raw = OcRequest::write_offset(-125, Plane::Core).encode();
        let out = dev.write(&mut m, Msr::OC_MAILBOX, raw).unwrap();
        assert!(out.was_written());
        assert_eq!(m.cpu().core_offset_mv(), -125);
    }

    #[test]
    fn unknown_msr_propagates_gp() {
        let mut m = Machine::new(CpuModel::CometLake, 4);
        let dev = MsrDev::open(&m, CoreId(0)).unwrap();
        assert!(dev.read(&mut m, Msr(0x7777)).is_err());
    }
}
