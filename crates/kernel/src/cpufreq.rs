//! The cpufreq subsystem: scaling governors and the scaling driver.
//!
//! Linux exposes DVFS to software through per-policy *scaling governors*
//! with a driver that writes `IA32_PERF_CTL`. The paper's point is that
//! benign processes should keep this whole interface (unlike Intel's
//! access-control fix which locks it down while SGX runs); the polling
//! countermeasure leaves cpufreq untouched.

use crate::machine::{Machine, MachineError};
use plugvolt_cpu::core::CoreId;
use plugvolt_cpu::freq::FreqMhz;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The scaling governors we model (the common subset of the Linux set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Governor {
    /// Pin to the policy maximum.
    Performance,
    /// Pin to the policy minimum.
    Powersave,
    /// Userspace-chosen fixed frequency (`scaling_setspeed`).
    Userspace(FreqMhz),
    /// Load-proportional between min and max (simplified ondemand).
    Ondemand {
        /// Current load estimate in percent (0–100).
        load_pct: u8,
    },
}

impl fmt::Display for Governor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Governor::Performance => write!(f, "performance"),
            Governor::Powersave => write!(f, "powersave"),
            Governor::Userspace(freq) => write!(f, "userspace({freq})"),
            Governor::Ondemand { load_pct } => write!(f, "ondemand({load_pct}%)"),
        }
    }
}

/// A per-core frequency policy: governor plus min/max bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Policy {
    /// Active governor.
    pub governor: Governor,
    /// Lower bound (clamped to the hardware table).
    pub min: FreqMhz,
    /// Upper bound (clamped to the hardware table).
    pub max: FreqMhz,
}

impl Policy {
    /// The frequency this policy currently requests.
    #[must_use]
    pub fn requested_freq(&self) -> FreqMhz {
        match self.governor {
            Governor::Performance => self.max,
            Governor::Powersave => self.min,
            Governor::Userspace(f) => FreqMhz(f.0.clamp(self.min.0, self.max.0)),
            Governor::Ondemand { load_pct } => {
                let span = self.max.0 - self.min.0;
                FreqMhz(self.min.0 + span * u32::from(load_pct.min(100)) / 100)
            }
        }
    }
}

/// The cpufreq subsystem state for one machine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuFreq {
    policies: Vec<Policy>,
}

impl CpuFreq {
    /// Creates per-core policies spanning the hardware table, with the
    /// `performance`-like default of running at the base frequency via
    /// `Userspace`.
    #[must_use]
    pub fn new(machine: &Machine) -> Self {
        let spec = machine.cpu().spec();
        let table = &spec.freq_table;
        let policy = Policy {
            governor: Governor::Userspace(spec.base_freq),
            min: table.min(),
            max: table.max(),
        };
        CpuFreq {
            policies: vec![policy; machine.cpu().core_count()],
        }
    }

    /// The policy of `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn policy(&self, core: CoreId) -> &Policy {
        &self.policies[core.0]
    }

    /// Sets `core`'s governor and applies the resulting frequency through
    /// the scaling driver (a `PERF_CTL` write).
    ///
    /// # Errors
    ///
    /// Propagates machine errors (crashed package…).
    pub fn set_governor(
        &mut self,
        machine: &mut Machine,
        core: CoreId,
        governor: Governor,
    ) -> Result<FreqMhz, MachineError> {
        let policy = &mut self.policies[core.0];
        policy.governor = governor;
        let f = policy.requested_freq();
        Self::drive(machine, core, f)
    }

    /// Narrows `core`'s min/max bounds (clamped to the hardware table)
    /// and re-applies the governor.
    ///
    /// # Errors
    ///
    /// Propagates machine errors.
    pub fn set_bounds(
        &mut self,
        machine: &mut Machine,
        core: CoreId,
        min: FreqMhz,
        max: FreqMhz,
    ) -> Result<FreqMhz, MachineError> {
        let table = machine.cpu().spec().freq_table.clone();
        let policy = &mut self.policies[core.0];
        policy.min = table.quantize(min);
        policy.max = table.quantize(max);
        let f = policy.requested_freq();
        Self::drive(machine, core, f)
    }

    /// The scaling driver: the backend's DVFS surface, which quantizes
    /// to the hardware table and writes the ratio request to
    /// `IA32_PERF_CTL` (on the sim family — see
    /// `plugvolt_hal::backend::drive_freq_via_msr`).
    fn drive(machine: &mut Machine, core: CoreId, f: FreqMhz) -> Result<FreqMhz, MachineError> {
        machine.set_freq(core, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plugvolt_cpu::model::CpuModel;

    fn setup() -> (Machine, CpuFreq) {
        let m = Machine::new(CpuModel::SkyLake, 2);
        let cf = CpuFreq::new(&m);
        (m, cf)
    }

    #[test]
    fn default_policy_spans_table() {
        let (m, cf) = setup();
        let p = cf.policy(CoreId(0));
        assert_eq!(p.min, FreqMhz(800));
        assert_eq!(p.max, FreqMhz(3_600));
        assert_eq!(p.requested_freq(), FreqMhz(3_200));
        drop(m);
    }

    #[test]
    fn performance_pins_to_max() {
        let (mut m, mut cf) = setup();
        let f = cf
            .set_governor(&mut m, CoreId(0), Governor::Performance)
            .unwrap();
        assert_eq!(f, FreqMhz(3_600));
        assert_eq!(m.cpu().core_freq(CoreId(0)).unwrap(), FreqMhz(3_600));
    }

    #[test]
    fn powersave_pins_to_min() {
        let (mut m, mut cf) = setup();
        let f = cf
            .set_governor(&mut m, CoreId(1), Governor::Powersave)
            .unwrap();
        assert_eq!(f, FreqMhz(800));
    }

    #[test]
    fn userspace_clamps_to_bounds() {
        let (mut m, mut cf) = setup();
        cf.set_bounds(&mut m, CoreId(0), FreqMhz(1_000), FreqMhz(2_000))
            .unwrap();
        let f = cf
            .set_governor(&mut m, CoreId(0), Governor::Userspace(FreqMhz(3_600)))
            .unwrap();
        assert_eq!(f, FreqMhz(2_000));
    }

    #[test]
    fn ondemand_interpolates() {
        let p = Policy {
            governor: Governor::Ondemand { load_pct: 50 },
            min: FreqMhz(800),
            max: FreqMhz(3_600),
        };
        assert_eq!(p.requested_freq(), FreqMhz(2_200));
        let p0 = Policy {
            governor: Governor::Ondemand { load_pct: 0 },
            ..p
        };
        assert_eq!(p0.requested_freq(), FreqMhz(800));
        let p100 = Policy {
            governor: Governor::Ondemand { load_pct: 100 },
            ..p
        };
        assert_eq!(p100.requested_freq(), FreqMhz(3_600));
    }

    #[test]
    fn governor_display() {
        assert_eq!(Governor::Performance.to_string(), "performance");
        assert_eq!(
            Governor::Userspace(FreqMhz(2_000)).to_string(),
            "userspace(2 GHz)"
        );
    }

    #[test]
    fn bounds_quantize_to_table() {
        let (mut m, mut cf) = setup();
        cf.set_bounds(&mut m, CoreId(0), FreqMhz(1_033), FreqMhz(2_977))
            .unwrap();
        let p = cf.policy(CoreId(0));
        assert_eq!(p.min, FreqMhz(1_000));
        assert_eq!(p.max, FreqMhz(3_000));
    }
}
