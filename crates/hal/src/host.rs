//! Read-only Linux host backend: `/dev/cpu/<n>/msr` + sysfs cpufreq.
//!
//! This backend exists to measure what the countermeasure *costs* on
//! real silicon — per-core MSR poll latency and the derived worst-case
//! detection latency — without ever taking the risks the paper is
//! about. The safety guarantee is structural, not procedural:
//!
//! - every write path ([`MsrBackend::wrmsr`], [`DvfsBackend::set_freq`])
//!   returns the typed [`HalError::ReadOnlyBackend`] error before any
//!   file handle is opened — there is no code path that opens an MSR
//!   device for writing;
//! - the backend does not implement `MachineBackend`, so it can never
//!   be mounted in a simulated `Machine` and driven by an attack
//!   schedule;
//! - the crate forbids `unsafe`, so the only host access is through
//!   `std::fs` reads.
//!
//! Reading MSRs still requires root (or `CAP_SYS_RAWIO`) and the `msr`
//! kernel module; [`probe_poll_overhead`] degrades gracefully per core
//! when a device node is missing or unreadable, so CI can build and
//! even run it unprivileged.

use crate::backend::{DvfsBackend, MsrBackend};
use crate::error::HalError;
use plugvolt_cpu::core::CoreId;
use plugvolt_cpu::freq::FreqMhz;
use plugvolt_des::time::SimTime;
use plugvolt_msr::addr::Msr;
use plugvolt_msr::file::WriteOutcome;
use std::fs;
use std::io::{Read, Seek, SeekFrom};
use std::time::Instant;

/// Stable name of this backend in errors and reports.
pub const HOST_BACKEND_NAME: &str = "host-ro";

fn io_err(path: &str, e: &std::io::Error) -> HalError {
    HalError::Io {
        path: path.to_string(),
        detail: e.to_string(),
    }
}

/// Counts logical CPUs from `/sys/devices/system/cpu/cpu<N>` entries.
/// Falls back to 1 when sysfs is unreadable (containers, exotic mounts).
#[must_use]
pub fn detect_core_count() -> usize {
    let Ok(entries) = fs::read_dir("/sys/devices/system/cpu") else {
        return 1;
    };
    let n = entries
        .flatten()
        .filter(|e| {
            let name = e.file_name();
            let Some(s) = name.to_str() else { return false };
            s.strip_prefix("cpu")
                .is_some_and(|rest| !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()))
        })
        .count();
    n.max(1)
}

fn read_host_msr(core: CoreId, msr: Msr) -> Result<u64, HalError> {
    let path = format!("/dev/cpu/{}/msr", core.0);
    let mut f = fs::File::open(&path).map_err(|e| io_err(&path, &e))?;
    f.seek(SeekFrom::Start(u64::from(msr.0)))
        .map_err(|e| io_err(&path, &e))?;
    let mut buf = [0u8; 8];
    f.read_exact(&mut buf).map_err(|e| io_err(&path, &e))?;
    Ok(u64::from_le_bytes(buf))
}

fn read_cur_freq_khz(core: CoreId) -> Result<u64, HalError> {
    let path = format!(
        "/sys/devices/system/cpu/cpu{}/cpufreq/scaling_cur_freq",
        core.0
    );
    let text = fs::read_to_string(&path).map_err(|e| io_err(&path, &e))?;
    text.trim().parse::<u64>().map_err(|e| HalError::Io {
        path,
        detail: format!("unparseable kHz value: {e}"),
    })
}

/// The read-only host backend. Reads go to the real register file and
/// sysfs; writes are refused with a typed error before any I/O.
#[derive(Debug)]
pub struct HostBackend {
    cores: usize,
}

impl HostBackend {
    /// Probes the host topology and builds the backend. Never requires
    /// root — privilege problems surface per access, not at boot.
    #[must_use]
    pub fn probe() -> Self {
        Self {
            cores: detect_core_count(),
        }
    }
}

impl Default for HostBackend {
    fn default() -> Self {
        Self::probe()
    }
}

impl MsrBackend for HostBackend {
    fn name(&self) -> &'static str {
        HOST_BACKEND_NAME
    }

    fn rdmsr(&mut self, _now: SimTime, core: CoreId, msr: Msr) -> Result<u64, HalError> {
        read_host_msr(core, msr)
    }

    fn wrmsr(
        &mut self,
        _now: SimTime,
        _core: CoreId,
        msr: Msr,
        _value: u64,
    ) -> Result<WriteOutcome, HalError> {
        Err(HalError::ReadOnlyBackend {
            backend: HOST_BACKEND_NAME,
            msr,
        })
    }
}

impl DvfsBackend for HostBackend {
    fn core_count(&self) -> usize {
        self.cores
    }

    fn current_freq(&mut self, core: CoreId) -> Result<FreqMhz, HalError> {
        let khz = read_cur_freq_khz(core)?;
        let mhz = u32::try_from(khz / 1000).map_err(|_| HalError::Io {
            path: format!("cpu{}/cpufreq/scaling_cur_freq", core.0),
            detail: format!("frequency {khz} kHz out of range"),
        })?;
        Ok(FreqMhz(mhz))
    }

    fn set_freq(
        &mut self,
        _now: SimTime,
        _core: CoreId,
        _freq: FreqMhz,
    ) -> Result<FreqMhz, HalError> {
        Err(HalError::ReadOnlyBackend {
            backend: HOST_BACKEND_NAME,
            msr: Msr::IA32_PERF_CTL,
        })
    }
}

/// One core's poll-latency sample from [`probe_poll_overhead`].
#[derive(Debug, Clone)]
pub struct CoreProbe {
    /// Logical core index.
    pub core: usize,
    /// Reads that completed.
    pub reads: u32,
    /// Mean latency of one `IA32_PERF_STATUS` read, nanoseconds.
    pub mean_read_ns: f64,
    /// Mean latency of one sysfs `scaling_cur_freq` read, nanoseconds
    /// (`None` when the node is absent).
    pub mean_freq_ns: Option<f64>,
    /// Why MSR reads failed, when they did (missing module, EACCES…).
    pub error: Option<String>,
}

/// Host measurement report: what one polling sweep costs for real.
#[derive(Debug, Clone)]
pub struct HostProbeReport {
    /// Logical cores probed.
    pub cores: usize,
    /// Per-core samples.
    pub samples: Vec<CoreProbe>,
    /// Total cost of one all-core MSR sweep, nanoseconds (sum of the
    /// per-core means over the cores that could be read).
    pub sweep_ns: f64,
    /// Cores whose MSR device could not be read.
    pub unreadable: usize,
}

impl HostProbeReport {
    /// Worst-case detection latency for a polling countermeasure with
    /// the given period: a glitch landing just after a sweep waits one
    /// full period plus the next sweep.
    #[must_use]
    pub fn worst_case_detection_us(&self, period_us: f64) -> f64 {
        period_us + self.sweep_ns / 1000.0
    }

    /// Human-readable summary table.
    #[must_use]
    pub fn render_text(&self, period_us: f64) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "host poll-overhead probe ({} cores, backend {HOST_BACKEND_NAME})\n",
            self.cores
        ));
        out.push_str("core  msr-read-ns  sysfs-freq-ns  status\n");
        for s in &self.samples {
            let freq = s
                .mean_freq_ns
                .map_or_else(|| "-".to_string(), |v| format!("{v:.0}"));
            let status = s.error.as_deref().unwrap_or("ok");
            out.push_str(&format!(
                "{:>4}  {:>11.0}  {:>13}  {}\n",
                s.core, s.mean_read_ns, freq, status
            ));
        }
        out.push_str(&format!(
            "sweep cost: {:.2} us over {} readable cores ({} unreadable)\n",
            self.sweep_ns / 1000.0,
            self.cores - self.unreadable,
            self.unreadable
        ));
        out.push_str(&format!(
            "worst-case detection latency at period {period_us:.0} us: {:.2} us\n",
            self.worst_case_detection_us(period_us)
        ));
        out
    }
}

/// Measures per-core MSR and sysfs-cpufreq read latency with the wall
/// clock. Cores whose MSR device is missing or unreadable are reported
/// with their error instead of aborting the probe, so the sweep always
/// completes (possibly with zero readable cores).
#[must_use]
pub fn probe_poll_overhead(reads_per_core: u32) -> HostProbeReport {
    let cores = detect_core_count();
    let reads_per_core = reads_per_core.max(1);
    let mut samples = Vec::with_capacity(cores);
    let mut sweep_ns = 0.0;
    let mut unreadable = 0;

    for core in 0..cores {
        let id = CoreId(core);
        let mut ok_reads = 0u32;
        let mut err: Option<String> = None;
        let t0 = Instant::now();
        for _ in 0..reads_per_core {
            match read_host_msr(id, Msr::IA32_PERF_STATUS) {
                Ok(_) => ok_reads += 1,
                Err(e) => {
                    err = Some(e.to_string());
                    break;
                }
            }
        }
        let msr_elapsed = t0.elapsed();
        let mean_read_ns = if ok_reads > 0 {
            msr_elapsed.as_nanos() as f64 / f64::from(ok_reads)
        } else {
            0.0
        };

        let mut mean_freq_ns = None;
        let t1 = Instant::now();
        let mut freq_reads = 0u32;
        for _ in 0..reads_per_core {
            if read_cur_freq_khz(id).is_err() {
                break;
            }
            freq_reads += 1;
        }
        if freq_reads > 0 {
            mean_freq_ns = Some(t1.elapsed().as_nanos() as f64 / f64::from(freq_reads));
        }

        if ok_reads > 0 {
            sweep_ns += mean_read_ns;
        } else {
            unreadable += 1;
        }
        samples.push(CoreProbe {
            core,
            reads: ok_reads,
            mean_read_ns,
            mean_freq_ns,
            error: err,
        });
    }

    HostProbeReport {
        cores,
        samples,
        sweep_ns,
        unreadable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_are_refused_with_typed_error() {
        let mut b = HostBackend::probe();
        let w = b.wrmsr(SimTime::ZERO, CoreId(0), Msr::OC_MAILBOX, 0xDEAD);
        assert!(matches!(
            w,
            Err(HalError::ReadOnlyBackend {
                backend: HOST_BACKEND_NAME,
                msr: Msr::OC_MAILBOX,
            })
        ));
        let f = b.set_freq(SimTime::ZERO, CoreId(0), FreqMhz(1000));
        assert!(matches!(f, Err(HalError::ReadOnlyBackend { .. })));
    }

    #[test]
    fn probe_degrades_gracefully_without_root() {
        // Must never panic or error out, whatever the privileges.
        let report = probe_poll_overhead(3);
        assert!(report.cores >= 1);
        assert_eq!(report.samples.len(), report.cores);
        let text = report.render_text(200.0);
        assert!(text.contains("worst-case detection latency"), "{text}");
    }

    #[test]
    fn core_count_is_positive() {
        assert!(detect_core_count() >= 1);
    }
}
