//! # plugvolt-hal
//!
//! The MSR/DVFS hardware abstraction layer of the *Plug Your Volt*
//! reproduction. The countermeasure stack (polling module, deployment
//! levels, `msr-dev`, cpufreq) only ever touches `rdmsr`/`wrmsr` and
//! the cpufreq frequency surface; this crate extracts exactly that
//! surface into two traits so the same stack can run against different
//! substrates:
//!
//! - [`backend::MsrBackend`] — `rdmsr`/`wrmsr` on a core;
//! - [`backend::DvfsBackend`] — the cpufreq scaling-driver surface
//!   (core count, current frequency, frequency request);
//! - [`backend::MachineBackend`] — the union the simulated
//!   `Machine` hosts: both traits plus access to the concrete
//!   [`plugvolt_cpu::package::CpuPackage`] the simulator's physics,
//!   cost model and telemetry live in.
//!
//! Three backends ship:
//!
//! - [`sim::SimBackend`] — the existing simulated stack, bit-identical
//!   to the pre-HAL direct wiring (pure delegation to `CpuPackage`);
//! - [`trace`] — [`trace::RecordingBackend`] wraps the sim backend and
//!   appends every access to a pinned-schema JSONL transcript;
//!   [`trace::ReplayBackend`] re-executes against the sim store while
//!   verifying every access against a recorded transcript, logging
//!   divergences for the differential sim-vs-trace gate;
//! - [`host`] (Linux only) — a **read-only** `/dev/cpu/<n>/msr` +
//!   sysfs-cpufreq backend for measuring real polling overhead. Every
//!   write path returns the typed [`error::HalError::ReadOnlyBackend`]
//!   error; the backend is physically incapable of undervolting the
//!   host.
//!
//! Determinism contract: the sim backend is deterministic and
//! byte-identical to the direct stack; the trace backends preserve that
//! determinism (recording is a pure observer, replay re-executes the
//! sim and only *checks* the tape); the host backend is explicitly
//! non-deterministic and therefore never participates in golden-output
//! or oracle gates — it does not implement
//! [`backend::MachineBackend`] and cannot be mounted in a simulated
//! `Machine`.

#![warn(missing_docs)]

pub mod backend;
pub mod error;
pub mod sim;
pub mod trace;

#[cfg(target_os = "linux")]
pub mod host;

/// Convenient glob-import of the commonly used names.
pub mod prelude {
    pub use crate::backend::{DvfsBackend, MachineBackend, MsrBackend};
    pub use crate::error::HalError;
    pub use crate::sim::SimBackend;
    pub use crate::trace::{
        RecordingBackend, ReplayBackend, ReplayCursor, TraceEvent, TraceHeader, TraceRecorder,
        TRACE_SCHEMA, TRACE_SCHEMA_VERSION,
    };
}
