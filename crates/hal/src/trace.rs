//! Record/replay trace backends and the pinned JSONL transcript schema.
//!
//! A transcript is a JSONL stream: one JSON value per line, each an
//! externally-tagged [`TraceLine`]. The first line is always a
//! [`TraceHeader`] pinning schema name/version, CPU model, root seed
//! and campaign label; `Section` markers then delimit independent runs
//! (e.g. one per deployment level), each followed by its [`TraceEvent`]
//! stream. Schema version bumps are breaking: [`parse_trace`] rejects
//! any transcript whose `schema`/`version` pair it does not speak.
//!
//! [`RecordingBackend`] is a pure observer around [`SimBackend`]: it
//! forwards every access verbatim and appends what happened to the
//! tape, so a recorded run is bit-identical to an unrecorded one.
//! [`ReplayBackend`] re-executes accesses against a fresh sim store
//! (so side effects happen exactly as live) while verifying each
//! access against the tape; mismatches are logged on the
//! [`ReplayCursor`] as [`ReplayDivergence`]s instead of erroring, so a
//! diverging replay still runs to completion and the differential gate
//! can report *all* mismatches.

use crate::backend::{drive_freq_via_msr, DvfsBackend, MachineBackend, MsrBackend};
use crate::error::HalError;
use crate::sim::SimBackend;
use plugvolt_cpu::core::CoreId;
use plugvolt_cpu::freq::FreqMhz;
use plugvolt_cpu::model::CpuModel;
use plugvolt_cpu::package::{CpuPackage, PackageError};
use plugvolt_des::time::SimTime;
use plugvolt_msr::addr::Msr;
use plugvolt_msr::file::{MsrError, WriteOutcome};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::rc::Rc;

/// Name of the transcript schema, pinned in every header line.
pub const TRACE_SCHEMA: &str = "plugvolt-msr-trace";

/// Version of the transcript schema. Bumping this is a breaking change
/// to the on-disk format and must come with a migration note in
/// DESIGN.md §5f.
pub const TRACE_SCHEMA_VERSION: u32 = 1;

/// Direction of a recorded access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceOp {
    /// `rdmsr`.
    Read,
    /// `wrmsr`.
    Write,
}

/// What the package did with the access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceOutcome {
    /// Read: the value returned. Write: the value actually stored
    /// (after interceptors masked/clamped it).
    Value(u64),
    /// The write was accepted but had no effect (disabled mailbox…).
    Ignored,
    /// `#GP` — unknown register for this model.
    GeneralProtection,
    /// The register is locked against writes.
    WriteFault,
    /// The package was crashed when the access arrived.
    Crashed,
    /// The core does not exist.
    NoSuchCore,
}

/// One MSR access, fully decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Monotonic per-transcript sequence number.
    pub seq: u64,
    /// Simulated time of the access, picoseconds.
    pub t_ps: u64,
    /// Logical core index.
    pub core: usize,
    /// Register address.
    pub msr: u32,
    /// Access direction.
    pub op: TraceOp,
    /// The value written (0 for reads).
    pub value: u64,
    /// What happened.
    pub outcome: TraceOutcome,
}

/// First line of every transcript.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceHeader {
    /// Must equal [`TRACE_SCHEMA`].
    pub schema: String,
    /// Must equal [`TRACE_SCHEMA_VERSION`].
    pub version: u32,
    /// CPU model the transcript was recorded against.
    pub model: CpuModel,
    /// Root seed of the recording scenario — a replayer boots the same
    /// deterministic world from this.
    pub root_seed: u64,
    /// Free-form campaign label.
    pub label: String,
}

/// One line of the JSONL stream.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceLine {
    /// Schema header; always the first line.
    Header(TraceHeader),
    /// Start of a named section (one per run/deployment level).
    Section {
        /// Section name, e.g. a deployment-level label.
        name: String,
    },
    /// A recorded access.
    Event(TraceEvent),
}

#[derive(Debug)]
struct RecorderState {
    lines: Vec<TraceLine>,
    seq: u64,
}

/// Cloneable handle onto a growing transcript. All clones append to
/// the same tape; keep one and hand another to a [`RecordingBackend`].
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    state: Rc<RefCell<RecorderState>>,
}

impl TraceRecorder {
    /// Starts a transcript with `header` as its first line.
    #[must_use]
    pub fn new(header: TraceHeader) -> Self {
        Self {
            state: Rc::new(RefCell::new(RecorderState {
                lines: vec![TraceLine::Header(header)],
                seq: 0,
            })),
        }
    }

    /// Opens a new section; subsequent events belong to it.
    pub fn begin_section(&self, name: &str) {
        self.state.borrow_mut().lines.push(TraceLine::Section {
            name: name.to_string(),
        });
    }

    /// Appends an access; the recorder assigns the sequence number.
    fn push_event(&self, mut ev: TraceEvent) {
        let mut st = self.state.borrow_mut();
        ev.seq = st.seq;
        st.seq += 1;
        st.lines.push(TraceLine::Event(ev));
    }

    /// Number of events recorded so far.
    #[must_use]
    pub fn event_count(&self) -> u64 {
        self.state.borrow().seq
    }

    /// Serializes the transcript to JSONL (one line per [`TraceLine`],
    /// trailing newline).
    ///
    /// # Errors
    ///
    /// [`HalError::TraceSchema`] if a line fails to serialize.
    pub fn to_jsonl(&self) -> Result<String, HalError> {
        let st = self.state.borrow();
        let mut out = String::new();
        for line in &st.lines {
            let json = serde_json::to_string(line).map_err(|e| HalError::TraceSchema {
                detail: format!("serialize trace line: {e:?}"),
            })?;
            out.push_str(&json);
            out.push('\n');
        }
        Ok(out)
    }
}

fn outcome_of_read(r: &Result<u64, HalError>) -> TraceOutcome {
    match r {
        Ok(v) => TraceOutcome::Value(*v),
        Err(e) => outcome_of_err(e),
    }
}

fn outcome_of_write(r: &Result<WriteOutcome, HalError>) -> TraceOutcome {
    match r {
        Ok(WriteOutcome::Written { stored }) => TraceOutcome::Value(*stored),
        Ok(WriteOutcome::Ignored) => TraceOutcome::Ignored,
        Err(e) => outcome_of_err(e),
    }
}

fn outcome_of_err(e: &HalError) -> TraceOutcome {
    match e {
        HalError::Package(PackageError::Msr(MsrError::GeneralProtection { .. })) => {
            TraceOutcome::GeneralProtection
        }
        HalError::Package(PackageError::Msr(MsrError::WriteFault { .. })) => {
            TraceOutcome::WriteFault
        }
        HalError::Package(PackageError::NoSuchCore(_)) => TraceOutcome::NoSuchCore,
        // Crashed, plus any future backend-local failure: from the
        // tape's point of view the access simply did not complete.
        _ => TraceOutcome::Crashed,
    }
}

/// A pure observer around [`SimBackend`]: forwards every access and
/// appends it to the shared [`TraceRecorder`] tape.
#[derive(Debug)]
pub struct RecordingBackend {
    inner: SimBackend,
    rec: TraceRecorder,
}

impl RecordingBackend {
    /// Wraps `inner`, appending to `rec`.
    #[must_use]
    pub fn new(inner: SimBackend, rec: TraceRecorder) -> Self {
        Self { inner, rec }
    }

    /// The shared tape handle.
    #[must_use]
    pub fn recorder(&self) -> &TraceRecorder {
        &self.rec
    }
}

impl MsrBackend for RecordingBackend {
    fn name(&self) -> &'static str {
        "record"
    }

    fn rdmsr(&mut self, now: SimTime, core: CoreId, msr: Msr) -> Result<u64, HalError> {
        let r = self.inner.rdmsr(now, core, msr);
        self.rec.push_event(TraceEvent {
            seq: 0,
            t_ps: now.as_picos(),
            core: core.0,
            msr: msr.0,
            op: TraceOp::Read,
            value: 0,
            outcome: outcome_of_read(&r),
        });
        r
    }

    fn wrmsr(
        &mut self,
        now: SimTime,
        core: CoreId,
        msr: Msr,
        value: u64,
    ) -> Result<WriteOutcome, HalError> {
        let r = self.inner.wrmsr(now, core, msr, value);
        self.rec.push_event(TraceEvent {
            seq: 0,
            t_ps: now.as_picos(),
            core: core.0,
            msr: msr.0,
            op: TraceOp::Write,
            value,
            outcome: outcome_of_write(&r),
        });
        r
    }
}

impl DvfsBackend for RecordingBackend {
    fn core_count(&self) -> usize {
        self.inner.core_count()
    }

    fn current_freq(&mut self, core: CoreId) -> Result<FreqMhz, HalError> {
        self.inner.current_freq(core)
    }

    fn set_freq(&mut self, now: SimTime, core: CoreId, freq: FreqMhz) -> Result<FreqMhz, HalError> {
        // Route through our own wrmsr so the PERF_CTL write lands on
        // the tape like any other access.
        drive_freq_via_msr(self, now, core, freq)
    }
}

impl MachineBackend for RecordingBackend {
    fn cpu(&self) -> &CpuPackage {
        self.inner.cpu()
    }

    fn cpu_mut(&mut self) -> &mut CpuPackage {
        self.inner.cpu_mut()
    }
}

/// One mismatch between a live re-execution and the tape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayDivergence {
    /// Tape sequence number at the mismatch.
    pub seq: u64,
    /// What the tape said happened.
    pub expected: TraceEvent,
    /// What the re-execution actually did.
    pub got: TraceEvent,
}

#[derive(Debug)]
struct ReplayState {
    events: Vec<TraceEvent>,
    pos: usize,
    divergences: Vec<ReplayDivergence>,
    overrun: u64,
}

/// Cloneable verification cursor over one section's tape. Hand one
/// clone to a [`ReplayBackend`] and keep another to inspect the
/// verdict after the run.
#[derive(Debug, Clone)]
pub struct ReplayCursor {
    state: Rc<RefCell<ReplayState>>,
}

impl ReplayCursor {
    /// Builds a cursor over `events` (one section's stream).
    #[must_use]
    pub fn new(events: Vec<TraceEvent>) -> Self {
        Self {
            state: Rc::new(RefCell::new(ReplayState {
                events,
                pos: 0,
                divergences: Vec::new(),
                overrun: 0,
            })),
        }
    }

    fn check(&self, got: TraceEvent) {
        let mut st = self.state.borrow_mut();
        let Some(expected) = st.events.get(st.pos).copied() else {
            st.overrun += 1;
            return;
        };
        st.pos += 1;
        let mut got = got;
        got.seq = expected.seq;
        if got != expected {
            st.divergences.push(ReplayDivergence {
                seq: expected.seq,
                expected,
                got,
            });
        }
    }

    /// Events checked off the tape so far.
    #[must_use]
    pub fn consumed(&self) -> usize {
        self.state.borrow().pos
    }

    /// Tape events not yet reached by the re-execution.
    #[must_use]
    pub fn remaining(&self) -> usize {
        let st = self.state.borrow();
        st.events.len() - st.pos
    }

    /// Accesses the re-execution made beyond the end of the tape.
    #[must_use]
    pub fn overrun(&self) -> u64 {
        self.state.borrow().overrun
    }

    /// All mismatches observed so far.
    #[must_use]
    pub fn divergences(&self) -> Vec<ReplayDivergence> {
        self.state.borrow().divergences.clone()
    }

    /// True iff the tape was consumed exactly: no divergences, no
    /// overrun, nothing left over.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        let st = self.state.borrow();
        st.divergences.is_empty() && st.overrun == 0 && st.pos == st.events.len()
    }
}

/// Re-executes accesses against a fresh sim store while verifying each
/// one against a recorded tape. The sim result is authoritative (side
/// effects happen exactly as live); the tape is the checker.
#[derive(Debug)]
pub struct ReplayBackend {
    inner: SimBackend,
    cursor: ReplayCursor,
}

impl ReplayBackend {
    /// Wraps `inner`, verifying against `cursor`'s tape.
    #[must_use]
    pub fn new(inner: SimBackend, cursor: ReplayCursor) -> Self {
        Self { inner, cursor }
    }

    /// The verification cursor.
    #[must_use]
    pub fn cursor(&self) -> &ReplayCursor {
        &self.cursor
    }
}

impl MsrBackend for ReplayBackend {
    fn name(&self) -> &'static str {
        "replay"
    }

    fn rdmsr(&mut self, now: SimTime, core: CoreId, msr: Msr) -> Result<u64, HalError> {
        let r = self.inner.rdmsr(now, core, msr);
        self.cursor.check(TraceEvent {
            seq: 0,
            t_ps: now.as_picos(),
            core: core.0,
            msr: msr.0,
            op: TraceOp::Read,
            value: 0,
            outcome: outcome_of_read(&r),
        });
        r
    }

    fn wrmsr(
        &mut self,
        now: SimTime,
        core: CoreId,
        msr: Msr,
        value: u64,
    ) -> Result<WriteOutcome, HalError> {
        let r = self.inner.wrmsr(now, core, msr, value);
        self.cursor.check(TraceEvent {
            seq: 0,
            t_ps: now.as_picos(),
            core: core.0,
            msr: msr.0,
            op: TraceOp::Write,
            value,
            outcome: outcome_of_write(&r),
        });
        r
    }
}

impl DvfsBackend for ReplayBackend {
    fn core_count(&self) -> usize {
        self.inner.core_count()
    }

    fn current_freq(&mut self, core: CoreId) -> Result<FreqMhz, HalError> {
        self.inner.current_freq(core)
    }

    fn set_freq(&mut self, now: SimTime, core: CoreId, freq: FreqMhz) -> Result<FreqMhz, HalError> {
        drive_freq_via_msr(self, now, core, freq)
    }
}

impl MachineBackend for ReplayBackend {
    fn cpu(&self) -> &CpuPackage {
        self.inner.cpu()
    }

    fn cpu_mut(&mut self) -> &mut CpuPackage {
        self.inner.cpu_mut()
    }
}

/// Parses a JSONL transcript into its header and per-section event
/// streams (in file order). Events before the first `Section` marker
/// land in an implicit section named `""`.
///
/// # Errors
///
/// [`HalError::TraceSchema`] on a malformed line, a missing header, or
/// a schema name/version this build does not speak.
pub fn parse_trace(jsonl: &str) -> Result<(TraceHeader, Vec<(String, Vec<TraceEvent>)>), HalError> {
    let mut lines = jsonl.lines().filter(|l| !l.trim().is_empty());
    let first = lines.next().ok_or_else(|| HalError::TraceSchema {
        detail: "empty transcript".to_string(),
    })?;
    let header = match parse_line(first)? {
        TraceLine::Header(h) => h,
        other => {
            return Err(HalError::TraceSchema {
                detail: format!("first line must be a header, got {other:?}"),
            })
        }
    };
    if header.schema != TRACE_SCHEMA || header.version != TRACE_SCHEMA_VERSION {
        return Err(HalError::TraceSchema {
            detail: format!(
                "unsupported schema {}@{} (this build speaks {TRACE_SCHEMA}@{TRACE_SCHEMA_VERSION})",
                header.schema, header.version
            ),
        });
    }

    let mut sections: Vec<(String, Vec<TraceEvent>)> = Vec::new();
    for line in lines {
        match parse_line(line)? {
            TraceLine::Header(_) => {
                return Err(HalError::TraceSchema {
                    detail: "duplicate header line".to_string(),
                })
            }
            TraceLine::Section { name } => sections.push((name, Vec::new())),
            TraceLine::Event(ev) => {
                if sections.is_empty() {
                    sections.push((String::new(), Vec::new()));
                }
                if let Some((_, events)) = sections.last_mut() {
                    events.push(ev);
                }
            }
        }
    }
    Ok((header, sections))
}

fn parse_line(line: &str) -> Result<TraceLine, HalError> {
    serde_json::from_str(line).map_err(|e| HalError::TraceSchema {
        detail: format!("malformed trace line {line:?}: {e:?}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> TraceHeader {
        TraceHeader {
            schema: TRACE_SCHEMA.to_string(),
            version: TRACE_SCHEMA_VERSION,
            model: CpuModel::SkyLake,
            root_seed: 0xDAC,
            label: "test".to_string(),
        }
    }

    #[test]
    fn record_then_parse_round_trips() {
        let rec = TraceRecorder::new(header());
        rec.begin_section("warmup");
        let mut b = RecordingBackend::new(SimBackend::new(CpuModel::SkyLake, 1), rec.clone());
        let t = SimTime::ZERO;
        let _ = b.rdmsr(t, CoreId(0), Msr::IA32_PERF_STATUS);
        let _ = b.set_freq(t, CoreId(0), FreqMhz(2700));
        assert_eq!(rec.event_count(), 2);

        let jsonl = rec.to_jsonl().expect("serialize");
        let (h, sections) = parse_trace(&jsonl).expect("parse");
        assert_eq!(h, header());
        assert_eq!(sections.len(), 1);
        assert_eq!(sections[0].0, "warmup");
        assert_eq!(sections[0].1.len(), 2);
        assert_eq!(sections[0].1[0].op, TraceOp::Read);
        assert_eq!(sections[0].1[1].op, TraceOp::Write);
        assert_eq!(sections[0].1[1].msr, Msr::IA32_PERF_CTL.0);
    }

    #[test]
    fn replay_of_identical_run_is_clean() {
        let rec = TraceRecorder::new(header());
        rec.begin_section("run");
        let mut recording =
            RecordingBackend::new(SimBackend::new(CpuModel::SkyLake, 42), rec.clone());
        let t = SimTime::ZERO;
        let _ = recording.rdmsr(t, CoreId(1), Msr::IA32_PERF_STATUS);
        let _ = recording.wrmsr(t, CoreId(0), Msr::IA32_PERF_CTL, 0x1d00);

        let jsonl = rec.to_jsonl().expect("serialize");
        let (_, sections) = parse_trace(&jsonl).expect("parse");
        let cursor = ReplayCursor::new(sections[0].1.clone());
        let mut replay = ReplayBackend::new(SimBackend::new(CpuModel::SkyLake, 42), cursor.clone());
        let _ = replay.rdmsr(t, CoreId(1), Msr::IA32_PERF_STATUS);
        let _ = replay.wrmsr(t, CoreId(0), Msr::IA32_PERF_CTL, 0x1d00);

        assert!(cursor.is_clean(), "divergences: {:?}", cursor.divergences());
        assert_eq!(cursor.consumed(), 2);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn replay_flags_divergence_and_overrun() {
        let rec = TraceRecorder::new(header());
        rec.begin_section("run");
        let mut recording =
            RecordingBackend::new(SimBackend::new(CpuModel::SkyLake, 42), rec.clone());
        let t = SimTime::ZERO;
        let _ = recording.wrmsr(t, CoreId(0), Msr::IA32_PERF_CTL, 0x1d00);

        let jsonl = rec.to_jsonl().expect("serialize");
        let (_, sections) = parse_trace(&jsonl).expect("parse");
        let cursor = ReplayCursor::new(sections[0].1.clone());
        let mut replay = ReplayBackend::new(SimBackend::new(CpuModel::SkyLake, 42), cursor.clone());
        // Different value than the tape -> divergence.
        let _ = replay.wrmsr(t, CoreId(0), Msr::IA32_PERF_CTL, 0x1e00);
        // Tape exhausted -> overrun.
        let _ = replay.rdmsr(t, CoreId(0), Msr::IA32_PERF_STATUS);

        assert!(!cursor.is_clean());
        assert_eq!(cursor.divergences().len(), 1);
        assert_eq!(cursor.overrun(), 1);
    }

    #[test]
    fn parse_rejects_wrong_version() {
        let mut h = header();
        h.version = TRACE_SCHEMA_VERSION + 1;
        let line = serde_json::to_string(&TraceLine::Header(h)).expect("serialize");
        let err = parse_trace(&line).expect_err("must reject");
        assert!(matches!(err, HalError::TraceSchema { .. }), "{err:?}");
    }

    #[test]
    fn recorded_run_matches_unrecorded_sim() {
        let t = SimTime::ZERO;
        let mut plain = SimBackend::new(CpuModel::SkyLake, 9);
        let rec = TraceRecorder::new(header());
        let mut taped = RecordingBackend::new(SimBackend::new(CpuModel::SkyLake, 9), rec);
        let a = plain.set_freq(t, CoreId(0), FreqMhz(2600));
        let b = taped.set_freq(t, CoreId(0), FreqMhz(2600));
        assert_eq!(a.ok(), b.ok());
        assert_eq!(
            plain.cpu().core_freq(CoreId(0)).expect("freq").mhz(),
            taped.cpu().core_freq(CoreId(0)).expect("freq").mhz()
        );
    }
}
