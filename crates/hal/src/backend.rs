//! The trait seam: the complete MSR/DVFS access surface of the stack.

use crate::error::HalError;
use plugvolt_cpu::core::CoreId;
use plugvolt_cpu::freq::FreqMhz;
use plugvolt_cpu::package::CpuPackage;
use plugvolt_des::time::SimTime;
use plugvolt_msr::addr::Msr;
use plugvolt_msr::file::WriteOutcome;
use plugvolt_msr::perf_status::encode_perf_ctl;

/// The `rdmsr`/`wrmsr` surface.
///
/// `now` is the caller's clock: simulated time for the sim-family
/// backends (side effects such as rail retargeting are time-stamped
/// with it), and ignored by the host backend, whose registers live on
/// the wall clock.
pub trait MsrBackend {
    /// Stable backend identifier (`"sim"`, `"record"`, `"replay"`,
    /// `"host-ro"`); appears in traces, errors and reports.
    fn name(&self) -> &'static str;

    /// Reads `msr` on `core`.
    ///
    /// # Errors
    ///
    /// [`HalError::Package`] on `#GP`/crash (sim family), or
    /// [`HalError::Io`] when the host register file is unreadable.
    fn rdmsr(&mut self, now: SimTime, core: CoreId, msr: Msr) -> Result<u64, HalError>;

    /// Writes `value` to `msr` on `core`.
    ///
    /// # Errors
    ///
    /// [`HalError::Package`] on `#GP`/crash/write-fault (sim family),
    /// or [`HalError::ReadOnlyBackend`] from backends that never write.
    fn wrmsr(
        &mut self,
        now: SimTime,
        core: CoreId,
        msr: Msr,
        value: u64,
    ) -> Result<WriteOutcome, HalError>;
}

/// The cpufreq scaling-driver surface: what `cpupower`/`cpufreq` need
/// from the substrate.
pub trait DvfsBackend {
    /// Number of logical cores the backend exposes.
    fn core_count(&self) -> usize;

    /// The frequency `core` currently runs at.
    ///
    /// # Errors
    ///
    /// [`HalError::Package`] for a bad core or crashed package, or
    /// [`HalError::Io`] when the host sysfs node is unreadable.
    fn current_freq(&mut self, core: CoreId) -> Result<FreqMhz, HalError>;

    /// Requests `freq` on `core` through the backend's scaling driver,
    /// returning the frequency actually applied (quantized to the
    /// hardware table on the sim family).
    ///
    /// # Errors
    ///
    /// [`HalError::ReadOnlyBackend`] from backends that never write;
    /// otherwise as [`Self::current_freq`].
    fn set_freq(&mut self, now: SimTime, core: CoreId, freq: FreqMhz) -> Result<FreqMhz, HalError>;
}

/// The backend union a simulated `Machine` hosts: MSR + DVFS access
/// plus the concrete [`CpuPackage`] carrying the simulator's physics,
/// cost model and telemetry.
///
/// The read-only host backend deliberately does **not** implement this
/// trait: it has no `CpuPackage`, cannot be mounted in a `Machine`,
/// and therefore can never be asked to participate in a simulated
/// attack campaign.
pub trait MachineBackend: MsrBackend + DvfsBackend {
    /// The simulated package behind the seam.
    fn cpu(&self) -> &CpuPackage;

    /// Mutable access to the simulated package (the "privileged
    /// software" escape hatch attacks use).
    fn cpu_mut(&mut self) -> &mut CpuPackage;
}

/// The shared sim-family scaling driver: quantize to the hardware
/// table, write `IA32_PERF_CTL` through the backend's own `wrmsr`
/// (so a recording backend captures the DVFS request as an ordinary
/// MSR write, exactly like the Linux acpi-cpufreq driver), and read
/// back the applied frequency.
///
/// # Errors
///
/// Propagates the backend's `wrmsr` error or a package error from the
/// read-back.
pub fn drive_freq_via_msr<B: MachineBackend + ?Sized>(
    backend: &mut B,
    now: SimTime,
    core: CoreId,
    freq: FreqMhz,
) -> Result<FreqMhz, HalError> {
    let f = backend.cpu().spec().freq_table.quantize(freq);
    backend.wrmsr(now, core, Msr::IA32_PERF_CTL, encode_perf_ctl(f.mhz()))?;
    backend.cpu().core_freq(core).map_err(HalError::Package)
}
