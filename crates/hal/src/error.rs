//! Typed errors of the HAL backends.

use plugvolt_cpu::package::PackageError;
use plugvolt_msr::addr::Msr;
use plugvolt_msr::file::MsrError;
use std::fmt;

/// What a backend operation can fail with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HalError {
    /// The underlying simulated package raised an error (`#GP`, crash,
    /// bad core). The sim-family backends only ever fail with this.
    Package(PackageError),
    /// A write was issued against a backend that never writes — the
    /// read-only host backend's entire safety guarantee lives here.
    ReadOnlyBackend {
        /// The backend that refused (its [`MsrBackend::name`]).
        ///
        /// [`MsrBackend::name`]: crate::backend::MsrBackend::name
        backend: &'static str,
        /// The register the caller tried to write.
        msr: Msr,
    },
    /// A transcript failed schema validation or structural checks.
    TraceSchema {
        /// Human-readable reason.
        detail: String,
    },
    /// Host-backend I/O failed (missing `/dev/cpu/*/msr`, permissions…).
    Io {
        /// The path involved.
        path: String,
        /// Stringified OS error.
        detail: String,
    },
}

impl fmt::Display for HalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HalError::Package(e) => write!(f, "{e}"),
            HalError::ReadOnlyBackend { backend, msr } => {
                write!(
                    f,
                    "backend '{backend}' is read-only: write to {msr} refused"
                )
            }
            HalError::TraceSchema { detail } => write!(f, "trace schema error: {detail}"),
            HalError::Io { path, detail } => write!(f, "host i/o error at {path}: {detail}"),
        }
    }
}

impl std::error::Error for HalError {}

impl From<PackageError> for HalError {
    fn from(e: PackageError) -> Self {
        HalError::Package(e)
    }
}

/// Collapses a HAL failure onto the (Copy, sim-era) [`PackageError`]
/// the kernel and countermeasure layers already speak.
///
/// A read-only refusal becomes [`MsrError::WriteFault`] — from the
/// writer's point of view a `#GP` on the write is exactly what a locked
/// register raises on real parts. The trace/io variants collapse to
/// [`PackageError::Crashed`]; they never surface through a machine
/// (the machine-resident trace backends log divergences instead of
/// erroring, and the host backend is never machine-resident).
impl From<HalError> for PackageError {
    fn from(e: HalError) -> Self {
        match e {
            HalError::Package(p) => p,
            HalError::ReadOnlyBackend { msr, .. } => {
                PackageError::Msr(MsrError::WriteFault { msr })
            }
            HalError::TraceSchema { .. } | HalError::Io { .. } => PackageError::Crashed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_only_collapses_to_write_fault() {
        let e = HalError::ReadOnlyBackend {
            backend: "host-ro",
            msr: Msr::OC_MAILBOX,
        };
        assert_eq!(
            PackageError::from(e),
            PackageError::Msr(MsrError::WriteFault {
                msr: Msr::OC_MAILBOX
            })
        );
    }

    #[test]
    fn package_round_trips() {
        let p = PackageError::Crashed;
        assert_eq!(PackageError::from(HalError::from(p)), p);
    }

    #[test]
    fn display_names_the_register() {
        let e = HalError::ReadOnlyBackend {
            backend: "host-ro",
            msr: Msr::OC_MAILBOX,
        };
        let s = e.to_string();
        assert!(s.contains("read-only"), "{s}");
        assert!(s.contains("host-ro"), "{s}");
    }
}
