//! The simulated backend: pure delegation onto [`CpuPackage`].
//!
//! This is the pre-HAL wiring behind the trait seam — every call is a
//! one-line forward, so the simulated stack stays bit-identical to the
//! direct `Machine → CpuPackage` plumbing it replaces.

use crate::backend::{drive_freq_via_msr, DvfsBackend, MachineBackend, MsrBackend};
use crate::error::HalError;
use plugvolt_cpu::core::CoreId;
use plugvolt_cpu::freq::FreqMhz;
use plugvolt_cpu::model::CpuModel;
use plugvolt_cpu::package::CpuPackage;
use plugvolt_des::time::SimTime;
use plugvolt_msr::addr::Msr;
use plugvolt_msr::file::WriteOutcome;

/// The deterministic simulated substrate: a [`CpuPackage`] behind the
/// backend traits.
#[derive(Debug)]
pub struct SimBackend {
    cpu: CpuPackage,
}

impl SimBackend {
    /// Boots a fresh median-silicon package for `model`, seeded.
    #[must_use]
    pub fn new(model: CpuModel, seed: u64) -> Self {
        Self {
            cpu: CpuPackage::new(model, seed),
        }
    }

    /// Boots a specific silicon unit (per-unit margin lottery).
    #[must_use]
    pub fn new_unit(model: CpuModel, seed: u64, unit: u64) -> Self {
        Self {
            cpu: CpuPackage::new_unit(model, seed, unit),
        }
    }

    /// Wraps an already-configured package.
    #[must_use]
    pub fn from_package(cpu: CpuPackage) -> Self {
        Self { cpu }
    }

    /// Unwraps the backend back into its package.
    #[must_use]
    pub fn into_package(self) -> CpuPackage {
        self.cpu
    }
}

impl MsrBackend for SimBackend {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn rdmsr(&mut self, now: SimTime, core: CoreId, msr: Msr) -> Result<u64, HalError> {
        self.cpu.rdmsr(now, core, msr).map_err(HalError::Package)
    }

    fn wrmsr(
        &mut self,
        now: SimTime,
        core: CoreId,
        msr: Msr,
        value: u64,
    ) -> Result<WriteOutcome, HalError> {
        self.cpu
            .wrmsr(now, core, msr, value)
            .map_err(HalError::Package)
    }
}

impl DvfsBackend for SimBackend {
    fn core_count(&self) -> usize {
        self.cpu.core_count()
    }

    fn current_freq(&mut self, core: CoreId) -> Result<FreqMhz, HalError> {
        self.cpu.core_freq(core).map_err(HalError::Package)
    }

    fn set_freq(&mut self, now: SimTime, core: CoreId, freq: FreqMhz) -> Result<FreqMhz, HalError> {
        drive_freq_via_msr(self, now, core, freq)
    }
}

impl MachineBackend for SimBackend {
    fn cpu(&self) -> &CpuPackage {
        &self.cpu
    }

    fn cpu_mut(&mut self) -> &mut CpuPackage {
        &mut self.cpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delegates_bit_identically() {
        let seed = 0xDAC;
        let model = CpuModel::SkyLake;
        let direct = CpuPackage::new(model, seed);
        let mut hal = SimBackend::new(model, seed);
        let t = SimTime::ZERO;

        let a = direct.rdmsr(t, CoreId(0), Msr::IA32_PERF_STATUS);
        let b = MsrBackend::rdmsr(&mut hal, t, CoreId(0), Msr::IA32_PERF_STATUS);
        assert_eq!(a.ok(), b.ok());
        assert_eq!(direct.core_count(), hal.core_count());
    }

    #[test]
    fn set_freq_quantizes_like_the_table() {
        let mut hal = SimBackend::new(CpuModel::SkyLake, 7);
        let want = hal.cpu().spec().freq_table.quantize(FreqMhz(2650));
        let got = hal
            .set_freq(SimTime::ZERO, CoreId(0), FreqMhz(2650))
            .expect("sim set_freq");
        assert_eq!(got, want);
    }
}
