//! Criterion benches for the SPEC-like workload harness (Table 2 path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use plugvolt::characterize::analytic_map;
use plugvolt_cpu::model::CpuModel;
use plugvolt_kernel::machine::Machine;
use plugvolt_workloads::overhead::{measure_benchmark, OverheadConfig};
use plugvolt_workloads::rate::run_rate;
use plugvolt_workloads::suite::{find, Benchmark, Tuning};
use std::hint::black_box;

fn scaled(b: &Benchmark) -> Benchmark {
    Benchmark {
        instructions: b.instructions / 100,
        ..*b
    }
}

fn bench_single_rate(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload/rate-run-1%");
    group.sample_size(20);
    for name in ["503.bwaves_r", "505.mcf_r", "557.xz_r"] {
        let bench = scaled(find(name).expect("known benchmark"));
        group.bench_with_input(BenchmarkId::from_parameter(name), &bench, |b, bench| {
            b.iter(|| {
                let mut machine = Machine::new(CpuModel::CometLake, 3);
                black_box(run_rate(&mut machine, bench, Tuning::Base).expect("runs"))
            });
        });
    }
    group.finish();
}

fn bench_table2_row(c: &mut Criterion) {
    let cfg = OverheadConfig {
        work_divisor: 100,
        ..OverheadConfig::default()
    };
    let map = analytic_map(&cfg.model.spec());
    let bench = find("525.x264_r").expect("known benchmark");
    let mut group = c.benchmark_group("workload/table2-row");
    group.sample_size(10);
    group.bench_function("x264", |b| {
        b.iter(|| black_box(measure_benchmark(bench, &cfg, &map).expect("measures")));
    });
    group.finish();
}

criterion_group!(benches, bench_single_rate, bench_table2_row);
criterion_main!(benches);
