//! Criterion benches for the substrate hot paths: MSR codecs, the
//! register file, and the circuit timing/fault models the EXECUTE
//! thread exercises a million times per grid point.

use criterion::{criterion_group, criterion_main, Criterion};
use plugvolt_circuit::fault::{sample_binomial, FaultModel};
use plugvolt_circuit::multiplier::MultiplierUnit;
use plugvolt_circuit::netlist::array_multiplier;
use plugvolt_circuit::timing::TimingBudget;
use plugvolt_cpu::core::CoreId;
use plugvolt_cpu::model::CpuModel;
use plugvolt_cpu::package::CpuPackage;
use plugvolt_des::rng::SimRng;
use plugvolt_des::time::SimTime;
use plugvolt_msr::addr::Msr;
use plugvolt_msr::oc_mailbox::OcRequest;
use plugvolt_msr::perf_status::PerfStatus;
use std::hint::black_box;

fn bench_mailbox_codec(c: &mut Criterion) {
    c.bench_function("msr/oc-mailbox-encode-decode", |b| {
        let mut off = 0i32;
        b.iter(|| {
            off = -((off.unsigned_abs() as i32 + 7) % 300);
            let raw = OcRequest::write_offset(off, plugvolt_msr::oc_mailbox::Plane::Core).encode();
            black_box(OcRequest::decode(raw).expect("round trip"))
        });
    });
}

fn bench_perf_status_codec(c: &mut Criterion) {
    c.bench_function("msr/perf-status-encode-decode", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            let s = PerfStatus::new(400 + (i % 45) * 100, 600.0 + f64::from(i % 600));
            black_box(PerfStatus::decode(s.encode()))
        });
    });
}

fn bench_package_msr_access(c: &mut Criterion) {
    c.bench_function("cpu/rdmsr-perf-status", |b| {
        let cpu = CpuPackage::new(CpuModel::CometLake, 1);
        b.iter(|| {
            black_box(
                cpu.rdmsr(SimTime::ZERO, CoreId(0), Msr::IA32_PERF_STATUS)
                    .expect("reads"),
            )
        });
    });
}

fn bench_multiplier_paths(c: &mut Criterion) {
    let mul = MultiplierUnit::default();
    c.bench_function("circuit/path-delay", |b| {
        let mut v = 700.0;
        b.iter(|| {
            v = if v > 1_200.0 { 700.0 } else { v + 0.37 };
            black_box(mul.worst_path_delay_ps(v))
        });
    });
}

fn bench_million_imul_loop(c: &mut Criterion) {
    // The EXECUTE thread primitive: 1M imuls sampled in O(faults).
    let spec = CpuModel::CometLake.spec();
    let mul = spec.multiplier();
    let fm = spec.fault_model();
    let budget = TimingBudget::for_frequency_mhz(4_000, spec.t_setup_ps, spec.t_eps_ps);
    c.bench_function("circuit/1M-imul-loop", |b| {
        let mut rng = SimRng::from_seed_label(1, "bench-imul");
        b.iter(|| black_box(mul.run_imul_loop(1_000_000, &budget, 1_000.0, &fm, &mut rng)));
    });
}

fn bench_binomial_sampler(c: &mut Criterion) {
    c.bench_function("circuit/binomial-1M-small-p", |b| {
        let mut rng = SimRng::from_seed_label(2, "bench-binom");
        b.iter(|| black_box(sample_binomial(1_000_000, 1e-5, &mut rng)));
    });
}

fn bench_fault_sampling(c: &mut Criterion) {
    let fm = FaultModel::default();
    c.bench_function("circuit/fault-sample", |b| {
        let mut rng = SimRng::from_seed_label(3, "bench-fault");
        let mut slack = 50.0;
        b.iter(|| {
            slack = if slack < -50.0 { 50.0 } else { slack - 0.1 };
            black_box(fm.sample(slack, 64, &mut rng))
        });
    });
}

fn bench_netlist_sta(c: &mut Criterion) {
    let mul = array_multiplier(8);
    let unit = plugvolt_circuit::delay::AlphaPowerModel::calibrated(10.0, 1_000.0, 320.0, 1.4);
    c.bench_function("netlist/8x8-multiplier-sta", |b| {
        b.iter(|| black_box(mul.netlist.critical_delay_ps(&unit, 950.0, &mul.out)));
    });
    c.bench_function("netlist/8x8-multiplier-eval", |b| {
        let mut x = 1u64;
        b.iter(|| {
            x = (x * 7 + 3) % 256;
            black_box(mul.compute(x, 255 - x))
        });
    });
}

criterion_group!(
    benches,
    bench_mailbox_codec,
    bench_perf_status_codec,
    bench_package_msr_access,
    bench_multiplier_paths,
    bench_million_imul_loop,
    bench_binomial_sampler,
    bench_fault_sampling,
    bench_netlist_sta
);
criterion_main!(benches);
