//! Criterion benches for the S1 characterization pipeline (the data
//! source behind Figures 2–4): how long the sweep itself takes at
//! several resolutions, per CPU generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use plugvolt::characterize::{analytic_map, characterize, SweepConfig};
use plugvolt_cpu::model::CpuModel;
use plugvolt_kernel::machine::Machine;
use std::hint::black_box;

fn bench_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("characterize/coarse-sweep");
    group.sample_size(10);
    for model in CpuModel::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(model), &model, |b, &model| {
            b.iter(|| {
                let mut machine = Machine::new(model, 21);
                let cfg = SweepConfig {
                    offset_step_mv: 10,
                    freq_step_mhz: 500,
                    ..SweepConfig::default()
                };
                black_box(characterize(&mut machine, &cfg).expect("sweep"))
            });
        });
    }
    group.finish();
}

fn bench_grid_point_density(c: &mut Criterion) {
    // Fixed model, varying offset resolution: the sweep cost is linear
    // in grid points, so per-point cost is the figure of merit.
    let mut group = c.benchmark_group("characterize/offset-resolution");
    group.sample_size(10);
    for step in [20, 10, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(step), &step, |b, &step| {
            b.iter(|| {
                let mut machine = Machine::new(CpuModel::SkyLake, 21);
                let cfg = SweepConfig {
                    offset_step_mv: step,
                    freq_step_mhz: 700,
                    ..SweepConfig::default()
                };
                black_box(characterize(&mut machine, &cfg).expect("sweep"))
            });
        });
    }
    group.finish();
}

fn bench_analytic_map(c: &mut Criterion) {
    c.bench_function("characterize/analytic-oracle", |b| {
        let spec = CpuModel::CometLake.spec();
        b.iter(|| black_box(analytic_map(&spec)));
    });
}

fn bench_map_classify(c: &mut Criterion) {
    let map = analytic_map(&CpuModel::CometLake.spec());
    c.bench_function("charmap/classify", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            let f = plugvolt_cpu::freq::FreqMhz(400 + (i % 45) * 100);
            let off = -((i % 300) as i32);
            black_box(map.classify(f, off))
        });
    });
}

criterion_group!(
    benches,
    bench_sweep,
    bench_grid_point_density,
    bench_analytic_map,
    bench_map_classify
);
criterion_main!(benches);
