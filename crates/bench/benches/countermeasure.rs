//! Criterion benches for the S2 countermeasure: the polling module's
//! own cost (the quantity Table 2 measures end to end) and the
//! deployment paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use plugvolt::characterize::analytic_map;
use plugvolt::deploy::{deploy, Deployment};
use plugvolt::poll::{PollConfig, PollingModule};
use plugvolt_cpu::core::CoreId;
use plugvolt_cpu::exec::InstrClass;
use plugvolt_cpu::model::CpuModel;
use plugvolt_des::time::SimDuration;
use plugvolt_kernel::machine::Machine;
use std::hint::black_box;

fn bench_poll_ticks(c: &mut Criterion) {
    // Cost of simulating 1 ms of polling (5 ticks × 4 cores at 200 µs).
    let map = analytic_map(&CpuModel::CometLake.spec());
    c.bench_function("poll/1ms-of-ticks", |b| {
        let mut machine = Machine::new(CpuModel::CometLake, 5);
        let (module, _stats) = PollingModule::new(map.clone(), PollConfig::default());
        machine.load_module(Box::new(module)).expect("loads");
        b.iter(|| {
            machine.advance(SimDuration::from_millis(1));
            black_box(machine.now())
        });
    });
}

fn bench_workload_under_polling(c: &mut Criterion) {
    let map = analytic_map(&CpuModel::CometLake.spec());
    let mut group = c.benchmark_group("poll/workload-10M-alu");
    group.sample_size(20);
    for with_polling in [false, true] {
        group.bench_with_input(
            BenchmarkId::from_parameter(if with_polling { "with-poll" } else { "no-poll" }),
            &with_polling,
            |b, &with_polling| {
                b.iter(|| {
                    let mut machine = Machine::new(CpuModel::CometLake, 5);
                    if with_polling {
                        let (module, _stats) =
                            PollingModule::new(map.clone(), PollConfig::default());
                        machine.load_module(Box::new(module)).expect("loads");
                    }
                    black_box(
                        machine
                            .run_workload(CoreId(0), InstrClass::AluAdd, 10_000_000)
                            .expect("runs"),
                    )
                });
            },
        );
    }
    group.finish();
}

fn bench_deploy_paths(c: &mut Criterion) {
    let map = analytic_map(&CpuModel::CometLake.spec());
    let mut group = c.benchmark_group("deploy");
    for deployment in [
        Deployment::PollingModule(PollConfig::default()),
        Deployment::Microcode {
            revision: 0xf5,
            margin_mv: 5,
        },
        Deployment::HardwareMsr { margin_mv: 5 },
        Deployment::OcmDisable,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(deployment.label()),
            &deployment,
            |b, deployment| {
                b.iter(|| {
                    let mut machine = Machine::new(CpuModel::CometLake, 5);
                    black_box(deploy(&mut machine, &map, deployment.clone()).expect("deploys"))
                });
            },
        );
    }
    group.finish();
}

fn bench_detection_roundtrip(c: &mut Criterion) {
    // Full attack-write → detect → restore round trip under polling.
    use plugvolt_kernel::msr_dev::MsrDev;
    use plugvolt_msr::addr::Msr;
    use plugvolt_msr::oc_mailbox::{OcRequest, Plane};
    let map = analytic_map(&CpuModel::CometLake.spec());
    c.bench_function("poll/detect-restore-roundtrip", |b| {
        b.iter(|| {
            let mut machine = Machine::new(CpuModel::CometLake, 5);
            let (module, stats) = PollingModule::new(map.clone(), PollConfig::default());
            machine.load_module(Box::new(module)).expect("loads");
            let mut cpupower = plugvolt_kernel::cpupower::CpuPower::new(&machine);
            let fast = machine.cpu().spec().freq_table.max();
            cpupower
                .frequency_set(&mut machine, CoreId(0), fast)
                .expect("pins");
            let dev = MsrDev::open(&machine, CoreId(0)).expect("opens");
            let req = OcRequest::write_offset(-250, Plane::Core).encode();
            dev.write(&mut machine, Msr::OC_MAILBOX, req)
                .expect("writes");
            machine.advance(SimDuration::from_micros(400));
            let restores = stats.borrow().restores;
            black_box(restores)
        });
    });
}

criterion_group!(
    benches,
    bench_poll_ticks,
    bench_workload_under_polling,
    bench_deploy_paths,
    bench_detection_roundtrip
);
criterion_main!(benches);
