//! Criterion benches for the attack campaigns and crypto victims: how
//! expensive is an adversary's life on this simulator?

use criterion::{criterion_group, criterion_main, Criterion};
use plugvolt_attacks::crypto::aes::{self, GiraudAttack};
use plugvolt_attacks::crypto::rsa::{bellcore_factor, RsaKey};
use plugvolt_attacks::plundervolt::{run_rsa_attack, PlundervoltConfig};
use plugvolt_cpu::model::CpuModel;
use plugvolt_des::rng::SimRng;
use plugvolt_kernel::machine::Machine;
use std::hint::black_box;

fn bench_rsa_sign(c: &mut Criterion) {
    let mut rng = SimRng::from_seed_label(1, "bench-rsa");
    let key = RsaKey::generate(&mut rng);
    c.bench_function("crypto/rsa-crt-sign", |b| {
        let mut m = 12_345u64;
        b.iter(|| {
            m = m.wrapping_mul(0x9E37_79B9).wrapping_add(1) % key.n;
            black_box(key.sign_exact(m))
        });
    });
}

fn bench_bellcore(c: &mut Criterion) {
    let mut rng = SimRng::from_seed_label(2, "bench-bellcore");
    let key = RsaKey::generate(&mut rng);
    let m = 0xBEEF % key.n;
    // A signature faulted in one CRT half.
    let mut count = 0u32;
    let mut faulty_mul = |a: u64, b: u64| {
        count += 1;
        let p = a.wrapping_mul(b);
        if count == 5 {
            p ^ (1 << 17)
        } else {
            p
        }
    };
    let s_faulty = key.sign_crt(m, &mut faulty_mul);
    c.bench_function("crypto/bellcore-factor", |b| {
        b.iter(|| black_box(bellcore_factor(key.n, key.e, m, s_faulty)));
    });
}

fn bench_aes_encrypt(c: &mut Criterion) {
    let key = [0x2bu8; 16];
    c.bench_function("crypto/aes128-encrypt", |b| {
        let mut pt = [0u8; 16];
        b.iter(|| {
            pt[0] = pt[0].wrapping_add(1);
            black_box(aes::encrypt(&key, &pt))
        });
    });
}

fn bench_giraud_observe(c: &mut Criterion) {
    let key = [0x2bu8; 16];
    let mut rng = SimRng::from_seed_label(3, "bench-dfa");
    let pairs: Vec<([u8; 16], [u8; 16])> = (0..64)
        .map(|i| {
            let mut pt = [0u8; 16];
            pt[0] = i;
            let correct = aes::encrypt(&key, &pt);
            let faulty =
                aes::encrypt_with_fault(&key, &pt, Some(aes::sample_round_fault(&mut rng)));
            (correct, faulty)
        })
        .collect();
    c.bench_function("crypto/giraud-observe-64-pairs", |b| {
        b.iter(|| {
            let mut dfa = GiraudAttack::new();
            for (correct, faulty) in &pairs {
                dfa.observe(correct, faulty);
            }
            black_box(dfa.hypothesis_space())
        });
    });
}

fn bench_full_rsa_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("attack/plundervolt-rsa-campaign");
    group.sample_size(10);
    group.bench_function("undefended", |b| {
        b.iter(|| {
            let mut machine = Machine::new(CpuModel::CometLake, 42);
            black_box(run_rsa_attack(&mut machine, &PlundervoltConfig::default(), 1).expect("runs"))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_rsa_sign,
    bench_bellcore,
    bench_aes_encrypt,
    bench_giraud_observe,
    bench_full_rsa_campaign
);
criterion_main!(benches);
