//! End-to-end telemetry acceptance: the profile a `repro … --telemetry`
//! run would write is deterministic, and the §5 deployment levels show
//! the expected exposure windows.

use plugvolt_bench::experiments::{deployment_levels, quick_map};
use plugvolt_bench::scenario::Scenario;
use plugvolt_cpu::model::CpuModel;
use plugvolt_telemetry::{MetricKey, Sink};

fn levels_profile() -> plugvolt_telemetry::TelemetryProfile {
    let model = CpuModel::CometLake;
    let map = quick_map(model);
    let sink = Sink::new();
    let scn = Scenario::new().with_telemetry(sink.clone());
    // A worker count > 1 still runs sequentially here: the telemetry
    // sink forces the serial path (and the profile stays identical).
    deployment_levels(&scn, model, &map, 4).expect("levels complete");
    sink.profile("levels")
}

#[test]
fn levels_profile_is_byte_identical_across_runs() {
    let a = levels_profile().to_json();
    let b = levels_profile().to_json();
    assert_eq!(a, b, "telemetry profile must be deterministic");
}

#[test]
fn exposure_is_zero_for_hardware_levels_and_polling() {
    let profile = levels_profile();
    for label in ["microcode", "hardware-msr", "polling-module"] {
        let key = format!("deploy/{label}");
        let gauge = profile
            .gauge(&key, "exposure_ns")
            .unwrap_or_else(|| panic!("exposure gauge for {label} present"));
        assert_eq!(gauge, 0.0, "{label} must leave no exposure window");
    }
    // The undefended machine, by contrast, is exposed for milliseconds.
    let none = profile
        .gauge("deploy/none", "exposure_ns")
        .expect("exposure gauge for none present");
    assert!(none > 1e6, "undefended exposure = {none} ns");
}

#[test]
fn levels_profile_contains_msr_and_latency_metrics() {
    let profile = levels_profile();
    assert!(profile.counter_total("msr", "rdmsr") > 0);
    assert!(profile.counter_total("msr", "wrmsr") > 0);
    let latency = profile
        .histogram("poll", "detection_latency_us")
        .expect("detection latency histogram present");
    assert!(latency.total() >= 1);
    let exposure = profile
        .histogram("deploy", "exposure_window_us")
        .expect("exposure histogram present");
    assert_eq!(exposure.total(), 5, "one exposure sample per deployment");
    // The polling deployment detected and restored at least once.
    let detections: Vec<_> = profile
        .events
        .iter()
        .filter(|e| e.event.kind() == "detection")
        .collect();
    assert!(!detections.is_empty());
    // Per-core summaries rolled up into a global row (Summary::merge).
    assert!(profile
        .summaries
        .iter()
        .any(|s| s.component == "poll" && s.name == "detection_latency_us" && s.core.is_none()));
    let _ = MetricKey::global("poll", "detection_latency_us");
}
