//! # plugvolt-bench
//!
//! Benchmark and reproduction harness for the *Plug Your Volt*
//! (DAC 2024) reproduction.
//!
//! - [`scenario`] — the session layer: seed derivation, machine
//!   construction, memoized characterization maps, telemetry wiring;
//! - [`experiments`] — one runner per table/figure/ablation of the
//!   paper, shared by the `repro` binary, the integration tests and the
//!   Criterion benches;
//! - [`perf`] — the deterministic in-tree perf harness behind
//!   `plugvolt-cli bench` (writes the pinned-schema `BENCH.json`);
//! - [`attr`] — the span-tracer attribution run behind
//!   `plugvolt-cli bench --attr` (per-subsystem hot-path table, Chrome
//!   trace and flamegraph exports);
//! - [`soak`] — the `plugvolt-fuzz` differential soak fuzzer behind
//!   `plugvolt-cli soak` (randomized campaigns, oracle invariants,
//!   auto-shrunk reproducer corpus);
//! - [`trace`] — the MSR-transcript record/replay gate (pinned-schema
//!   JSONL fixtures, tape-clean + oracle + sim-differential checks);
//! - [`text`] — plain-text table rendering.
//!
//! Run `cargo run --release -p plugvolt-bench --bin repro -- all` to
//! regenerate every table and figure; see `EXPERIMENTS.md` for the
//! paper-vs-measured record.

#![warn(missing_docs)]

pub mod attr;
pub mod experiments;
pub mod perf;
pub mod scenario;
pub mod soak;
pub mod text;
pub mod trace;
