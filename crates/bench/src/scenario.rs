//! The scenario/session layer: one place that owns machine
//! construction, seed derivation, characterization-map memoization,
//! deployment setup and telemetry wiring for every experiment entry
//! point (the `repro` subcommands, `plugvolt-cli`, the examples and the
//! integration tests).
//!
//! Before this layer existed, each entry point hand-rolled the same
//! setup: `Machine::new(model, SEED)` calls scattered across 1,000+
//! lines of experiment runners, `quick_map` recomputed at every call
//! site, and telemetry threaded through duplicated `*_with(sink)`
//! function variants. A [`Scenario`] replaces all of that:
//!
//! - **Machine construction** — [`Scenario::machine`] boots from the
//!   scenario's root seed, [`Scenario::machine_for`] from a labelled
//!   seed derived via [`plugvolt_des::rng::derive_seed`], so every
//!   auxiliary machine gets its own independent, reproducible stream
//!   and adding one never perturbs another;
//! - **Seed derivation** — one root seed fans out into per-purpose
//!   streams ([`Scenario::rng`], [`Scenario::seed_for`]) under the
//!   workspace's stream-splitting discipline;
//! - **Map memoization** — [`Scenario::quick_map`] serves the analytic
//!   characterization map from a process-wide store, so it is computed
//!   at most once per model per process however many experiments ask;
//! - **Telemetry** — a sink attached with [`Scenario::with_telemetry`]
//!   is installed on every machine the scenario boots, which is what
//!   deleted the `defense_matrix_with`/`deployment_levels_with`/
//!   `interval_sweep_with` variant pattern;
//! - **Sharded characterization** — [`Scenario::characterize`] runs the
//!   frequency-sharded sweep engine rooted at the scenario seed.
//!
//! The construction discipline is enforced by the `plugvolt-lint` rule
//! `machine-construction-discipline`: `Machine::new` outside this
//! module (and test code) is flagged.

use plugvolt::characterize::{
    analytic_map, characterize_sharded_traced, CharacterizationRun, CharacterizeError, SweepConfig,
};
use plugvolt::charmap::CharacterizationMap;
use plugvolt::deploy::{deploy, Deployed, Deployment};
use plugvolt_cpu::model::CpuModel;
use plugvolt_des::rng::{derive_seed, SimRng};
use plugvolt_hal::sim::SimBackend;
use plugvolt_hal::trace::{RecordingBackend, ReplayBackend, ReplayCursor, TraceRecorder};
use plugvolt_kernel::machine::{Machine, MachineError};
use plugvolt_telemetry::Sink;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Default root seed for all experiments (the paper's venue and year).
pub const SEED: u64 = 0x0DAC_2024;

/// A simulation session: root seed plus optional telemetry sink, from
/// which every machine, stream and map of one experiment run is drawn.
///
/// # Examples
///
/// ```
/// use plugvolt_bench::scenario::Scenario;
/// use plugvolt_cpu::model::CpuModel;
///
/// let scenario = Scenario::new();
/// let map = scenario.quick_map(CpuModel::CometLake);
/// let mut machine = scenario.machine(CpuModel::CometLake);
/// assert!(map.maximal_safe_offset_mv(5).is_some());
/// assert!(!machine.cpu().is_crashed());
/// ```
#[derive(Debug, Clone)]
pub struct Scenario {
    root_seed: u64,
    telemetry: Option<Sink>,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario::new()
    }
}

impl Scenario {
    /// A session rooted at the workspace default seed [`SEED`].
    #[must_use]
    pub fn new() -> Self {
        Scenario::with_seed(SEED)
    }

    /// A session rooted at an explicit seed (reproductions pin these).
    #[must_use]
    pub fn with_seed(root_seed: u64) -> Self {
        Scenario {
            root_seed,
            telemetry: None,
        }
    }

    /// Attaches a telemetry sink; every machine the scenario boots from
    /// here on shares this registry.
    #[must_use]
    pub fn with_telemetry(mut self, sink: Sink) -> Self {
        self.telemetry = Some(sink);
        self
    }

    /// The session's root seed.
    #[must_use]
    pub fn root_seed(&self) -> u64 {
        self.root_seed
    }

    /// The attached telemetry sink, if any.
    #[must_use]
    pub fn telemetry(&self) -> Option<&Sink> {
        self.telemetry.as_ref()
    }

    /// A labelled seed derived from the root seed (stable per label).
    #[must_use]
    pub fn seed_for(&self, label: &str) -> u64 {
        derive_seed(self.root_seed, label)
    }

    /// A labelled random stream rooted at the session seed.
    #[must_use]
    pub fn rng(&self, label: &str) -> SimRng {
        SimRng::from_seed_label(self.root_seed, label)
    }

    /// Boots the session's primary machine for a model, seeded with the
    /// root seed itself (so single-machine experiments reproduce the
    /// historical `Machine::new(model, SEED)` byte-for-byte).
    #[must_use]
    pub fn machine(&self, model: CpuModel) -> Machine {
        self.install(Machine::new(model, self.root_seed))
    }

    /// Boots an auxiliary machine from a labelled derived seed — one
    /// label per purpose, so campaigns stay independent of each other.
    #[must_use]
    pub fn machine_for(&self, model: CpuModel, label: &str) -> Machine {
        self.install(Machine::new(model, self.seed_for(label)))
    }

    /// Boots a specific physical unit of a SKU (die-to-die variation
    /// studies), seeded with the root seed.
    #[must_use]
    pub fn unit_machine(&self, model: CpuModel, unit: u64) -> Machine {
        self.install(Machine::new_unit(model, self.root_seed, unit))
    }

    /// Boots a labelled auxiliary machine whose backend appends every
    /// MSR access to `rec`'s transcript. Seeded identically to
    /// [`Scenario::machine_for`] with the same label, so a recorded run
    /// is bit-identical to an unrecorded one.
    #[must_use]
    pub fn machine_recording(&self, model: CpuModel, label: &str, rec: &TraceRecorder) -> Machine {
        let seed = self.seed_for(label);
        let backend = RecordingBackend::new(SimBackend::new(model, seed), rec.clone());
        self.install(Machine::with_backend(Box::new(backend), seed))
    }

    /// Boots a labelled auxiliary machine whose backend re-executes
    /// against a fresh sim store while verifying every MSR access
    /// against `cursor`'s tape (divergences accumulate on the cursor).
    /// Seeded identically to [`Scenario::machine_for`].
    #[must_use]
    pub fn machine_replaying(
        &self,
        model: CpuModel,
        label: &str,
        cursor: &ReplayCursor,
    ) -> Machine {
        let seed = self.seed_for(label);
        let backend = ReplayBackend::new(SimBackend::new(model, seed), cursor.clone());
        self.install(Machine::with_backend(Box::new(backend), seed))
    }

    fn install(&self, mut machine: Machine) -> Machine {
        if let Some(sink) = &self.telemetry {
            machine.set_telemetry(sink.clone());
        }
        machine
    }

    /// The analytic characterization map for a model, memoized
    /// process-wide: computed at most once per model per process, then
    /// shared by every caller (the map is seed-independent physics, so
    /// one store serves all sessions).
    #[must_use]
    pub fn quick_map(&self, model: CpuModel) -> Arc<CharacterizationMap> {
        quick_map(model)
    }

    /// Runs the frequency-sharded characterization engine rooted at the
    /// session seed across `workers` threads. Byte-identical for any
    /// worker count (each frequency shard boots its own machine from
    /// `derive_seed(root_seed, "characterize/f<mhz>")`).
    ///
    /// # Errors
    ///
    /// Propagates config or machine errors from the engine.
    pub fn characterize(
        &self,
        model: CpuModel,
        cfg: &SweepConfig,
        workers: usize,
    ) -> Result<CharacterizationRun, CharacterizeError> {
        // With an attached sink whose tracer is enabled, shard span
        // snapshots merge into it in frequency order (worker-count
        // independent, like the records).
        let tracer = self
            .telemetry
            .as_ref()
            .map(plugvolt_telemetry::Sink::tracer)
            .filter(|t| t.is_enabled());
        characterize_sharded_traced(model, self.root_seed, cfg, workers, tracer)
    }

    /// Deploys a countermeasure level on a machine (the S2 step),
    /// delegating to [`plugvolt::deploy::deploy`].
    ///
    /// # Errors
    ///
    /// Propagates machine errors.
    pub fn deploy(
        &self,
        machine: &mut Machine,
        map: &CharacterizationMap,
        deployment: Deployment,
    ) -> Result<Deployed, MachineError> {
        deploy(machine, map, deployment)
    }
}

/// The process-wide memoized store behind [`Scenario::quick_map`].
fn quick_map_store() -> &'static Mutex<BTreeMap<&'static str, Arc<CharacterizationMap>>> {
    static STORE: OnceLock<Mutex<BTreeMap<&'static str, Arc<CharacterizationMap>>>> =
        OnceLock::new();
    STORE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// The analytic characterization map for a model, computed at most once
/// per process (see [`Scenario::quick_map`]).
#[must_use]
pub fn quick_map(model: CpuModel) -> Arc<CharacterizationMap> {
    let spec = model.spec();
    let mut store = quick_map_store().lock().expect("quick-map store poisoned");
    store
        .entry(spec.name)
        .or_insert_with(|| Arc::new(analytic_map(&spec)))
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_map_is_memoized_per_process() {
        let scenario = Scenario::new();
        let a = scenario.quick_map(CpuModel::CometLake);
        let b = Scenario::with_seed(999).quick_map(CpuModel::CometLake);
        assert!(
            Arc::ptr_eq(&a, &b),
            "second lookup must serve the stored map, not recompute"
        );
    }

    #[test]
    fn primary_machine_reproduces_raw_construction() {
        use plugvolt_cpu::core::CoreId;
        let scenario = Scenario::with_seed(7);
        let mut a = scenario.machine(CpuModel::SkyLake);
        let mut b = Machine::new(CpuModel::SkyLake, 7);
        let now = a.now();
        let fa = a.cpu_mut().run_imul_loop(now, CoreId(0), 50_000);
        let fb = b.cpu_mut().run_imul_loop(now, CoreId(0), 50_000);
        assert_eq!(fa.ok(), fb.ok());
    }

    #[test]
    fn labelled_machines_get_independent_seeds() {
        let scenario = Scenario::new();
        assert_ne!(scenario.seed_for("a"), scenario.seed_for("b"));
        assert_eq!(scenario.seed_for("a"), Scenario::new().seed_for("a"));
        assert_ne!(scenario.seed_for("a"), scenario.root_seed());
    }

    #[test]
    fn telemetry_sink_is_installed_on_boot() {
        use plugvolt::poll::PollConfig;
        let sink = Sink::new();
        let scenario = Scenario::new().with_telemetry(sink.clone());
        let mut machine = scenario.machine(CpuModel::CometLake);
        let map = scenario.quick_map(CpuModel::CometLake);
        scenario
            .deploy(
                &mut machine,
                &map,
                Deployment::PollingModule(PollConfig::default()),
            )
            .expect("deploys");
        machine.advance(plugvolt_des::time::SimDuration::from_millis(1));
        machine.publish_trace_drops();
        let profile = sink.profile("t");
        assert!(
            profile.counter_total("msr", "rdmsr") > 0,
            "polling activity must reach the scenario sink"
        );
    }
}
