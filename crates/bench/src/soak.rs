//! `plugvolt-fuzz`: the deterministic differential soak fuzzer behind
//! `plugvolt-cli soak`.
//!
//! The fixed experiment scenarios exercise hand-picked attack
//! schedules; published attacks (V0LTpwn in particular) show faults
//! cluster at adversarially-timed parameter edges those scenarios
//! never hit. This module closes the gap: it draws randomized
//! [`CampaignSchedule`]s from labelled [`Scenario`] seed streams, runs
//! each campaign *differentially* across four deployment levels
//! (`none`, `polling-module`, `microcode`, `hardware-msr`) and judges
//! three oracle invariants per campaign:
//!
//! 1. **zero-faults** — the synchronous clamp deployments (microcode,
//!    hardware MSR) admit no faults and no crashes, ever;
//! 2. **exposure** — the polling deployment's unsafe windows stay
//!    inside the characterized [`ExposureBound`]: configured-state
//!    dwell and telemetry detection latency within one period, rail
//!    overhang within the VR constants;
//! 3. **stream-equivalence** — the `none` and `polling` runs are
//!    RNG-stream-equivalent (identical per-step faults, offsets,
//!    frequencies and rng probes) up to the first intervention.
//!
//! A violation is delta-debugged ([`CampaignSchedule`]'s shrink hooks:
//! drop events, halve ramps, widen intervals) to a minimal reproducer
//! and serialized as a pinned-schema [`CorpusCase`] under
//! `results/fuzz-corpus/`; future runs replay the corpus first. The
//! self-test mode injects a deliberately weakened polling module (skip
//! every Nth poll) and asserts the exposure oracle catches and shrinks
//! it — exercising the gate itself on every CI run.
//!
//! Every verdict is a pure function of the scenario root seed, the
//! schedule and the weakening parameter: all machines boot from one
//! fixed label, so replay, shrinking and worker-count changes can
//! never flip an outcome (`soak` output is pinned byte-identical
//! across worker counts by `tests/determinism.rs`).

use crate::experiments::run_cells;
use crate::scenario::Scenario;
use plugvolt::charmap::CharacterizationMap;
use plugvolt::deploy::{deploy, Deployment};
use plugvolt::exposure::{ExposureAccountant, ExposureBound};
use plugvolt::poll::{PollConfig, PollStats, PollingModule};
use plugvolt::state::StateClass;
use plugvolt_attacks::campaign::is_crash;
use plugvolt_attacks::schedule::{AttackFamily, CampaignSchedule, ScheduleAction};
use plugvolt_cpu::core::CoreId;
use plugvolt_cpu::freq::FreqMhz;
use plugvolt_cpu::model::CpuModel;
use plugvolt_cpu::package::PackageError;
use plugvolt_des::time::{SimDuration, SimTime};
use plugvolt_hal::trace::{ReplayCursor, TraceRecorder};
use plugvolt_kernel::cpupower::CpuPower;
use plugvolt_kernel::machine::{KernelModule, Machine, MachineError, ModuleCtx};
use plugvolt_kernel::msr_dev::MsrDev;
use plugvolt_msr::addr::Msr;
use plugvolt_msr::oc_mailbox::{OcRequest, Plane};
use plugvolt_telemetry::{MetricKey, Sink, TelemetryEvent};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

/// Pinned schema version of [`CorpusCase`] files; bump on any breaking
/// change to the serialized shape.
pub const CORPUS_SCHEMA_VERSION: u32 = 1;

/// Sampling interval of the exposure watcher.
const SAMPLE: SimDuration = SimDuration::from_micros(10);

/// Machine-boot label every soak evaluation uses. One fixed label (not
/// per-campaign) keeps a schedule's verdict a pure function of the
/// root seed and the schedule, so shrink steps and corpus replay see
/// exactly the run that produced the violation.
const MACHINE_LABEL: &str = "soak/machine";

/// Soak-run parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SoakConfig {
    /// CPU model campaigns run against.
    pub model: CpuModel,
    /// Randomized campaigns to generate and run.
    pub campaigns: u32,
    /// Worker threads (output is worker-count independent).
    pub workers: usize,
    /// Whether to run the weakened-polling self-test.
    pub self_test: bool,
    /// Self-test weakening: the injected module skips every Nth poll.
    pub weaken_skip_every: u32,
    /// Shrink budget: maximum oracle evaluations per violation.
    pub shrink_budget: u32,
}

impl SoakConfig {
    /// The small fixed budget `ci.sh` runs on every commit.
    #[must_use]
    pub fn smoke() -> SoakConfig {
        SoakConfig {
            model: CpuModel::CometLake,
            campaigns: 10,
            workers: 2,
            self_test: true,
            weaken_skip_every: 2,
            shrink_budget: 200,
        }
    }
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            campaigns: 40,
            ..SoakConfig::smoke()
        }
    }
}

/// A judged oracle invariant violation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Violation {
    /// Oracle 1: a synchronous clamp deployment admitted faults.
    ZeroFaults {
        /// Offending deployment label.
        deployment: String,
        /// Faulty computations observed.
        faults: u64,
        /// Machine crashes observed.
        crashes: u32,
    },
    /// Oracle 2: the polling deployment exceeded its exposure bound.
    Exposure {
        /// Which bounded quantity was exceeded.
        quantity: ExposureQuantity,
        /// Observed worst case, µs.
        observed_us: u64,
        /// Characterized bound, µs.
        allowed_us: u64,
    },
    /// Oracle 3: `none` and `polling` diverged before any intervention.
    StreamDivergence {
        /// First differing schedule step.
        step: usize,
    },
}

/// The bounded quantities of the exposure oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExposureQuantity {
    /// Unsafe configured-state dwell (write → restore write).
    ConfigDwell,
    /// Rail overhang past a safe configuration (VR latency + slew).
    RailOverhang,
    /// `poll/detection_latency_us` telemetry summary maximum.
    DetectionLatency,
}

impl Violation {
    /// Oracle index (matches [`TelemetryEvent::SoakOracle`]).
    #[must_use]
    pub fn oracle_index(&self) -> u8 {
        match self {
            Violation::ZeroFaults { .. } => 0,
            Violation::Exposure { .. } => 1,
            Violation::StreamDivergence { .. } => 2,
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::ZeroFaults {
                deployment,
                faults,
                crashes,
            } => write!(
                f,
                "zero-faults: {deployment} admitted {faults} faults, {crashes} crashes"
            ),
            Violation::Exposure {
                quantity,
                observed_us,
                allowed_us,
            } => write!(
                f,
                "exposure: {quantity:?} {observed_us} µs exceeds bound {allowed_us} µs"
            ),
            Violation::StreamDivergence { step } => {
                write!(f, "stream-divergence at schedule step {step}")
            }
        }
    }
}

/// A minimal reproducer: the pinned-schema JSON shape written under
/// `results/fuzz-corpus/` and replayed first by every future run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorpusCase {
    /// Schema version ([`CORPUS_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Root seed of the run that recorded the case (provenance).
    pub seed: u64,
    /// CPU model the case reproduces on.
    pub model: CpuModel,
    /// Weakened-polling context (`Some(n)` = the self-test injection
    /// that skips every nth poll), or `None` for a genuine finding.
    pub weaken_skip_every: Option<u32>,
    /// Replay expectation: weakened (self-test) cases must still
    /// violate — pinning the oracle's sensitivity — while genuine
    /// findings must stop violating once fixed.
    pub expect_violation: bool,
    /// The violation observed when the case was recorded.
    pub violation: Violation,
    /// The shrunk schedule.
    pub schedule: CampaignSchedule,
}

/// One shrunk violation in a [`SoakReport`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShrunkViolation {
    /// Campaign index the violation surfaced in.
    pub campaign: u32,
    /// Attack family of the generating schedule.
    pub family: AttackFamily,
    /// The (re-judged) violation on the shrunk schedule.
    pub violation: Violation,
    /// Events in the original schedule.
    pub original_events: usize,
    /// Oracle evaluations the shrink spent.
    pub shrink_evals: u32,
    /// The minimal reproducer.
    pub reproducer: CampaignSchedule,
    /// Corpus file the reproducer was serialized to, if a corpus
    /// directory was given.
    pub corpus_file: Option<String>,
}

/// Outcome of the weakened-polling self-test.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelfTestReport {
    /// The injected weakening (skip every Nth poll).
    pub skip_every: u32,
    /// Whether the oracle caught the weakening.
    pub caught: bool,
    /// Generated campaigns tried before one violated.
    pub attempts: u32,
    /// Events in the violating campaign before shrinking.
    pub original_events: usize,
    /// Events in the shrunk reproducer.
    pub shrunk_events: usize,
    /// Oracle evaluations the shrink spent.
    pub shrink_evals: u32,
    /// The violation the shrunk reproducer still triggers.
    pub violation: Option<Violation>,
    /// The minimal reproducer.
    pub reproducer: Option<CampaignSchedule>,
}

/// One corpus-replay mismatch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorpusFailure {
    /// Corpus file name.
    pub file: String,
    /// What went wrong.
    pub detail: String,
}

/// The soak run's result: byte-deterministic for a fixed seed (worker
/// count never appears in it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoakReport {
    /// Report schema version (shares [`CORPUS_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Scenario root seed.
    pub seed: u64,
    /// Model campaigns ran against.
    pub model: CpuModel,
    /// Randomized campaigns run.
    pub campaigns: u32,
    /// Campaign × deployment cells executed.
    pub cells: u32,
    /// Corpus cases replayed before fuzzing.
    pub corpus_replayed: u32,
    /// Replay mismatches (expected-pass case violated, or
    /// expected-violate case passed).
    pub corpus_failures: Vec<CorpusFailure>,
    /// Shrunk violations from the randomized campaigns.
    pub violations: Vec<ShrunkViolation>,
    /// Self-test outcome, when enabled.
    pub self_test: Option<SelfTestReport>,
}

impl SoakReport {
    /// Whether the run holds the gate: no genuine violations, no
    /// corpus drift, and (when enabled) the self-test caught its
    /// injected weakening.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
            && self.corpus_failures.is_empty()
            && self.self_test.as_ref().is_none_or(|s| s.caught)
    }

    /// Stable pretty JSON (the CLI's output format).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("report serializes");
        s.push('\n');
        s
    }
}

/// Soak-engine errors (machine faults are bugs here, not campaign
/// outcomes — campaigns absorb crashes internally).
#[derive(Debug)]
pub enum SoakError {
    /// A simulated-machine operation failed outside a campaign crash.
    Machine(MachineError),
    /// Corpus directory I/O failed.
    Io(std::io::Error),
}

impl fmt::Display for SoakError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SoakError::Machine(e) => write!(f, "machine error: {e}"),
            SoakError::Io(e) => write!(f, "corpus i/o error: {e}"),
        }
    }
}

impl std::error::Error for SoakError {}

impl From<MachineError> for SoakError {
    fn from(e: MachineError) -> Self {
        SoakError::Machine(e)
    }
}

impl From<std::io::Error> for SoakError {
    fn from(e: std::io::Error) -> Self {
        SoakError::Io(e)
    }
}

/// The four deployment levels every campaign runs against, in judge
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Level {
    None,
    Polling,
    Microcode,
    Hardware,
}

pub(crate) const LEVELS: [Level; 4] = [
    Level::None,
    Level::Polling,
    Level::Microcode,
    Level::Hardware,
];

impl Level {
    pub(crate) fn label(self) -> &'static str {
        match self {
            Level::None => "none",
            Level::Polling => "polling-module",
            Level::Microcode => "microcode",
            Level::Hardware => "hardware-msr",
        }
    }
}

/// Per-step outcome used by the stream-equivalence oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StepRecord {
    at_us: u64,
    faults: u64,
    crashed: bool,
    offset_mv: i32,
    freq_mhz: u32,
    rng_probe: u64,
}

/// One campaign × deployment execution.
#[derive(Debug, Clone)]
pub(crate) struct RunRecord {
    level: Level,
    steps: Vec<StepRecord>,
    faults: u64,
    crashes: u32,
    first_detection: Option<SimTime>,
    detect_latency_max_us: Option<f64>,
    accountant: ExposureAccountant,
    bound: Option<ExposureBound>,
    /// Rendered telemetry profile, captured only on [`BootMode`] runs
    /// that asked for it (the differential sim-vs-replay gate).
    pub(crate) profile_json: Option<String>,
    /// Final poll statistics of the polling level, same capture gate.
    pub(crate) poll_stats: Option<PollStats>,
}

/// How [`run_level_mode`] boots the campaign machine: the plain sim
/// backend, a recording backend appending to a shared transcript, or a
/// replay backend verifying against one section's tape.
#[derive(Debug, Clone, Copy)]
pub(crate) enum BootMode<'a> {
    /// Plain sim boot (what every soak campaign uses).
    Sim,
    /// Record all backend MSR traffic onto the shared tape.
    Record(&'a TraceRecorder),
    /// Re-execute while verifying against the tape section.
    Replay(&'a ReplayCursor),
}

/// A deliberately weakened polling module: delegates to the real
/// Algorithm-3 poller but silently skips every `skip_every`th tick
/// (still re-arming the timer). The self-test injects this and demands
/// the exposure oracle notices the doubled worst-case latency.
struct WeakenedPolling {
    inner: PollingModule,
    period: SimDuration,
    skip_every: u32,
    ticks: u32,
}

impl KernelModule for WeakenedPolling {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn init(&mut self, ctx: &mut ModuleCtx<'_>) -> Option<SimDuration> {
        self.inner.init(ctx)
    }

    fn on_timer(&mut self, ctx: &mut ModuleCtx<'_>) -> Option<SimDuration> {
        self.ticks += 1;
        if self.skip_every > 1 && self.ticks % self.skip_every == 0 {
            return Some(self.period);
        }
        self.inner.on_timer(ctx)
    }

    fn exit(&mut self, ctx: &mut ModuleCtx<'_>) {
        self.inner.exit(ctx);
    }
}

/// The polling configuration a campaign's `polling-module` level uses:
/// the schedule's fuzzed period, plane-aware (the single-read
/// Algorithm-3 mode is evadable by dual-plane campaigns — that
/// evasion is already documented by the plane ablation, so the soak
/// gate holds the *hardened* configuration to its bound).
fn poll_config_for(schedule: &CampaignSchedule) -> PollConfig {
    PollConfig {
        period: SimDuration::from_micros(schedule.poll_period_us),
        planes: vec![Plane::Core, Plane::Cache],
        ..PollConfig::default()
    }
}

/// Executes `schedule` on a freshly booted machine under one
/// deployment level, sampling exposure throughout.
fn run_level(
    scn: &Scenario,
    model: CpuModel,
    map: &CharacterizationMap,
    schedule: &CampaignSchedule,
    level: Level,
    weaken: Option<u32>,
) -> Result<RunRecord, SoakError> {
    run_level_mode(
        scn,
        model,
        map,
        schedule,
        level,
        weaken,
        BootMode::Sim,
        false,
    )
}

/// [`run_level`] with an explicit backend boot mode and optional
/// profile/poll-stats capture. The machine seed is the same for every
/// mode (all three constructors derive it from [`MACHINE_LABEL`]), so
/// sim, record and replay runs execute bit-identically — which is what
/// the differential sim-vs-replay gate asserts.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_level_mode(
    scn: &Scenario,
    model: CpuModel,
    map: &CharacterizationMap,
    schedule: &CampaignSchedule,
    level: Level,
    weaken: Option<u32>,
    boot: BootMode<'_>,
    capture: bool,
) -> Result<RunRecord, SoakError> {
    let mut machine = match boot {
        BootMode::Sim => scn.machine_for(model, MACHINE_LABEL),
        BootMode::Record(rec) => scn.machine_recording(model, MACHINE_LABEL, rec),
        BootMode::Replay(cursor) => scn.machine_replaying(model, MACHINE_LABEL, cursor),
    };
    let sink = Sink::with_event_capacity(1 << 16);
    machine.set_telemetry(sink.clone());
    let mut stats_handle = None;
    let bound = match level {
        Level::None => None,
        Level::Polling => {
            let cfg = poll_config_for(schedule);
            let bound = ExposureBound::for_polling(&cfg);
            let (module, stats) = PollingModule::new(map.clone(), cfg.clone());
            stats_handle = Some(stats);
            match weaken {
                Some(n) if n > 1 => machine.load_module(Box::new(WeakenedPolling {
                    inner: module,
                    period: cfg.period,
                    skip_every: n,
                    ticks: 0,
                }))?,
                _ => machine.load_module(Box::new(module))?,
            }
            Some(bound)
        }
        Level::Microcode => {
            deploy(
                &mut machine,
                map,
                Deployment::Microcode {
                    revision: 0xf5,
                    margin_mv: 5,
                },
            )?;
            Some(ExposureBound {
                detection: SimDuration::ZERO,
                recovery: SimDuration::ZERO,
            })
        }
        Level::Hardware => {
            deploy(&mut machine, map, Deployment::HardwareMsr { margin_mv: 5 })?;
            Some(ExposureBound {
                detection: SimDuration::ZERO,
                recovery: SimDuration::ZERO,
            })
        }
    };

    let dev = MsrDev::open(&machine, CoreId(0))?;
    let mut cpupower = CpuPower::new(&machine);
    let mut acct = ExposureAccountant::new();
    let mut steps = Vec::with_capacity(schedule.events.len());
    let mut faults = 0u64;
    let mut crashes = 0u32;
    let t0 = machine.now();

    for ev in &schedule.events {
        let target = t0 + SimDuration::from_micros(ev.at_us);
        advance_sampling(&mut machine, map, &mut acct, target);
        let mut step_faults = 0u64;
        let mut crashed = false;
        match ev.action {
            ScheduleAction::OffsetWrite { plane, offset_mv } => {
                let req = OcRequest::write_offset(offset_mv, plane.plane()).encode();
                match dev.write(&mut machine, Msr::OC_MAILBOX, req) {
                    Ok(_) => {}
                    Err(e) if is_crash(&e) => crashed = true,
                    Err(e) => return Err(e.into()),
                }
            }
            ScheduleAction::SetFrequency { mhz } => {
                match cpupower.frequency_set(&mut machine, CoreId(0), FreqMhz(mhz)) {
                    Ok(_) => {}
                    Err(e) if is_crash(&e) => crashed = true,
                    Err(e) => return Err(e.into()),
                }
            }
            ScheduleAction::VictimBurst { class, ops } => {
                let now = machine.now();
                match machine
                    .cpu_mut()
                    .run_batch(now, CoreId(0), class.instr_class(), ops)
                {
                    Ok(f) => step_faults = f,
                    Err(PackageError::Crashed) => crashed = true,
                    Err(e) => return Err(MachineError::Package(e).into()),
                }
            }
        }
        if crashed {
            crashes += 1;
            let now = machine.now();
            machine.cpu_mut().reset(now);
        }
        faults += step_faults;
        sample(&mut machine, map, &mut acct);
        let freq_mhz = machine
            .cpu()
            .core_freq(CoreId(0))
            .map_or(0, |f: FreqMhz| f.mhz());
        steps.push(StepRecord {
            at_us: ev.at_us,
            faults: step_faults,
            crashed,
            offset_mv: machine.cpu().core_offset_mv(),
            freq_mhz,
            rng_probe: machine.rng().next_u64(),
        });
    }

    // Tail: give the countermeasure two periods plus the VR constants
    // to finish any in-flight restore before judging exposure.
    let tail = SimDuration::from_micros(2 * schedule.poll_period_us)
        + plugvolt_cpu::package::MAILBOX_SETTLE
        + SimDuration::from_millis(1);
    let end = machine.now() + tail;
    advance_sampling(&mut machine, map, &mut acct, end);
    acct.finish(machine.now());

    let first_detection = sink.with(|reg| {
        reg.events()
            .find(|e| matches!(e.event, TelemetryEvent::Detection { .. }))
            .map(|e| e.at)
    });
    let detect_latency_max_us = sink.with(|reg| {
        let cores = machine.cpu().core_count();
        (0..cores)
            .filter_map(|c| {
                reg.summary(&MetricKey::per_core(
                    "poll",
                    "detection_latency_us",
                    c as u32,
                ))
                .and_then(plugvolt_des::stats::Summary::max)
            })
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.max(v)))
            })
    });

    // A scenario sink watches campaign machines too: the local sink's
    // span aggregates (non-empty only when span tracing is enabled,
    // e.g. by `plugvolt-cli soak --stream`) merge into the scenario
    // tracer in judge order — deterministic, because an attached sink
    // forces the sequential campaign path.
    if let Some(scn_sink) = scn.telemetry() {
        let spans = sink.tracer().snapshot();
        if !spans.is_empty() {
            scn_sink.tracer().absorb(&spans);
        }
    }

    let (profile_json, poll_stats) = if capture {
        machine.publish_trace_drops();
        let profile = sink.profile(level.label()).to_json();
        let stats = stats_handle.as_ref().map(|h| h.borrow().clone());
        (Some(profile), stats)
    } else {
        (None, None)
    };

    Ok(RunRecord {
        level,
        steps,
        faults,
        crashes,
        first_detection,
        detect_latency_max_us,
        accountant: acct,
        bound,
        profile_json,
        poll_stats,
    })
}

/// Advances the machine to `until` in [`SAMPLE`] steps, recording
/// rail/config exposure samples.
fn advance_sampling(
    machine: &mut Machine,
    map: &CharacterizationMap,
    acct: &mut ExposureAccountant,
    until: SimTime,
) {
    while machine.now() < until {
        let left = until.saturating_duration_since(machine.now());
        machine.advance(left.min(SAMPLE));
        sample(machine, map, acct);
    }
}

/// Takes one exposure sample: classifies the analog rail and the
/// configured offset register at the instantaneous frequency.
fn sample(machine: &mut Machine, map: &CharacterizationMap, acct: &mut ExposureAccountant) {
    let now = machine.now();
    let Ok(f) = machine.cpu().core_freq(CoreId(0)) else {
        return;
    };
    let nominal = machine.cpu().spec().nominal_voltage_mv(f);
    let effective = nominal - machine.cpu().core_voltage_mv(now);
    #[allow(clippy::cast_possible_truncation)]
    let rail_unsafe =
        effective > 2.0 && map.classify(f, -(effective.ceil() as i32)) != StateClass::Safe;
    let config_unsafe = map.classify(f, machine.cpu().core_offset_mv()) != StateClass::Safe;
    acct.record(now, rail_unsafe, config_unsafe);
}

/// Runs one campaign across all four levels and judges the oracles.
/// Returns the first violation, if any.
fn judge_campaign(
    scn: &Scenario,
    model: CpuModel,
    map: &CharacterizationMap,
    schedule: &CampaignSchedule,
    weaken: Option<u32>,
) -> Result<Option<Violation>, SoakError> {
    let mut runs = Vec::with_capacity(LEVELS.len());
    for level in LEVELS {
        runs.push(run_level(scn, model, map, schedule, level, weaken)?);
    }
    Ok(judge(&runs))
}

/// The three oracles, in severity order.
pub(crate) fn judge(runs: &[RunRecord]) -> Option<Violation> {
    // Oracle 1: the synchronous clamps admit nothing, ever.
    for run in runs {
        if matches!(run.level, Level::Microcode | Level::Hardware)
            && (run.faults > 0 || run.crashes > 0)
        {
            return Some(Violation::ZeroFaults {
                deployment: run.level.label().to_owned(),
                faults: run.faults,
                crashes: run.crashes,
            });
        }
    }
    // Oracle 2: polling exposure within the characterized bound.
    let polling = runs.iter().find(|r| r.level == Level::Polling)?;
    if let Some(bound) = &polling.bound {
        let us = |d: SimDuration| (d.as_picos() / 1_000_000) as u64;
        if let Some((observed, allowed)) = polling.accountant.violates(bound) {
            let quantity = if observed == polling.accountant.worst_config_dwell() {
                ExposureQuantity::ConfigDwell
            } else {
                ExposureQuantity::RailOverhang
            };
            return Some(Violation::Exposure {
                quantity,
                observed_us: us(observed),
                allowed_us: us(allowed),
            });
        }
        let allowed_us = bound.detection.as_picos() as f64 / 1e6;
        if let Some(latency) = polling.detect_latency_max_us {
            if latency > allowed_us {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                return Some(Violation::Exposure {
                    quantity: ExposureQuantity::DetectionLatency,
                    observed_us: latency.ceil() as u64,
                    allowed_us: allowed_us.ceil() as u64,
                });
            }
        }
    }
    // Oracle 3: none vs polling stream-equivalent up to the first
    // intervention.
    let none = runs.iter().find(|r| r.level == Level::None)?;
    let cutoff = polling.first_detection;
    for (i, (a, b)) in none.steps.iter().zip(&polling.steps).enumerate() {
        if let Some(cut) = cutoff {
            let at = SimTime::ZERO + SimDuration::from_micros(a.at_us);
            if at >= cut {
                break;
            }
        }
        if a != b {
            return Some(Violation::StreamDivergence { step: i });
        }
    }
    None
}

/// Delta-debugs `schedule` to a minimal schedule that still violates:
/// greedy event drops to a fixpoint, then ramp halving, then interval
/// widening. Deterministic; spends at most `budget` oracle
/// evaluations. Returns the shrunk schedule, its violation, and the
/// evaluations spent.
fn shrink(
    scn: &Scenario,
    model: CpuModel,
    map: &CharacterizationMap,
    schedule: &CampaignSchedule,
    initial: Violation,
    weaken: Option<u32>,
    budget: u32,
) -> Result<(CampaignSchedule, Violation, u32), SoakError> {
    let mut cur = schedule.clone();
    let mut cur_v = initial;
    let mut evals = 0u32;
    let try_step =
        |cand: &CampaignSchedule, evals: &mut u32| -> Result<Option<Violation>, SoakError> {
            *evals += 1;
            judge_campaign(scn, model, map, cand, weaken)
        };
    // Pass 1: drop events until no single drop preserves the violation.
    'drops: while evals < budget {
        for i in 0..cur.len() {
            if evals >= budget {
                break 'drops;
            }
            let cand = cur.without_event(i);
            if let Some(v) = try_step(&cand, &mut evals)? {
                cur = cand;
                cur_v = v;
                continue 'drops;
            }
        }
        break;
    }
    // Pass 2: halve ramps while the violation survives.
    let base_mhz = model.spec().freq_table.min().mhz();
    for _ in 0..4 {
        if evals >= budget {
            break;
        }
        let cand = cur.with_halved_ramps(base_mhz);
        if cand == cur {
            break;
        }
        match try_step(&cand, &mut evals)? {
            Some(v) => {
                cur = cand;
                cur_v = v;
            }
            None => break,
        }
    }
    // Pass 3: widen event intervals onto a coarse grid.
    if evals < budget {
        let cand = cur.with_widened_intervals(500);
        if cand != cur {
            if let Some(v) = try_step(&cand, &mut evals)? {
                cur = cand;
                cur_v = v;
            }
        }
    }
    Ok((cur, cur_v, evals))
}

/// FNV-1a over the canonical JSON: the stable corpus filename digest.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The corpus filename for a case.
#[must_use]
pub fn corpus_file_name(case: &CorpusCase) -> String {
    let canonical = serde_json::to_string(case).expect("case serializes");
    format!(
        "{}-{:016x}.json",
        case.schedule.family.label(),
        fnv1a(canonical.as_bytes())
    )
}

/// Replays every corpus case (sorted by filename) and checks its
/// recorded expectation still holds.
fn replay_corpus(
    scn: &Scenario,
    model: CpuModel,
    map: &CharacterizationMap,
    dir: &Path,
) -> Result<(u32, Vec<CorpusFailure>), SoakError> {
    let mut files: Vec<_> = match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect(),
        // No corpus yet: nothing to replay.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e.into()),
    };
    files.sort();
    let mut failures = Vec::new();
    let mut replayed = 0u32;
    for path in files {
        let name = path
            .file_name()
            .map_or_else(String::new, |n| n.to_string_lossy().into_owned());
        let fail = |detail: String| CorpusFailure {
            file: name.clone(),
            detail,
        };
        let text = std::fs::read_to_string(&path)?;
        let case: CorpusCase = match serde_json::from_str(&text) {
            Ok(c) => c,
            Err(e) => {
                failures.push(fail(format!("unparseable case: {e}")));
                continue;
            }
        };
        if case.schema_version != CORPUS_SCHEMA_VERSION {
            failures.push(fail(format!(
                "schema v{} (this build replays v{CORPUS_SCHEMA_VERSION})",
                case.schema_version
            )));
            continue;
        }
        replayed += 1;
        let got = judge_campaign(scn, model, map, &case.schedule, case.weaken_skip_every)?;
        match (case.expect_violation, got) {
            (true, None) => failures.push(fail(
                "expected the oracle to still catch this weakened reproducer; it passed".into(),
            )),
            (false, Some(v)) => failures.push(fail(format!(
                "previously fixed reproducer violates again: {v}"
            ))),
            _ => {}
        }
    }
    Ok((replayed, failures))
}

/// Runs the full soak: corpus replay, randomized differential
/// campaigns (parallel, worker-count independent), the self-test, and
/// corpus serialization of anything shrunk.
///
/// A telemetry sink on `scn` receives per-campaign
/// [`TelemetryEvent::SoakCampaign`]/[`TelemetryEvent::SoakOracle`]
/// events and forces the sequential path (the sink is
/// single-threaded).
///
/// # Errors
///
/// Machine errors outside campaign crashes, and corpus I/O errors.
pub fn run_soak(
    scn: &Scenario,
    cfg: &SoakConfig,
    corpus_dir: Option<&Path>,
) -> Result<SoakReport, SoakError> {
    run_soak_streaming(scn, cfg, corpus_dir, None)
}

/// [`run_soak`] with a streaming progress observer: `progress` is
/// invoked with the number of completed campaigns after each one, on
/// the caller thread (streaming runs are sequential — the observer
/// typically polls a [`plugvolt_telemetry::StreamCursor`] against the
/// scenario sink and writes JSONL frames). Campaign progress counters
/// (`soak/campaigns`, `soak/cells`, `soak/violations`) are emitted on
/// the scenario sink as the run advances, so frames carry real deltas.
///
/// # Errors
///
/// Same as [`run_soak`].
pub fn run_soak_streaming(
    scn: &Scenario,
    cfg: &SoakConfig,
    corpus_dir: Option<&Path>,
    mut progress: Option<&mut dyn FnMut(u32)>,
) -> Result<SoakReport, SoakError> {
    let map = scn.quick_map(cfg.model);
    let spec = cfg.model.spec();

    // Stage 1: replay the pinned corpus first.
    let (corpus_replayed, corpus_failures) = match corpus_dir {
        Some(dir) => replay_corpus(scn, cfg.model, &map, dir)?,
        None => (0, Vec::new()),
    };

    // Stage 2: generate this run's campaigns from labelled streams
    // (generation stays on the caller thread: schedules must not
    // depend on worker claiming order).
    let schedules: Vec<CampaignSchedule> = (0..cfg.campaigns)
        .map(|i| {
            let family = AttackFamily::ALL[i as usize % AttackFamily::ALL.len()];
            let mut rng = scn.rng(&format!("soak/campaign{i}/schedule"));
            CampaignSchedule::generate(family, &spec, &mut rng)
        })
        .collect();

    // Stage 3: run them differentially, shrink any violation.
    let campaign = |scn: &Scenario, i: usize| -> Result<Option<ShrunkViolation>, SoakError> {
        let schedule = &schedules[i];
        if let Some(sink) = scn.telemetry() {
            let at = SimTime::ZERO + SimDuration::from_micros(i as u64);
            sink.emit(
                at,
                TelemetryEvent::SoakCampaign {
                    campaign: i as u64,
                    family: AttackFamily::ALL
                        .iter()
                        .position(|f| *f == schedule.family)
                        .unwrap_or(0) as u8,
                    events: schedule.len() as u32,
                },
            );
        }
        let violation = judge_campaign(scn, cfg.model, &map, schedule, None)?;
        if let Some(sink) = scn.telemetry() {
            let at = SimTime::ZERO + SimDuration::from_micros(i as u64);
            let (oracle, ok) = violation
                .as_ref()
                .map_or((0, true), |v| (v.oracle_index(), false));
            sink.emit(
                at,
                TelemetryEvent::SoakOracle {
                    campaign: i as u64,
                    oracle,
                    ok,
                },
            );
            sink.add(MetricKey::global("soak", "campaigns"), 1);
            sink.add(MetricKey::global("soak", "cells"), LEVELS.len() as u64);
            if violation.is_some() {
                sink.add(MetricKey::global("soak", "violations"), 1);
            }
        }
        let Some(v) = violation else { return Ok(None) };
        let (reproducer, violation, shrink_evals) =
            shrink(scn, cfg.model, &map, schedule, v, None, cfg.shrink_budget)?;
        Ok(Some(ShrunkViolation {
            campaign: i as u32,
            family: schedule.family,
            violation,
            original_events: schedule.len(),
            shrink_evals,
            reproducer,
            corpus_file: None,
        }))
    };
    let outcomes: Vec<Option<ShrunkViolation>> = match progress.as_deref_mut() {
        // Streaming: sequential by construction, frame after each
        // campaign.
        Some(observe) => {
            let mut out = Vec::with_capacity(schedules.len());
            for i in 0..schedules.len() {
                out.push(campaign(scn, i)?);
                observe(i as u32 + 1);
            }
            out
        }
        None => run_cells(scn, cfg.workers, schedules.len(), campaign)?,
    };
    let mut violations: Vec<ShrunkViolation> = outcomes.into_iter().flatten().collect();

    // Stage 4: the self-test — inject the weakened poller and demand
    // the exposure oracle catches and shrinks it.
    let self_test = if cfg.self_test {
        Some(run_self_test(scn, cfg, &map)?)
    } else {
        None
    };

    // Stage 5: serialize reproducers into the corpus.
    if let Some(dir) = corpus_dir {
        let mut cases: Vec<(Option<usize>, CorpusCase)> = Vec::new();
        for (vi, v) in violations.iter().enumerate() {
            cases.push((
                Some(vi),
                CorpusCase {
                    schema_version: CORPUS_SCHEMA_VERSION,
                    seed: scn.root_seed(),
                    model: cfg.model,
                    weaken_skip_every: None,
                    expect_violation: false,
                    violation: v.violation.clone(),
                    schedule: v.reproducer.clone(),
                },
            ));
        }
        if let Some(st) = &self_test {
            if let (true, Some(repro), Some(v)) = (st.caught, &st.reproducer, &st.violation) {
                cases.push((
                    None,
                    CorpusCase {
                        schema_version: CORPUS_SCHEMA_VERSION,
                        seed: scn.root_seed(),
                        model: cfg.model,
                        weaken_skip_every: Some(st.skip_every),
                        expect_violation: true,
                        violation: v.clone(),
                        schedule: repro.clone(),
                    },
                ));
            }
        }
        if !cases.is_empty() {
            std::fs::create_dir_all(dir)?;
            for (vi, case) in cases {
                let name = corpus_file_name(&case);
                let path = dir.join(&name);
                if !path.exists() {
                    let mut json = serde_json::to_string_pretty(&case).expect("case serializes");
                    json.push('\n');
                    std::fs::write(&path, json)?;
                }
                if let Some(vi) = vi {
                    violations[vi].corpus_file = Some(name);
                }
            }
        }
    }

    Ok(SoakReport {
        schema_version: CORPUS_SCHEMA_VERSION,
        seed: scn.root_seed(),
        model: cfg.model,
        campaigns: cfg.campaigns,
        cells: cfg.campaigns * LEVELS.len() as u32,
        corpus_replayed,
        corpus_failures,
        violations,
        self_test,
    })
}

/// Self-test poll period: slow enough that a skipped tick pushes the
/// worst-case latency far past the bound's slop.
const SELF_TEST_PERIOD_US: u64 = 400;

/// Generates campaigns until one violates under the weakened poller,
/// then shrinks it.
fn run_self_test(
    scn: &Scenario,
    cfg: &SoakConfig,
    map: &CharacterizationMap,
) -> Result<SelfTestReport, SoakError> {
    let spec = cfg.model.spec();
    let weaken = Some(cfg.weaken_skip_every);
    let mut attempts = 0u32;
    for k in 0..8u32 {
        let family = AttackFamily::ALL[k as usize % AttackFamily::ALL.len()];
        let mut rng = scn.rng(&format!("soak/self-test/{k}"));
        let mut schedule = CampaignSchedule::generate(family, &spec, &mut rng);
        schedule.poll_period_us = SELF_TEST_PERIOD_US;
        attempts += 1;
        if let Some(v) = judge_campaign(scn, cfg.model, map, &schedule, weaken)? {
            let (reproducer, violation, shrink_evals) =
                shrink(scn, cfg.model, map, &schedule, v, weaken, cfg.shrink_budget)?;
            return Ok(SelfTestReport {
                skip_every: cfg.weaken_skip_every,
                caught: true,
                attempts,
                original_events: schedule.len(),
                shrunk_events: reproducer.len(),
                shrink_evals,
                violation: Some(violation),
                reproducer: Some(reproducer),
            });
        }
    }
    Ok(SelfTestReport {
        skip_every: cfg.weaken_skip_every,
        caught: false,
        attempts,
        original_events: 0,
        shrunk_events: 0,
        shrink_evals: 0,
        violation: None,
        reproducer: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(campaigns: u32, self_test: bool) -> SoakConfig {
        SoakConfig {
            model: CpuModel::CometLake,
            campaigns,
            workers: 1,
            self_test,
            weaken_skip_every: 2,
            shrink_budget: 200,
        }
    }

    #[test]
    fn sound_deployments_hold_all_oracles() {
        let scn = Scenario::new();
        let report = run_soak(&scn, &quick_cfg(5, false), None).expect("runs");
        assert!(
            report.violations.is_empty(),
            "unexpected violations: {:?}",
            report.violations
        );
        assert!(report.passed());
        assert_eq!(report.cells, 20);
    }

    #[test]
    fn self_test_catches_and_shrinks_the_weakened_poller() {
        let scn = Scenario::new();
        let report = run_soak(&scn, &quick_cfg(0, true), None).expect("runs");
        let st = report.self_test.as_ref().expect("self-test ran");
        assert!(st.caught, "oracle missed the weakened poller");
        assert!(
            st.shrunk_events <= 8,
            "reproducer has {} events (> 8): {:?}",
            st.shrunk_events,
            st.reproducer
        );
        assert!(st.shrunk_events >= 1);
        assert!(
            matches!(st.violation, Some(Violation::Exposure { .. })),
            "expected an exposure violation, got {:?}",
            st.violation
        );
        // A weakened-poller reproducer must *pass* when the real,
        // unweakened module runs.
        let repro = st.reproducer.clone().expect("reproducer");
        let map = scn.quick_map(CpuModel::CometLake);
        let healthy =
            judge_campaign(&scn, CpuModel::CometLake, &map, &repro, None).expect("judges");
        assert!(healthy.is_none(), "healthy poller violates: {healthy:?}");
    }

    #[test]
    fn corpus_roundtrip_and_replay() {
        let scn = Scenario::new();
        let dir = std::env::temp_dir().join(format!(
            "plugvolt-soak-test-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let report = run_soak(&scn, &quick_cfg(0, true), Some(&dir)).expect("runs");
        assert!(report.passed());
        let files: Vec<_> = std::fs::read_dir(&dir)
            .expect("corpus dir exists")
            .filter_map(Result::ok)
            .collect();
        assert_eq!(files.len(), 1, "one self-test reproducer serialized");
        // Second run replays the corpus and the expectation holds.
        let again = run_soak(&scn, &quick_cfg(0, false), Some(&dir)).expect("runs");
        assert_eq!(again.corpus_replayed, 1);
        assert!(
            again.corpus_failures.is_empty(),
            "{:?}",
            again.corpus_failures
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_json_is_stable() {
        let scn = Scenario::new();
        let a = run_soak(&scn, &quick_cfg(3, false), None).expect("runs");
        let b = run_soak(&scn, &quick_cfg(3, false), None).expect("runs");
        assert_eq!(a.to_json(), b.to_json());
    }
}
