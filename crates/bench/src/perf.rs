//! The deterministic in-tree perf harness behind `plugvolt-cli bench`.
//!
//! The workspace's Criterion dependency is a no-op shim (the build is
//! hermetic), so perf claims need their own gate. This module times a
//! fixed set of workloads — the full-grid characterization sweep, the
//! Table 2 overhead suite, and event-queue microbenches — over *fixed,
//! seeded* iteration counts, and serializes the result as a
//! pinned-schema [`BenchReport`] (committed as `BENCH.json` at the
//! repository root, one snapshot per PR).
//!
//! The workloads are deterministic: the same simulation work runs on
//! every invocation, so the only run-to-run variance is host timing
//! noise. Absolute nanoseconds are machine-dependent and only
//! meaningful within one report; the `speedup` ratios (analytic path vs
//! slack-table path over the *same* workload) are what CI compares
//! across reports, because a ratio of two measurements from the same
//! host/run largely cancels the machine out.

use crate::scenario::Scenario;
use plugvolt::characterize::{characterize, SweepConfig};
use plugvolt_cpu::model::CpuModel;
use plugvolt_cpu::slack;
use plugvolt_des::queue::EventQueue;
use plugvolt_des::time::SimTime;
use plugvolt_workloads::overhead::{run_table2, OverheadConfig};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Schema version of [`BenchReport`]. Bump on any breaking change to
/// the serialized layout and update the validation in `validate`.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// Bench names every well-formed report must contain, in report order.
pub const REQUIRED_BENCHES: [&str; 5] = [
    "characterize-grid",
    "run-table2",
    "queue-schedule-pop",
    "queue-cancel-heavy",
    "span-overhead",
];

/// One timed workload.
///
/// Every required bench carries a before/after pair: the sweep benches
/// toggle the slack-table/hot-telemetry optimizations, and the queue
/// microbenches re-run the same workload on a reconstruction of the
/// pre-optimization queue (fat boxed-callback heap nodes, linear-scan
/// cancellation). `speedup` is the host-normalized ratio CI gates on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRow {
    /// Stable bench name (see [`REQUIRED_BENCHES`]).
    pub name: String,
    /// Deterministic work units timed (grid points, suite benchmarks,
    /// queue operations) — makes the row self-describing when the
    /// workload size changes between smoke and full mode.
    pub work_units: u64,
    /// Wall-clock for the unoptimized path over the same workload
    /// (analytic slack recomputation), when the bench has one.
    pub baseline_ns: Option<u64>,
    /// Wall-clock for the current (optimized) path.
    pub measured_ns: u64,
    /// `baseline_ns / measured_ns`, when the bench has a baseline.
    pub speedup: Option<f64>,
}

/// A full harness run: the committed `BENCH.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Always [`BENCH_SCHEMA_VERSION`] for reports this build writes.
    pub schema_version: u32,
    /// Whether this was a `--smoke` (reduced-workload) run.
    pub smoke: bool,
    /// One row per bench, in [`REQUIRED_BENCHES`] order.
    pub benches: Vec<BenchRow>,
}

impl BenchReport {
    /// Serializes the report as pretty JSON with a trailing newline.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("report serializes");
        s.push('\n');
        s
    }

    /// Finds a bench row by name.
    #[must_use]
    pub fn bench(&self, name: &str) -> Option<&BenchRow> {
        self.benches.iter().find(|b| b.name == name)
    }

    /// Validates the pinned schema: version match, every required bench
    /// present, and a positive speedup wherever a baseline was timed.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema_version != BENCH_SCHEMA_VERSION {
            return Err(format!(
                "schema_version {} (this build expects {BENCH_SCHEMA_VERSION})",
                self.schema_version
            ));
        }
        for name in REQUIRED_BENCHES {
            let row = self
                .bench(name)
                .ok_or_else(|| format!("required bench '{name}' missing"))?;
            if row.measured_ns == 0 || row.work_units == 0 {
                return Err(format!("bench '{name}' has zero time or work"));
            }
            if row.baseline_ns.is_none() || row.speedup.is_none() {
                return Err(format!(
                    "bench '{name}' is missing its reference-arm baseline/speedup \
                     (every required bench times a before/after pair)"
                ));
            }
            if let Some(s) = row.speedup {
                if !s.is_finite() || s <= 0.0 {
                    return Err(format!("bench '{name}' has a degenerate speedup {s}"));
                }
            }
        }
        Ok(())
    }

    /// Compares this (current) report against a committed `baseline`
    /// report and returns the names of benches whose speedup regressed
    /// by more than 2× (i.e. the optimization decayed to less than half
    /// its recorded ratio). Speedups are host-normalized ratios, so the
    /// comparison is meaningful across machines and across smoke/full
    /// workload sizes.
    #[must_use]
    pub fn regressions_against(&self, baseline: &BenchReport) -> Vec<String> {
        let mut regressed = Vec::new();
        for base in &baseline.benches {
            let Some(base_speedup) = base.speedup else {
                continue;
            };
            let Some(current) = self.bench(&base.name) else {
                regressed.push(format!("{} (bench disappeared)", base.name));
                continue;
            };
            let current_speedup = current.speedup.unwrap_or(1.0);
            if current_speedup * 2.0 < base_speedup {
                regressed.push(format!(
                    "{} (speedup {current_speedup:.2}x, baseline recorded {base_speedup:.2}x)",
                    base.name
                ));
            }
        }
        regressed
    }
}

/// Runs the whole harness. `smoke` shrinks every workload (coarse sweep
/// grid, divided Table 2 suite, fewer queue ops) so CI can gate on it
/// in seconds; the full run is what gets committed as `BENCH.json`.
#[must_use]
pub fn run(smoke: bool) -> BenchReport {
    let benches = vec![
        bench_characterize(smoke),
        bench_table2(smoke),
        bench_queue_schedule_pop(smoke),
        bench_queue_cancel_heavy(smoke),
        bench_span_overhead(smoke),
    ];
    BenchReport {
        schema_version: BENCH_SCHEMA_VERSION,
        smoke,
        benches,
    }
}

/// Times one closure, returning (wall ns, closure result).
fn time<T>(f: impl FnOnce() -> T) -> (u64, T) {
    let start = Instant::now();
    let out = f();
    let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    (ns, out)
}

/// Times `f` over `reps` repetitions and returns the minimum wall time
/// with the final result. The workloads are deterministic — every rep
/// does identical work — so the minimum is the rep least disturbed by
/// the host (scheduler preemption, frequency transitions), which is the
/// stablest estimator this side of a dedicated lab machine.
fn time_best<T>(reps: u32, mut f: impl FnMut() -> T) -> (u64, T) {
    let (mut best_ns, mut out) = time(&mut f);
    for _ in 1..reps {
        let (ns, next) = time(&mut f);
        best_ns = best_ns.min(ns);
        out = next;
    }
    (best_ns, out)
}

/// Puts the simulator in its pre-optimization configuration for the
/// duration of `f`: analytic slack math (no precomputed tables) and the
/// legacy per-access telemetry path (owned-key registry probe on every
/// MSR access). This is the "before" arm of every speedup row; the
/// "after" arm is the default configuration. Results are asserted
/// identical between the two arms.
fn legacy_mode<T>(f: impl FnOnce() -> T) -> T {
    slack::set_tables_enabled(false);
    plugvolt_telemetry::set_hot_path_enabled(false);
    let out = f();
    plugvolt_telemetry::set_hot_path_enabled(true);
    slack::set_tables_enabled(true);
    out
}

/// Characterization sweep: the paper's S1 grid, legacy vs optimized.
///
/// The shared table is pre-built outside both timed regions — the
/// one-time build cost is amortized over a process lifetime and is
/// reported by telemetry (`SlackTableBuilt`), not here.
fn bench_characterize(smoke: bool) -> BenchRow {
    let model = CpuModel::CometLake;
    let cfg = if smoke {
        SweepConfig::coarse()
    } else {
        SweepConfig::default()
    };
    let _warm = slack::shared_table(model);
    let sweep = |scn: &Scenario| {
        let mut machine = scn.machine(model);
        characterize(&mut machine, &cfg).expect("characterization completes")
    };

    let scn = Scenario::new();
    let reps = if smoke { 1 } else { 5 };
    let (baseline_ns, run_a) = legacy_mode(|| time_best(reps, || sweep(&scn)));
    let (measured_ns, run_b) = time_best(reps, || sweep(&scn));
    assert_eq!(
        run_a.records, run_b.records,
        "slack table changed characterization results"
    );
    BenchRow {
        name: "characterize-grid".to_owned(),
        work_units: run_b.records.len() as u64,
        baseline_ns: Some(baseline_ns),
        measured_ns,
        speedup: Some(baseline_ns as f64 / measured_ns as f64),
    }
}

/// Table 2 overhead suite, analytic vs table.
fn bench_table2(smoke: bool) -> BenchRow {
    let cfg = OverheadConfig {
        work_divisor: if smoke { 100 } else { 1 },
        ..OverheadConfig::default()
    };
    let _warm = slack::shared_table(cfg.model);
    let reps = if smoke { 1 } else { 3 };
    let (baseline_ns, table_a) =
        legacy_mode(|| time_best(reps, || run_table2(&cfg).expect("table2 completes")));
    let (measured_ns, table_b) = time_best(reps, || run_table2(&cfg).expect("table2 completes"));
    assert_eq!(table_a, table_b, "slack table changed Table 2 results");
    BenchRow {
        name: "run-table2".to_owned(),
        work_units: table_b.rows.len() as u64,
        baseline_ns: Some(baseline_ns),
        measured_ns,
        speedup: Some(baseline_ns as f64 / measured_ns as f64),
    }
}

/// Span-tracer overhead: the Table 2 suite with span tracing off
/// (baseline arm, the default configuration) vs on (measured arm).
///
/// Unlike the other rows this gates a *cost ceiling*, not a win: the
/// ratio is expected to sit near (and slightly below) 1.0, and the
/// decay gate trips if instrumentation on the hot paths ever makes the
/// traced run more than ~2× slower relative to the committed report.
/// The machines inside `run_table2` boot private sinks whose tracers
/// read [`plugvolt_telemetry::span_tracing_default`], so flipping the
/// global default is what arms the measured run.
fn bench_span_overhead(smoke: bool) -> BenchRow {
    let cfg = OverheadConfig {
        work_divisor: if smoke { 100 } else { 1 },
        ..OverheadConfig::default()
    };
    let _warm = slack::shared_table(cfg.model);
    let reps = if smoke { 1 } else { 3 };
    let (baseline_ns, table_off) = time_best(reps, || run_table2(&cfg).expect("table2 completes"));
    plugvolt_telemetry::set_span_tracing_default(true);
    let (measured_ns, table_on) = time_best(reps, || run_table2(&cfg).expect("table2 completes"));
    plugvolt_telemetry::set_span_tracing_default(false);
    assert_eq!(
        table_off, table_on,
        "span tracing changed Table 2 results (recording must stay sim-cost-free)"
    );
    BenchRow {
        name: "span-overhead".to_owned(),
        work_units: table_on.rows.len() as u64,
        baseline_ns: Some(baseline_ns),
        measured_ns,
        speedup: Some(baseline_ns as f64 / measured_ns as f64),
    }
}

/// Deterministic pseudo-times for the queue microbenches (an xorshift
/// walk; no host randomness, so every run schedules the same events).
fn pseudo_times(n: u64) -> impl Iterator<Item = SimTime> {
    let mut x = 0x0DAC_2024_u64;
    (0..n).map(move |_| {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        SimTime::from_picos(x % 1_000_000_000)
    })
}

/// A reconstruction of the pre-optimization event queue, kept as the
/// "before" arm of the queue microbenches: one `BinaryHeap` node per
/// event carrying a *boxed* callback allocated at schedule time (the
/// fat-node layout the slab redesign removed), and cancellation that
/// validates the id with a linear `heap.iter().any` scan (the shape
/// that made cancel-heavy workloads quadratic).
mod refqueue {
    use plugvolt_des::time::SimTime;
    use std::cmp::Reverse;
    use std::collections::{BTreeSet, BinaryHeap};

    type Callback = Box<dyn FnOnce(&mut u64)>;

    struct Node {
        at: SimTime,
        seq: u64,
        f: Callback,
    }

    impl PartialEq for Node {
        fn eq(&self, other: &Self) -> bool {
            (self.at, self.seq) == (other.at, other.seq)
        }
    }
    impl Eq for Node {}
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            (self.at, self.seq).cmp(&(other.at, other.seq))
        }
    }

    pub struct RefQueue {
        heap: BinaryHeap<Reverse<Node>>,
        next_seq: u64,
        cancelled: BTreeSet<u64>,
    }

    impl RefQueue {
        pub fn new() -> Self {
            RefQueue {
                heap: BinaryHeap::new(),
                next_seq: 0,
                cancelled: BTreeSet::new(),
            }
        }

        pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut u64) + 'static) -> u64 {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Reverse(Node {
                at,
                seq,
                f: Box::new(f),
            }));
            seq
        }

        pub fn cancel(&mut self, id: u64) -> bool {
            // The historical O(pending) membership probe.
            if self.heap.iter().any(|Reverse(n)| n.seq == id) && !self.cancelled.contains(&id) {
                self.cancelled.insert(id);
                true
            } else {
                false
            }
        }

        pub fn pop_due(&mut self, limit: SimTime) -> Option<(SimTime, Callback)> {
            while let Some(Reverse(node)) = self.heap.pop() {
                if self.cancelled.remove(&node.seq) {
                    continue;
                }
                if node.at > limit {
                    self.heap.push(Reverse(node));
                    return None;
                }
                return Some((node.at, node.f));
            }
            None
        }
    }
}

/// Schedule `n` events at scattered times, then pop them all in order.
/// Baseline arm: the fat-node boxed-callback heap.
fn bench_queue_schedule_pop(smoke: bool) -> BenchRow {
    let n: u64 = if smoke { 100_000 } else { 1_000_000 };
    let (baseline_ns, ref_popped) = time(|| {
        let mut q = refqueue::RefQueue::new();
        for at in pseudo_times(n) {
            q.schedule_at(at, |w| *w += 1);
        }
        let mut world = 0u64;
        while let Some((_, f)) = q.pop_due(SimTime::MAX) {
            f(&mut world);
        }
        world
    });
    let (measured_ns, popped) = time(|| {
        let mut q: EventQueue<u64> = EventQueue::new();
        for at in pseudo_times(n) {
            q.schedule_at(at, |w, _| *w += 1);
        }
        let mut world = 0u64;
        while let Some((_, f)) = q.pop_due(SimTime::MAX) {
            f(&mut world, &mut q);
        }
        world
    });
    assert_eq!(popped, n);
    assert_eq!(ref_popped, popped, "reference queue disagrees on results");
    BenchRow {
        name: "queue-schedule-pop".to_owned(),
        work_units: 2 * n,
        baseline_ns: Some(baseline_ns),
        measured_ns,
        speedup: Some(baseline_ns as f64 / measured_ns as f64),
    }
}

/// Schedule `n` events, cancel every other one, pop the survivors — the
/// workload the old `heap.iter().any` cancel scan made quadratic.
///
/// Sized so the O(n)-cancel reference arm finishes in under a second:
/// its cost grows as n²/4 id comparisons, so n stays far below the
/// schedule-pop workload. Unlike the other benches, the workload does
/// NOT shrink in smoke mode — the reference arm is quadratic, so its
/// speedup ratio only compares across reports when the size is
/// identical, and the decay gate diffs smoke runs against the committed
/// full report.
fn bench_queue_cancel_heavy(smoke: bool) -> BenchRow {
    let _ = smoke;
    let n: u64 = 60_000;
    let (baseline_ns, ref_popped) = time(|| {
        let mut q = refqueue::RefQueue::new();
        let ids: Vec<_> = pseudo_times(n)
            .map(|at| q.schedule_at(at, |w| *w += 1))
            .collect();
        for id in ids.iter().step_by(2) {
            assert!(q.cancel(*id), "pending event cancels");
        }
        let mut world = 0u64;
        while let Some((_, f)) = q.pop_due(SimTime::MAX) {
            f(&mut world);
        }
        world
    });
    let (measured_ns, popped) = time(|| {
        let mut q: EventQueue<u64> = EventQueue::new();
        let ids: Vec<_> = pseudo_times(n)
            .map(|at| q.schedule_at(at, |w, _| *w += 1))
            .collect();
        for id in ids.iter().step_by(2) {
            assert!(q.cancel(*id), "pending event cancels");
        }
        let mut world = 0u64;
        while let Some((_, f)) = q.pop_due(SimTime::MAX) {
            f(&mut world, &mut q);
        }
        world
    });
    assert_eq!(popped, n - n.div_ceil(2));
    assert_eq!(ref_popped, popped, "reference queue disagrees on results");
    BenchRow {
        name: "queue-cancel-heavy".to_owned(),
        work_units: 2 * n + n / 2,
        baseline_ns: Some(baseline_ns),
        measured_ns,
        speedup: Some(baseline_ns as f64 / measured_ns as f64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        BenchReport {
            schema_version: BENCH_SCHEMA_VERSION,
            smoke: true,
            benches: REQUIRED_BENCHES
                .iter()
                .map(|name| BenchRow {
                    name: (*name).to_owned(),
                    work_units: 10,
                    baseline_ns: Some(400),
                    measured_ns: 100,
                    speedup: Some(4.0),
                })
                .collect(),
        }
    }

    #[test]
    fn sample_report_validates_and_round_trips() {
        let report = sample_report();
        report.validate().expect("well-formed report");
        let back: BenchReport =
            serde_json::from_str(&report.to_json()).expect("report deserializes");
        assert_eq!(back, report);
    }

    #[test]
    fn validation_rejects_schema_and_shape_violations() {
        let mut report = sample_report();
        report.schema_version += 1;
        assert!(report.validate().is_err());

        let mut report = sample_report();
        report.benches.remove(0);
        assert!(report.validate().unwrap_err().contains("missing"));

        let mut report = sample_report();
        report.benches[1].speedup = Some(f64::NAN);
        assert!(report.validate().unwrap_err().contains("degenerate"));
    }

    #[test]
    fn regression_gate_trips_only_past_2x() {
        let baseline = sample_report();
        let mut current = sample_report();
        // 4.0x -> 2.1x: within the 2x band, no regression.
        current.benches[0].speedup = Some(2.1);
        assert!(current.regressions_against(&baseline).is_empty());
        // 4.0x -> 1.9x: past the band.
        current.benches[0].speedup = Some(1.9);
        let regressed = current.regressions_against(&baseline);
        assert_eq!(regressed.len(), 1);
        assert!(regressed[0].starts_with("characterize-grid"));
    }

    #[test]
    fn smoke_queue_benches_run_and_self_check() {
        // cancel-heavy is not exercised here: its reference arm is
        // deliberately quadratic and debug-build slow; the release-mode
        // smoke gate in ci.sh covers it.
        let row = bench_queue_schedule_pop(true);
        assert_eq!(row.work_units, 200_000);
        assert!(row.measured_ns > 0);
        assert!(row.baseline_ns.is_some() && row.speedup.is_some());
    }

    #[test]
    fn reference_queue_matches_optimized_semantics() {
        use plugvolt_des::time::SimTime;
        let mut q = refqueue::RefQueue::new();
        let ids: Vec<_> = pseudo_times(100)
            .map(|at| q.schedule_at(at, |w| *w += 1))
            .collect();
        assert!(q.cancel(ids[0]), "pending event cancels");
        assert!(!q.cancel(ids[0]), "double-cancel is rejected");
        assert!(!q.cancel(9999), "unknown id is rejected");
        let mut world = 0u64;
        let mut last = SimTime::from_picos(0);
        while let Some((at, f)) = q.pop_due(SimTime::MAX) {
            assert!(at >= last, "pops are time-ordered");
            last = at;
            f(&mut world);
        }
        assert_eq!(world, 99);
    }

    #[test]
    fn validation_requires_reference_baselines() {
        let mut report = sample_report();
        report.benches[2].baseline_ns = None;
        report.benches[2].speedup = None;
        assert!(report
            .validate()
            .unwrap_err()
            .contains("missing its reference-arm baseline"));
    }
}
