//! Plain-text table rendering for the repro harness.

/// A simple monospace table builder.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["short", "1"]);
        t.row(["a-much-longer-name", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("a-much-longer-name"));
        // Value column aligned at the same offset in both data rows.
        let col = lines[3].find("22").unwrap();
        assert_eq!(lines[2].find('1').unwrap(), col);
    }

    #[test]
    fn rows_are_padded_to_header_width() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["only-one"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        let s = t.render();
        assert!(s.contains("only-one"));
    }
}
