//! The hot-path attribution run behind `plugvolt-cli bench --attr`.
//!
//! DESIGN.md §5d argues the characterization sweep is *DVFS-machinery
//! bound*: the simulated time goes into offset writes, VR settling and
//! MSR bookkeeping rather than the faulted-execution windows the sweep
//! nominally exists to measure (the slack-table speedup in `BENCH.json`
//! only moved the needle 1.7x because the machinery, not the slack
//! math, dominates). This module turns that argument into a measured
//! table: it re-runs the characterize-grid workload with the span
//! tracer enabled and prints per-subsystem attribution — deterministic
//! sim-clock totals next to the (non-golden) host-clock channel — plus
//! a registry footer tying the spans back to the hot counters
//! (slack-table hits vs analytic fallbacks, MSR retirement counts).
//!
//! The run is a single-machine traced pass so that spans, registry
//! counters and the optional Chrome-trace event capture all describe
//! the *same* simulation. (The frequency-sharded engine carries span
//! aggregates across worker threads too — see
//! [`crate::scenario::Scenario::characterize`] — and its sim channel is
//! byte-identical for any worker count; the integration tests pin
//! that.)

use crate::scenario::Scenario;
use crate::text::TextTable;
use plugvolt::characterize::{characterize, CharacterizeError, SweepConfig};
use plugvolt_cpu::model::CpuModel;
use plugvolt_des::time::SimDuration;
use plugvolt_telemetry::{Sink, SpanEvent, SpanProfile, SpanRow};

/// Capture-buffer capacity for `--trace-out` runs: large enough for the
/// full paper-resolution grid (a few spans per grid point), small
/// enough to bound memory; overflow is counted, not fatal.
pub const TRACE_CAPTURE_CAPACITY: usize = 1 << 20;

/// Span labels attributed to the DVFS machinery itself (the §5d
/// numerator): voltage-plane writes, VR settling and retargeting, MSR
/// bookkeeping and timer-queue churn.
pub const DVFS_MACHINERY_SPANS: [&str; 5] = [
    "characterize/offset-write",
    "characterize/settle",
    "msr/access",
    "queue/schedule",
    "vr/retarget",
];

/// What [`run_attribution`] should run.
#[derive(Debug, Clone)]
pub struct AttrOptions {
    /// CPU model to sweep.
    pub model: CpuModel,
    /// Coarse grid (CI smoke) instead of the paper-resolution grid.
    pub smoke: bool,
    /// Also capture per-span events for the Chrome-trace exporter
    /// (costs one `Vec` push per span enter/exit).
    pub capture_events: bool,
}

impl Default for AttrOptions {
    fn default() -> Self {
        AttrOptions {
            model: CpuModel::CometLake,
            smoke: false,
            capture_events: false,
        }
    }
}

/// The result of one attribution pass: span aggregates on both clock
/// channels, the grid-run statistics, and the registry counters that
/// anchor the footer.
#[derive(Debug, Clone)]
pub struct Attribution {
    /// Model swept.
    pub model: CpuModel,
    /// Grid points visited.
    pub grid_points: u64,
    /// Crash/reset cycles incurred.
    pub crashes: u32,
    /// Simulated time of the whole sweep.
    pub sim: SimDuration,
    /// Aggregate span rows, both accounting channels, unsorted.
    pub rows: Vec<SpanRow>,
    /// The serializable sim-channel aggregate (golden-eligible).
    pub profile: SpanProfile,
    /// Slack lookups served from the precomputed table.
    pub slack_hits: u64,
    /// Slack lookups that fell back to the analytic path.
    pub slack_fallbacks: u64,
    /// rdmsr instructions retired (all cores).
    pub rdmsr: u64,
    /// wrmsr instructions retired (all cores).
    pub wrmsr: u64,
    /// Captured span events (empty unless requested).
    pub events: Vec<SpanEvent>,
    /// Span events lost to capture-buffer overflow.
    pub events_dropped: u64,
}

/// Runs the traced characterize-grid pass described in the module docs.
///
/// # Errors
///
/// Propagates sweep-configuration or machine errors from the engine.
pub fn run_attribution(opts: &AttrOptions) -> Result<Attribution, CharacterizeError> {
    let cfg = if opts.smoke {
        SweepConfig::coarse()
    } else {
        SweepConfig::default()
    };
    let sink = Sink::new();
    sink.tracer().set_enabled(true);
    if opts.capture_events {
        sink.tracer().enable_capture(TRACE_CAPTURE_CAPACITY);
    }
    let scenario = Scenario::new().with_telemetry(sink.clone());
    let mut machine = scenario.machine(opts.model);
    let run = characterize(&mut machine, &cfg)?;
    machine.publish_trace_drops();
    let telemetry = sink.profile("bench-attr");
    Ok(Attribution {
        model: opts.model,
        grid_points: run.records.len() as u64,
        crashes: run.crashes,
        sim: run.duration,
        rows: sink.tracer().rows(),
        profile: SpanProfile::from_tracer(sink.tracer(), "bench-attr"),
        slack_hits: telemetry.counter_total("slack-table", "hits"),
        slack_fallbacks: telemetry.counter_total("slack-table", "fallbacks"),
        rdmsr: telemetry.counter_total("msr", "rdmsr"),
        wrmsr: telemetry.counter_total("msr", "wrmsr"),
        events: sink.tracer().capture(),
        events_dropped: sink.tracer().dropped(),
    })
}

/// Sums `self_ps` across every row whose label is in `labels` (a label
/// can appear on several paths; all of them count).
fn self_ps_by_labels(rows: &[SpanRow], labels: &[&str]) -> u64 {
    rows.iter()
        .filter(|r| labels.contains(&r.label))
        .map(|r| r.self_ps)
        .sum()
}

/// Renders the attribution table plus registry footer as plain text.
///
/// Rows are sorted by descending sim self-time (the attribution
/// ordering); the percentage column is each row's share of all
/// self-time, so the column sums to ~100%. The wall column is the
/// host-clock channel and is explicitly non-golden.
#[must_use]
pub fn render_attribution(a: &Attribution) -> String {
    use std::fmt::Write as _;
    let mut rows = a.rows.clone();
    rows.sort_by(|x, y| y.self_ps.cmp(&x.self_ps).then(x.path.cmp(&y.path)));
    let total_self: u64 = rows.iter().map(|r| r.self_ps).sum();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "hot-path attribution: characterize-grid on {} ({} grid points, {} crashes, {} simulated)",
        a.model, a.grid_points, a.crashes, a.sim
    );
    let mut t = TextTable::new([
        "span",
        "count",
        "sim total (ms)",
        "sim self (ms)",
        "self %",
        "wall self (ms)",
    ]);
    for r in &rows {
        let pct = if total_self == 0 {
            0.0
        } else {
            r.self_ps as f64 * 100.0 / total_self as f64
        };
        t.row([
            r.path.clone(),
            r.count.to_string(),
            format!("{:.3}", r.total_ps as f64 / 1e9),
            format!("{:.3}", r.self_ps as f64 / 1e9),
            format!("{pct:.1}"),
            format!("{:.3}", r.wall_self_ns as f64 / 1e6),
        ]);
    }
    out.push_str(&t.render());

    let machinery = self_ps_by_labels(&rows, &DVFS_MACHINERY_SPANS);
    let execute = self_ps_by_labels(&rows, &["characterize/execute"]);
    let share = |ps: u64| {
        if total_self == 0 {
            0.0
        } else {
            ps as f64 * 100.0 / total_self as f64
        }
    };
    let _ = writeln!(
        out,
        "DVFS machinery (offset writes, settle, MSR, VR/queue churn): {:.1}% of sim self-time; \
         faulted execution windows: {:.1}%",
        share(machinery),
        share(execute)
    );
    let _ = writeln!(
        out,
        "slack-table: {} hits, {} fallbacks; msr: {} rdmsr, {} wrmsr; spans dropped: {}",
        a.slack_hits, a.slack_fallbacks, a.rdmsr, a.wrmsr, a.events_dropped
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_attribution_covers_the_sweep_phases() {
        let attr = run_attribution(&AttrOptions {
            smoke: true,
            capture_events: true,
            ..AttrOptions::default()
        })
        .expect("coarse attribution pass completes");
        assert!(attr.grid_points > 0);
        let paths: Vec<&str> = attr.rows.iter().map(|r| r.path.as_str()).collect();
        for label in [
            "characterize/point",
            "characterize/point;characterize/offset-write",
            "characterize/point;characterize/settle",
            "characterize/point;characterize/execute",
        ] {
            assert!(paths.contains(&label), "missing span path {label}");
        }
        // The sweep advances through VR settling and MSR writes, so the
        // machinery share must be non-zero — and every captured event
        // must carry a registered label.
        assert!(self_ps_by_labels(&attr.rows, &DVFS_MACHINERY_SPANS) > 0);
        assert!(!attr.events.is_empty());
        assert!(attr
            .events
            .iter()
            .all(|e| plugvolt_telemetry::keys::is_registered_span(e.label)));
        assert!(attr.wrmsr > 0, "offset writes retire wrmsr instructions");
    }

    #[test]
    fn rendered_table_carries_attribution_and_footer() {
        let attr = run_attribution(&AttrOptions {
            smoke: true,
            ..AttrOptions::default()
        })
        .expect("coarse attribution pass completes");
        let text = render_attribution(&attr);
        assert!(text.contains("hot-path attribution"));
        assert!(text.contains("characterize/point"));
        assert!(text.contains("DVFS machinery"));
        assert!(text.contains("slack-table:"));
        // The sim channel of the table must be reproducible run-to-run
        // (the wall column is not, so compare the profile, not the
        // rendered text).
        let again = run_attribution(&AttrOptions {
            smoke: true,
            ..AttrOptions::default()
        })
        .expect("repeat pass completes");
        assert_eq!(attr.profile.to_json(), again.profile.to_json());
    }
}
