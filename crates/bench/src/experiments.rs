//! The experiment runners behind every table and figure of the paper.
//!
//! Each function takes a [`Scenario`] (seed + optional telemetry) and
//! produces a report, so the `repro` binary, the integration tests and
//! the Criterion benches all share one implementation. Machines are
//! booted through the scenario — never constructed ad hoc here — which
//! is what keeps every run reproducible from a single root seed. See
//! `EXPERIMENTS.md` at the repository root for the paper-vs-measured
//! record produced from these.

use crate::scenario::Scenario;
use plugvolt::characterize::{characterize, CharacterizationRun, CharacterizeError, SweepConfig};
use plugvolt::charmap::CharacterizationMap;
use plugvolt::deploy::{deploy, Deployment};
use plugvolt::poll::{PollConfig, MODULE_NAME};
use plugvolt::state::StateClass;
use plugvolt_attacks::cacheplane::{run_cache_plane_attack, CachePlaneConfig};
use plugvolt_attacks::campaign::AttackReport;
use plugvolt_attacks::clkscrew::{run_clkscrew_attack, ClkscrewConfig};
use plugvolt_attacks::plundervolt::{run_aes_attack, run_rsa_attack, PlundervoltConfig};
use plugvolt_attacks::v0ltpwn::{run_v0ltpwn_attack, V0ltpwnConfig};
use plugvolt_attacks::voltjockey::{run_voltjockey_attack, VoltJockeyConfig};
use plugvolt_cpu::core::CoreId;
use plugvolt_cpu::freq::FreqMhz;
use plugvolt_cpu::model::CpuModel;
use plugvolt_des::time::{SimDuration, SimTime};
use plugvolt_kernel::machine::{Machine, MachineError};
use plugvolt_kernel::msr_dev::MsrDev;
use plugvolt_kernel::sgx::{AttestationReport, SteppingCapability};
use plugvolt_msr::addr::Msr;
use plugvolt_msr::oc_mailbox::{OcRequest, Plane};
use plugvolt_telemetry::{HistogramSpec, MetricKey};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

pub use crate::scenario::SEED;

/// Figure 1 data: the Eq. 1 terms and slack as the supply drops.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig1Point {
    /// Offset below nominal, mV.
    pub offset_mv: i32,
    /// `T_src + T_prop` (worst-case imul path), ps.
    pub path_ps: f64,
    /// `T_clk − T_setup − T_ε`, ps.
    pub available_ps: f64,
    /// Slack, ps.
    pub slack_ps: f64,
    /// Classification under the fault model.
    pub state: StateClass,
}

/// Generates the Figure 1 series for a model at a frequency.
#[must_use]
pub fn fig1_series(model: CpuModel, freq: FreqMhz, max_offset_mv: i32) -> Vec<Fig1Point> {
    use plugvolt_circuit::timing::{TimingBudget, TimingState};
    let spec = model.spec();
    let mul = spec.multiplier();
    let fm = spec.fault_model();
    let budget = TimingBudget::for_frequency_mhz(freq.mhz(), spec.t_setup_ps, spec.t_eps_ps);
    let nominal = spec.nominal_voltage_mv(freq);
    (0..=max_offset_mv.unsigned_abs() as i32)
        .step_by(5)
        .map(|off| {
            let v = nominal - f64::from(off);
            let path = mul.worst_path_delay_ps(v);
            let slack = budget.slack_ps(path);
            let state = match fm.classify(slack) {
                TimingState::Safe if fm.fault_probability(slack) * 1e6 >= 1.0 => StateClass::Unsafe,
                TimingState::Safe => StateClass::Safe,
                TimingState::Unsafe => StateClass::Unsafe,
                TimingState::Crash => StateClass::Crash,
            };
            Fig1Point {
                offset_mv: -off,
                path_ps: path,
                available_ps: budget.available_ps(),
                slack_ps: slack,
                state,
            }
        })
        .collect()
}

/// Runs the Figures 2–4 characterization for one model.
///
/// `full` uses the paper's 1 mV × 0.1 GHz resolution; otherwise a
/// coarser, faster grid with identical shape.
///
/// # Errors
///
/// Propagates sweep-configuration and machine errors.
pub fn figure_characterization(
    scn: &Scenario,
    model: CpuModel,
    full: bool,
) -> Result<CharacterizationRun, CharacterizeError> {
    figure_characterization_observed(scn, model, full, &mut |_| {})
}

/// [`figure_characterization`] with a per-frequency progress observer —
/// the `repro --stream` hook (see
/// [`plugvolt::characterize::characterize_observed`]).
///
/// # Errors
///
/// Propagates config or machine errors from the sweep.
pub fn figure_characterization_observed(
    scn: &Scenario,
    model: CpuModel,
    full: bool,
    observe: &mut dyn FnMut(&Machine),
) -> Result<CharacterizationRun, CharacterizeError> {
    let mut machine = scn.machine(model);
    let cfg = figure_sweep_config(full);
    plugvolt::characterize::characterize_observed(&mut machine, &cfg, observe)
}

/// The sweep grid used by the Figures 2–4 characterization: the paper's
/// 1 mV × 0.1 GHz resolution when `full`, otherwise a coarser, faster
/// grid with identical shape.
#[must_use]
pub fn figure_sweep_config(full: bool) -> SweepConfig {
    if full {
        SweepConfig::default()
    } else {
        SweepConfig {
            offset_step_mv: 2,
            freq_step_mhz: 200,
            ..SweepConfig::default()
        }
    }
}

/// One cell of the defense matrix (§4.3: "completely prevents DVFS
/// faults" × every attack).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DefenseCell {
    /// Deployment label.
    pub deployment: String,
    /// Attack name.
    pub attack: String,
    /// Whether the exploit goal was reached.
    pub success: bool,
    /// Faulty computations the adversary observed.
    pub faulty_events: u64,
    /// Countermeasure detections (polling level only).
    pub detections: u64,
    /// Whether benign DVFS survived under this deployment.
    pub benign_dvfs_preserved: bool,
}

/// All deployments evaluated by the defense matrix.
#[must_use]
pub fn all_deployments() -> Vec<Deployment> {
    vec![
        Deployment::None,
        Deployment::OcmDisable,
        Deployment::PollingModule(PollConfig::default()),
        Deployment::Microcode {
            revision: 0xf5,
            margin_mv: 5,
        },
        Deployment::HardwareMsr { margin_mv: 5 },
    ]
}

/// Runs the full defense matrix: every attack × every deployment. Each
/// attack campaign gets its own machine booted from a labelled derived
/// seed, so adding or reordering attacks never perturbs the others; a
/// telemetry sink attached to the scenario is shared across all of them.
///
/// Cells are farmed out over `workers` threads (like the sharded
/// characterization engine): every cell's stream depends only on the
/// scenario root seed and the cell's own labels, never on which worker
/// ran it, so the merged matrix is byte-identical for any worker count
/// (pinned by `tests/determinism.rs`). A telemetry sink forces the
/// sequential path — the sink is single-threaded by design.
///
/// # Errors
///
/// Propagates machine errors (first failing cell in matrix order).
pub fn defense_matrix(
    scn: &Scenario,
    model: CpuModel,
    map: &CharacterizationMap,
    workers: usize,
) -> Result<Vec<DefenseCell>, MachineError> {
    let deployments = all_deployments();
    let cell_count = deployments.len() * ATTACK_COUNT;
    run_cells(scn, workers, cell_count, |scn, i| {
        defense_cell(
            scn,
            model,
            map,
            &deployments[i / ATTACK_COUNT],
            i % ATTACK_COUNT,
        )
    })
}

/// Number of attack campaigns in the defense matrix.
const ATTACK_COUNT: usize = 6;

/// One cell of the defense matrix: boot a labelled machine, deploy,
/// attack, check benign DVFS.
fn defense_cell(
    scn: &Scenario,
    model: CpuModel,
    map: &CharacterizationMap,
    deployment: &Deployment,
    attack_idx: usize,
) -> Result<DefenseCell, MachineError> {
    let mut machine = scn.machine_for(model, &format!("defense-matrix/attack{attack_idx}"));
    let deployment = match (deployment, attack_idx) {
        // The cache-plane attack needs the plane-aware polling
        // configuration (the plane ablation shows why).
        (Deployment::PollingModule(cfg), 5) => Deployment::PollingModule(PollConfig {
            planes: vec![
                plugvolt_msr::oc_mailbox::Plane::Core,
                plugvolt_msr::oc_mailbox::Plane::Cache,
            ],
            ..cfg.clone()
        }),
        (d, _) => d.clone(),
    };
    let deployed = deploy(&mut machine, map, deployment.clone())?;
    let report: AttackReport = match attack_idx {
        0 => run_rsa_attack(&mut machine, &PlundervoltConfig::default(), 1)?,
        1 => {
            let cfg = PlundervoltConfig {
                victims_per_step: 300,
                ..PlundervoltConfig::default()
            };
            run_aes_attack(&mut machine, &cfg, 2)?
        }
        2 => run_voltjockey_attack(&mut machine, &VoltJockeyConfig::default(), 3)?,
        3 => run_v0ltpwn_attack(&mut machine, &V0ltpwnConfig::default())?.report,
        4 => {
            let cfg = ClkscrewConfig {
                benign_offset_mv: -170,
                ..ClkscrewConfig::default()
            };
            run_clkscrew_attack(&mut machine, &cfg)?
        }
        _ => run_cache_plane_attack(&mut machine, &CachePlaneConfig::default())?,
    };
    let detections = deployed
        .poll_stats
        .as_ref()
        .map_or(0, |s| s.borrow().detections);
    let benign = benign_dvfs_works(&mut scn.machine(model), map, &deployment)?;
    if scn.telemetry().is_some() {
        machine.publish_trace_drops();
    }
    Ok(DefenseCell {
        deployment: deployment.label().to_owned(),
        attack: report.attack.clone(),
        success: report.success,
        faulty_events: report.faulty_events,
        detections,
        benign_dvfs_preserved: benign,
    })
}

/// Runs `cell_count` independent experiment cells, sequentially or over
/// a worker pool, merging results in cell-index order.
///
/// Every cell boots its own machines from seeds derived off the
/// scenario's root seed and the cell's labels, so the merged vector is
/// byte-identical for any worker count — the same claim-counter/slot
/// engine as `characterize_sharded`. Parallel workers each construct a
/// sink-free `Scenario` from the root seed (the telemetry sink is
/// `Rc`-based and single-threaded, so a sink on `scn` forces the
/// sequential path; cells still see identical seed streams either way).
pub(crate) fn run_cells<T, E, F>(
    scn: &Scenario,
    workers: usize,
    cell_count: usize,
    cell: F,
) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(&Scenario, usize) -> Result<T, E> + Sync,
{
    let workers = workers.clamp(1, cell_count.max(1));
    if workers == 1 || scn.telemetry().is_some() {
        return (0..cell_count).map(|i| cell(scn, i)).collect();
    }

    let root_seed = scn.root_seed();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<Option<Result<T, E>>>> = (0..cell_count)
        .map(|_| std::sync::Mutex::new(None))
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let _worker = scope.spawn(|| {
                let local = Scenario::with_seed(root_seed);
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= cell_count {
                        break;
                    }
                    let result = cell(&local, i);
                    *slots[i].lock().expect("cell slot poisoned") = Some(result);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("cell slot poisoned")
                .expect("every cell index was claimed by a worker")
        })
        .collect()
}

/// Checks that a benign −40 mV power-saving undervolt still lands and
/// holds for 5 ms under the given deployment.
fn benign_dvfs_works(
    machine: &mut Machine,
    map: &CharacterizationMap,
    deployment: &Deployment,
) -> Result<bool, MachineError> {
    let _ = deploy(machine, map, deployment.clone())?;
    let dev = MsrDev::open(machine, CoreId(0))?;
    let req = OcRequest::write_offset(-40, Plane::Core).encode();
    let _ = dev.write(machine, Msr::OC_MAILBOX, req)?;
    machine.advance(SimDuration::from_millis(5));
    Ok(machine.cpu().core_offset_mv() <= -35)
}

/// One row of the deployment-levels ablation (§5: turnaround time).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelRow {
    /// Deployment label.
    pub deployment: String,
    /// Time from the attack's 0x150 write to the offset being back in
    /// the safe region (`None` = never neutralized).
    pub neutralize_latency: Option<SimDuration>,
    /// Deepest *effective* undervolt observed in a 5 ms window: rail
    /// voltage versus the nominal of the instantaneous frequency (mV).
    /// A clamped-but-safe undervolt (hardware MSR) legitimately shows a
    /// non-zero value here.
    pub max_effective_undervolt_mv: f64,
    /// Whether the effective (frequency, undervolt) state was ever in
    /// the characterized unsafe region.
    pub ever_unsafe: bool,
    /// Faults a victim running imuls throughout the window observed.
    pub victim_faults: u64,
}

/// Measures actual exposure per deployment level: attack write at t₀,
/// victim hammering imuls, rail watched for 5 ms.
///
/// When the scenario carries a telemetry sink, the per-deployment
/// *exposure window* — total time the sampled effective (frequency,
/// undervolt) state classified unsafe — is published as a
/// `deploy/<label>` gauge (ns) and aggregated into the
/// `deploy/exposure_window_us` histogram.
///
/// Rows run over `workers` threads with a worker-count-independent
/// merge (see [`defense_matrix`]); a telemetry sink forces the
/// sequential path.
///
/// # Errors
///
/// Propagates machine errors (first failing row in deployment order).
pub fn deployment_levels(
    scn: &Scenario,
    model: CpuModel,
    map: &CharacterizationMap,
    workers: usize,
) -> Result<Vec<LevelRow>, MachineError> {
    let deployments = all_deployments();
    let count = deployments.len();
    run_cells(scn, workers, count, |scn, i| {
        level_row(scn, model, map, &deployments[i])
    })
}

/// One row of the deployment-levels ablation: deploy, attack write,
/// watch the rail and a victim for 5 ms.
fn level_row(
    scn: &Scenario,
    model: CpuModel,
    map: &CharacterizationMap,
    deployment: &Deployment,
) -> Result<LevelRow, MachineError> {
    let mut machine = scn.machine(model);
    let _deployed = deploy(&mut machine, map, deployment.clone())?;
    // Pin fast so −250 mV is deeply unsafe.
    let mut cpupower = plugvolt_kernel::cpupower::CpuPower::new(&machine);
    let fast = machine.cpu().spec().freq_table.max();
    cpupower.frequency_set(&mut machine, CoreId(0), fast)?;
    machine.advance(SimDuration::from_millis(1));
    let nominal = machine.cpu().spec().nominal_voltage_mv(fast);

    let _ = nominal;
    let dev = MsrDev::open(&machine, CoreId(0))?;
    let attack = OcRequest::write_offset(-250, Plane::Core).encode();
    let written_at = machine.now();
    let _ = dev.write(&mut machine, Msr::OC_MAILBOX, attack)?;

    let mut neutralized: Option<SimTime> = None;
    let mut max_effective = 0.0f64;
    let mut ever_unsafe = false;
    let mut victim_faults = 0u64;
    let mut reset_happened = false;
    let sample = SimDuration::from_micros(10);
    let mut exposure = SimDuration::ZERO;
    for _ in 0..500 {
        machine.advance(sample);
        let f_now = machine.cpu().core_freq(CoreId(0))?;
        let nominal_now = machine.cpu().spec().nominal_voltage_mv(f_now);
        let effective = nominal_now - machine.cpu().core_voltage_mv(machine.now());
        max_effective = max_effective.max(effective);
        if effective > 2.0 && map.classify(f_now, -(effective.ceil() as i32)) != StateClass::Safe {
            ever_unsafe = true;
            exposure += sample;
        }
        // A reboot clearing the offset is not countermeasure action;
        // only count neutralization before any crash.
        if neutralized.is_none()
            && !reset_happened
            && map.classify(f_now, machine.cpu().core_offset_mv()) == StateClass::Safe
        {
            neutralized = Some(machine.now());
        }
        let now = machine.now();
        match machine.cpu_mut().run_imul_loop(now, CoreId(0), 20_000) {
            Ok(f) => victim_faults += f,
            Err(_) => {
                reset_happened = true;
                let now = machine.now();
                machine.cpu_mut().reset(now);
                cpupower.frequency_set(&mut machine, CoreId(0), fast)?;
                victim_faults += 20_000; // a crash is at least as bad
            }
        }
    }
    if let Some(sink) = scn.telemetry() {
        let label = deployment.label();
        sink.set_gauge(
            MetricKey::global(format!("deploy/{label}"), "exposure_ns"),
            exposure.as_picos() as f64 / 1e3,
        );
        sink.observe(
            MetricKey::global("deploy", "exposure_window_us"),
            HistogramSpec::EXPOSURE_WINDOW_US,
            exposure.as_picos() as f64 / 1e6,
        );
        machine.publish_trace_drops();
    }
    Ok(LevelRow {
        deployment: deployment.label().to_owned(),
        neutralize_latency: neutralized.map(|t| t.saturating_duration_since(written_at)),
        max_effective_undervolt_mv: max_effective.max(0.0),
        ever_unsafe,
        victim_faults,
    })
}

/// One row of the polling-interval ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntervalRow {
    /// Polling period.
    pub period: SimDuration,
    /// Fraction of core time stolen by the module (overhead).
    pub overhead_pct: f64,
    /// Detection latency for a deep attack write.
    pub detect_latency: Option<SimDuration>,
    /// Whether the rail ever dipped more than 5 mV below the nominal
    /// voltage of the *instantaneous* frequency (i.e. an effective
    /// undervolt; benign P-state transitions do not count).
    pub rail_moved: bool,
}

/// The polling periods swept by [`interval_sweep`], in microseconds.
pub const SWEEP_PERIODS_US: [u64; 9] = [10, 25, 50, 100, 200, 400, 800, 1_600, 3_200];

/// Sweeps the polling period: overhead vs turnaround (our ablation of
/// the paper's design choice of a kernel-module poller).
///
/// A telemetry sink attached to the scenario is shared across the
/// per-period machines. Periods run over `workers` threads with a
/// worker-count-independent merge (see [`defense_matrix`]); a telemetry
/// sink forces the sequential path.
///
/// # Errors
///
/// Propagates machine errors (first failing period in sweep order).
pub fn interval_sweep(
    scn: &Scenario,
    model: CpuModel,
    map: &CharacterizationMap,
    workers: usize,
) -> Result<Vec<IntervalRow>, MachineError> {
    run_cells(scn, workers, SWEEP_PERIODS_US.len(), |scn, i| {
        interval_row(scn, model, map, SWEEP_PERIODS_US[i])
    })
}

/// One row of the polling-interval ablation: deploy at the period,
/// measure idle overhead, then turnaround for a deep attack write.
fn interval_row(
    scn: &Scenario,
    model: CpuModel,
    map: &CharacterizationMap,
    period_us: u64,
) -> Result<IntervalRow, MachineError> {
    let period = SimDuration::from_micros(period_us);
    let mut machine = scn.machine(model);
    let cfg = PollConfig {
        period,
        ..PollConfig::default()
    };
    let deployed = deploy(&mut machine, map, Deployment::PollingModule(cfg))?;
    // Pin fast so a −250 mV write is deeply unsafe at this frequency.
    let mut cpupower = plugvolt_kernel::cpupower::CpuPower::new(&machine);
    let fast = machine.cpu().spec().freq_table.max();
    cpupower.frequency_set(&mut machine, CoreId(0), fast)?;
    // Overhead: watch 50 ms of idle polling.
    let stolen_before = machine.stolen_time(CoreId(0));
    machine.advance(SimDuration::from_millis(50));
    let stolen = machine.stolen_time(CoreId(0)).saturating_sub(stolen_before);
    let overhead_pct =
        stolen.as_picos() as f64 / SimDuration::from_millis(50).as_picos() as f64 * 100.0;

    // Turnaround: deep write, watch 20 ms.
    let nominal = machine
        .cpu()
        .spec()
        .nominal_voltage_mv(machine.cpu().core_freq(CoreId(0))?);
    let dev = MsrDev::open(&machine, CoreId(0))?;
    let written_at = machine.now();
    let _ = dev.write(
        &mut machine,
        Msr::OC_MAILBOX,
        OcRequest::write_offset(-250, Plane::Core).encode(),
    )?;
    let mut max_effective_undervolt = 0.0f64;
    for _ in 0..2_000 {
        machine.advance(SimDuration::from_micros(10));
        let f_now = machine.cpu().core_freq(CoreId(0))?;
        let nominal_now = machine.cpu().spec().nominal_voltage_mv(f_now);
        let v = machine.cpu().core_voltage_mv(machine.now());
        max_effective_undervolt = max_effective_undervolt.max(nominal_now - v);
    }
    let _ = nominal;
    let stats = deployed.poll_stats.expect("polling deployment");
    let detect_latency = stats
        .borrow()
        .last_detection
        .map(|t| t.saturating_duration_since(written_at));
    if scn.telemetry().is_some() {
        machine.publish_trace_drops();
    }
    Ok(IntervalRow {
        period,
        overhead_pct,
        detect_latency,
        rail_moved: max_effective_undervolt > 5.0,
    })
}

/// Per-unit characterization summary (die-to-die variation study).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnitRow {
    /// Physical unit id.
    pub unit: u64,
    /// The unit's own maximal safe state (mV).
    pub own_mss_mv: i32,
    /// Fault onset at the table maximum frequency (mV).
    pub onset_at_fmax_mv: Option<i32>,
}

/// Result of the per-unit vs per-generation characterization study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnitStudy {
    /// Per-unit summaries.
    pub rows: Vec<UnitRow>,
    /// The generation-wide bound (shallowest per-unit MSS): what a
    /// vendor must fuse into every part of the SKU.
    pub generation_mss_mv: i32,
    /// Mean benign-undervolt headroom forfeited by using the
    /// generation-wide bound instead of per-unit characterization (mV).
    pub mean_headroom_lost_mv: f64,
    /// Whether protecting every unit with the generation map blocked a
    /// deep attack on each of them.
    pub generation_map_protects_all: bool,
}

/// Characterizes several physical units of one SKU and evaluates the
/// per-unit vs per-generation deployment question the paper's Sec. 5
/// leaves open: the microcode/MSR bound must be fused per *generation*,
/// so it has to take the worst (shallowest) unit, costing the better
/// units benign undervolt headroom.
///
/// # Errors
///
/// Propagates sweep-configuration and machine errors.
pub fn unit_variation_study(
    scn: &Scenario,
    model: CpuModel,
    units: u64,
) -> Result<UnitStudy, CharacterizeError> {
    use plugvolt::charmap::FreqBand;
    let mut rows = Vec::new();
    let mut maps = Vec::new();
    for unit in 0..units {
        let mut machine = scn.unit_machine(model, unit);
        let cfg = SweepConfig {
            offset_step_mv: 3,
            freq_step_mhz: 400,
            ..SweepConfig::default()
        };
        let run = characterize(&mut machine, &cfg)?;
        let fmax = machine.cpu().spec().freq_table.max();
        rows.push(UnitRow {
            unit,
            own_mss_mv: run.map.maximal_safe_offset_mv(5).unwrap_or(0),
            onset_at_fmax_mv: run.map.band(fmax).and_then(|b| b.fault_onset_mv),
        });
        maps.push(run.map);
    }
    let generation_mss_mv = rows.iter().map(|r| r.own_mss_mv).max().unwrap_or(0);
    let mean_headroom_lost_mv = rows
        .iter()
        .map(|r| f64::from(r.own_mss_mv - generation_mss_mv).abs())
        .sum::<f64>()
        / rows.len() as f64;

    // Build the generation-wide map: per frequency, the most conservative
    // band across units.
    let mut generation = maps[0].clone();
    let freqs: Vec<FreqMhz> = generation.iter().map(|(f, _)| f).collect();
    for f in freqs {
        let onset = maps
            .iter()
            .filter_map(|m| m.band(f).and_then(|b| b.fault_onset_mv))
            .max();
        let crash = maps
            .iter()
            .filter_map(|m| m.band(f).and_then(|b| b.crash_mv))
            .max();
        generation.insert_band(
            f,
            FreqBand {
                fault_onset_mv: onset,
                crash_mv: crash,
            },
        );
    }

    // Every unit, protected by the generation map, must block the attack.
    let mut all_protected = true;
    for unit in 0..units {
        let mut machine = scn.unit_machine(model, unit);
        let _ = deploy(
            &mut machine,
            &generation,
            Deployment::PollingModule(PollConfig::default()),
        )?;
        let report = run_rsa_attack(&mut machine, &PlundervoltConfig::default(), 1)?;
        if report.success {
            all_protected = false;
        }
    }
    Ok(UnitStudy {
        rows,
        generation_mss_mv,
        mean_headroom_lost_mv,
        generation_map_protects_all: all_protected,
    })
}

/// One row of the energy ablation: what denying benign undervolting
/// costs, in the currency the paper's introduction argues in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyRow {
    /// Configuration label.
    pub config: String,
    /// Average package power over the window, watts.
    pub avg_power_w: f64,
    /// Energy over the window, joules.
    pub joules: f64,
    /// Savings versus the no-undervolt baseline, percent.
    pub savings_pct: f64,
}

/// Measures package energy over a fixed busy window under: no undervolt
/// (what Intel's OCM-disable forces on the user), a benign undervolt at
/// the maximal safe state (what the paper's deployments permit), and a
/// deeper benign undervolt at reduced frequency.
///
/// # Errors
///
/// Propagates machine errors.
pub fn energy_ablation(
    scn: &Scenario,
    model: CpuModel,
    map: &CharacterizationMap,
) -> Result<Vec<EnergyRow>, MachineError> {
    let window = SimDuration::from_millis(500);
    let mss = map.maximal_safe_offset_mv(10).unwrap_or(0);
    let mut rows: Vec<EnergyRow> = Vec::new();
    let mut baseline_j = 0.0;
    for (config, offset_mv) in [
        ("no undervolt (OCM disabled)", 0),
        ("maximal-safe undervolt (paper)", mss),
    ] {
        let mut machine = scn.machine(model);
        // Deploy the paper's polling module: the benign offset must
        // survive it for the whole window.
        let _ = deploy(
            &mut machine,
            map,
            Deployment::PollingModule(PollConfig::default()),
        )?;
        if offset_mv < 0 {
            let dev = MsrDev::open(&machine, CoreId(0))?;
            let req = OcRequest::write_offset(offset_mv, Plane::Core).encode();
            let _ = dev.write(&mut machine, Msr::OC_MAILBOX, req)?;
        }
        // Let the rail settle, then measure a busy window via RAPL.
        // The energy reads use the privileged zero-cost Machine::rdmsr
        // path: no MSR access cost is charged, so the measurement never
        // contaminates the overhead this ablation quantifies.
        machine.advance(SimDuration::from_millis(3));
        let e0 = machine.rdmsr(CoreId(0), Msr::PKG_ENERGY_STATUS)? as f64
            * plugvolt_cpu::energy::RAPL_UNIT_J;
        machine.advance(window);
        let e1 = machine.rdmsr(CoreId(0), Msr::PKG_ENERGY_STATUS)? as f64
            * plugvolt_cpu::energy::RAPL_UNIT_J;
        let joules = e1 - e0;
        if baseline_j == 0.0 {
            baseline_j = joules;
        }
        rows.push(EnergyRow {
            config: config.to_owned(),
            avg_power_w: joules / window.as_secs_f64(),
            joules,
            savings_pct: (baseline_j - joules) / baseline_j * 100.0,
        });
    }
    Ok(rows)
}

/// One row of the voltage-plane ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlaneRow {
    /// Planes the polling module watches.
    pub planes: String,
    /// Idle polling overhead (percent of one core's time).
    pub overhead_pct: f64,
    /// Did the core-plane Plundervolt campaign succeed?
    pub core_attack_succeeded: bool,
    /// Did the cache-plane campaign succeed?
    pub cache_attack_succeeded: bool,
}

/// Ablation: what watching more voltage planes costs and buys.
///
/// The paper's Algorithm 3 reads MSR 0x150 once per core (the mailbox
/// response register). This sweep compares that configuration against
/// explicit per-plane polling.
///
/// # Errors
///
/// Propagates machine errors.
pub fn plane_ablation(
    scn: &Scenario,
    model: CpuModel,
    map: &CharacterizationMap,
) -> Result<Vec<PlaneRow>, MachineError> {
    use plugvolt_msr::oc_mailbox::Plane;
    let mut rows = Vec::new();
    for planes in [vec![Plane::Core], vec![Plane::Core, Plane::Cache]] {
        let label = planes
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join("+");
        let cfg = PollConfig {
            planes,
            ..PollConfig::default()
        };
        // Idle overhead over 50 ms.
        let mut machine = scn.machine(model);
        let _ = deploy(&mut machine, map, Deployment::PollingModule(cfg.clone()))?;
        machine.advance(SimDuration::from_millis(50));
        let stolen = machine.stolen_time(CoreId(0));
        let overhead_pct =
            stolen.as_picos() as f64 / SimDuration::from_millis(50).as_picos() as f64 * 100.0;

        // Core-plane Plundervolt.
        let mut machine = scn.machine(model);
        let _ = deploy(&mut machine, map, Deployment::PollingModule(cfg.clone()))?;
        let core_attack = run_rsa_attack(&mut machine, &PlundervoltConfig::default(), 1)?;

        // Cache-plane campaign.
        let mut machine = scn.machine(model);
        let _ = deploy(&mut machine, map, Deployment::PollingModule(cfg))?;
        let cache_attack = run_cache_plane_attack(&mut machine, &CachePlaneConfig::default())?;

        rows.push(PlaneRow {
            planes: label,
            overhead_pct,
            core_attack_succeeded: core_attack.success,
            cache_attack_succeeded: cache_attack.success,
        });
    }
    Ok(rows)
}

/// Outcome of the threat-model experiment (§4.1): stepping adversaries
/// vs deflection-style defenses vs polling.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SteppingRow {
    /// Defense under test.
    pub defense: String,
    /// Adversary stepping capability.
    pub stepping: String,
    /// Did the adversary obtain an exploitable faulty output?
    pub exploit_succeeded: bool,
    /// Did the defense's trap fire (deflection only)?
    pub trap_fired: bool,
}

/// Models the §4.1 argument with the real implementations:
///
/// - the **deflection** baseline runs the victim under Minefield-style
///   canary instrumentation ([`plugvolt_attacks::minefield`]). A
///   *non-stepping* adversary's undervolt window covers whole blocks, so
///   the canaries co-fault and the trap withholds the signature. A
///   single/zero-stepping adversary isolates exactly one multiplication
///   inside the window (the SGX-Step + Plundervolt methodology): the
///   canaries execute at safe voltage, no trap fires, and the harvested
///   faulty signature factors the modulus;
/// - the **polling** countermeasure neutralizes the undervolt *before
///   the rail moves*, so there is no fault to isolate — stepping does
///   not help.
///
/// # Errors
///
/// Propagates machine errors.
pub fn stepping_experiment(
    scn: &Scenario,
    model: CpuModel,
    map: &CharacterizationMap,
) -> Result<Vec<SteppingRow>, MachineError> {
    use plugvolt_attacks::crypto::rsa::{bellcore_factor, RsaKey};
    use plugvolt_attacks::minefield::{sign_with_deflection, MinefieldConfig};

    let mut rows = Vec::new();
    for &stepping in &[
        SteppingCapability::None,
        SteppingCapability::SingleStep,
        SteppingCapability::ZeroStep,
    ] {
        for defense in ["deflection-traps", "plugvolt-polling"] {
            let mut machine = scn.machine(model);
            let deployment = if defense == "plugvolt-polling" {
                Deployment::PollingModule(PollConfig::default())
            } else {
                Deployment::None
            };
            let _ = deploy(&mut machine, map, deployment)?;
            let mut rng = scn.rng("stepping");
            let key = RsaKey::generate(&mut rng);

            // Adversary: pin fast and write a mid-band undervolt pulse.
            let mut cpupower = plugvolt_kernel::cpupower::CpuPower::new(&machine);
            let fast = machine.cpu().spec().freq_table.max();
            cpupower.frequency_set_all(&mut machine, fast)?;
            machine.advance(SimDuration::from_millis(1));
            let dev = MsrDev::open(&machine, CoreId(0))?;
            let _ = dev.write(
                &mut machine,
                Msr::OC_MAILBOX,
                OcRequest::write_offset(-175, Plane::Core).encode(),
            )?;
            machine.advance(SimDuration::from_millis(2));

            let mut exploit = false;
            let mut trap_fired = false;
            for i in 0..40u64 {
                let msg = (1_000 + i) % key.n;
                if stepping.defeats_trap_deflection() {
                    // Instruction isolation: exactly one multiplication of
                    // the CRT executes inside the pulse; everything else —
                    // including every canary — runs at restored voltage.
                    let mut count = 0u32;
                    let target = 40 + (i as u32 % 24); // somewhere in the q-half
                    let mut failure = false;
                    let now = machine.now();
                    let sig = {
                        let cpu = machine.cpu_mut();
                        let mut mul = |a: u64, b: u64| {
                            count += 1;
                            if count == target {
                                match cpu.execute_imul(now, CoreId(0), a, b) {
                                    Ok(ex) => ex.value,
                                    Err(_) => {
                                        failure = true;
                                        a.wrapping_mul(b)
                                    }
                                }
                            } else {
                                a.wrapping_mul(b)
                            }
                        };
                        key.sign_crt(msg, &mut mul)
                    };
                    if failure {
                        let now = machine.now();
                        machine.cpu_mut().reset(now);
                        cpupower.frequency_set_all(&mut machine, fast)?;
                        continue;
                    }
                    machine.advance(SimDuration::from_micros(50));
                    if !key.verify(msg, sig) && bellcore_factor(key.n, key.e, msg, sig).is_some() {
                        exploit = true;
                        break;
                    }
                } else {
                    // No isolation: the whole instrumented computation runs
                    // under the parked conditions.
                    let out = match sign_with_deflection(
                        &mut machine,
                        CoreId(0),
                        &key,
                        msg,
                        &MinefieldConfig::default(),
                    ) {
                        Ok(out) => out,
                        Err(e) if plugvolt_attacks::campaign::is_crash(&e) => {
                            let now = machine.now();
                            machine.cpu_mut().reset(now);
                            cpupower.frequency_set_all(&mut machine, fast)?;
                            continue;
                        }
                        Err(e) => return Err(e),
                    };
                    trap_fired |= out.trapped;
                    let observed = if defense == "deflection-traps" {
                        out.adversary_view(stepping)
                    } else {
                        Some(out.signature)
                    };
                    if let Some(sig) = observed {
                        if !key.verify(msg, sig)
                            && bellcore_factor(key.n, key.e, msg, sig).is_some()
                        {
                            exploit = true;
                            break;
                        }
                    }
                    machine.advance(SimDuration::from_micros(50));
                }
            }
            rows.push(SteppingRow {
                defense: defense.to_owned(),
                stepping: format!("{stepping:?}"),
                exploit_succeeded: exploit,
                trap_fired,
            });
        }
    }
    Ok(rows)
}

/// The attestation story (§4.1): what each verifier policy accepts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttestationRow {
    /// Machine configuration.
    pub config: String,
    /// Accepted by the paper's verifier (module attested)?
    pub plugvolt_ok: bool,
    /// Accepted by Intel's CVE-2019-11157 verifier (OCM disabled)?
    pub intel_ok: bool,
    /// Benign DVFS available in this configuration?
    pub benign_dvfs: bool,
}

/// Compares the attestation policies across machine configurations.
///
/// # Errors
///
/// Propagates machine errors.
pub fn attestation_matrix(
    scn: &Scenario,
    model: CpuModel,
    map: &CharacterizationMap,
) -> Result<Vec<AttestationRow>, MachineError> {
    let mut rows = Vec::new();
    for (config, deployment) in [
        ("undefended", Deployment::None),
        ("ocm-disabled (Intel fix)", Deployment::OcmDisable),
        (
            "polling module (paper)",
            Deployment::PollingModule(PollConfig::default()),
        ),
    ] {
        let mut machine = scn.machine(model);
        let _ = deploy(&mut machine, map, deployment.clone())?;
        let report = AttestationReport::collect(&machine);
        let benign = benign_dvfs_works(&mut scn.machine(model), map, &deployment)?;
        rows.push(AttestationRow {
            config: config.to_owned(),
            plugvolt_ok: report.acceptable_to_plugvolt_verifier(MODULE_NAME),
            intel_ok: report.acceptable_to_intel_verifier(),
            benign_dvfs: benign,
        });
    }
    Ok(rows)
}

/// A quick analytic map for experiments that do not need the empirical
/// sweep, served from the process-wide memoized store (computed at most
/// once per model per process; see [`crate::scenario::quick_map`]).
#[must_use]
pub fn quick_map(model: CpuModel) -> Arc<CharacterizationMap> {
    crate::scenario::quick_map(model)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_series_shows_the_three_regions() {
        let series = fig1_series(CpuModel::SkyLake, FreqMhz(3_600), 300);
        assert!(series.iter().any(|p| p.state == StateClass::Safe));
        assert!(series.iter().any(|p| p.state == StateClass::Unsafe));
        assert!(series.iter().any(|p| p.state == StateClass::Crash));
        // Path stretches monotonically as we undervolt.
        for w in series.windows(2) {
            assert!(w[1].path_ps >= w[0].path_ps);
            assert!(w[1].slack_ps <= w[0].slack_ps);
        }
    }

    #[test]
    fn quick_map_covers_the_table() {
        let map = quick_map(CpuModel::CometLake);
        let spec = CpuModel::CometLake.spec();
        assert_eq!(map.len(), spec.freq_table.len());
        assert!(map.maximal_safe_offset_mv(0).is_some());
    }

    #[test]
    fn interval_sweep_tradeoff_holds() {
        let map = quick_map(CpuModel::CometLake);
        let rows = interval_sweep(&Scenario::new(), CpuModel::CometLake, &map, 2).unwrap();
        assert_eq!(rows.len(), 9);
        // Overhead decreases as the period grows.
        for w in rows.windows(2) {
            assert!(w[1].overhead_pct <= w[0].overhead_pct + 0.02, "{w:?}");
        }
        // Short periods keep the rail pinned; very long ones do not.
        assert!(!rows.first().unwrap().rail_moved);
        assert!(rows.last().unwrap().rail_moved);
    }

    #[test]
    fn unit_study_varies_and_generation_map_protects() {
        let study = unit_variation_study(&Scenario::new(), CpuModel::CometLake, 4).unwrap();
        assert_eq!(study.rows.len(), 4);
        let mss: Vec<i32> = study.rows.iter().map(|r| r.own_mss_mv).collect();
        assert!(
            mss.iter().any(|&m| m != mss[0]),
            "units should differ: {mss:?}"
        );
        assert!(study.generation_map_protects_all);
        assert_eq!(
            study.generation_mss_mv,
            *mss.iter().max().unwrap(),
            "generation bound is the shallowest unit"
        );
    }

    #[test]
    fn energy_ablation_shows_double_digit_savings() {
        let map = quick_map(CpuModel::CometLake);
        let rows = energy_ablation(&Scenario::new(), CpuModel::CometLake, &map).unwrap();
        assert_eq!(rows.len(), 2);
        assert!((10.0..25.0).contains(&rows[0].avg_power_w), "{rows:?}");
        assert_eq!(rows[0].savings_pct, 0.0);
        assert!(
            (10.0..40.0).contains(&rows[1].savings_pct),
            "savings {}",
            rows[1].savings_pct
        );
    }

    #[test]
    fn attestation_matrix_tells_the_papers_story() {
        let map = quick_map(CpuModel::CometLake);
        let rows = attestation_matrix(&Scenario::new(), CpuModel::CometLake, &map).unwrap();
        let by = |c: &str| rows.iter().find(|r| r.config.contains(c)).unwrap().clone();
        let undefended = by("undefended");
        assert!(!undefended.plugvolt_ok && !undefended.intel_ok);
        let intel = by("ocm-disabled");
        assert!(intel.intel_ok && !intel.benign_dvfs);
        let paper = by("polling");
        assert!(paper.plugvolt_ok && paper.benign_dvfs && !paper.intel_ok);
    }
}
