//! The MSR-transcript gate: record a soak campaign's MSR traffic to a
//! pinned-schema JSONL fixture and replay it differentially.
//!
//! [`record_fixture`] runs one deterministic campaign (drawn from the
//! scenario's `trace/fixture/schedule` stream) across all four
//! deployment levels on a *recording* backend, one transcript section
//! per level, and returns the JSONL plus the captured telemetry
//! profile and poll stats of each level.
//!
//! [`replay_trace`] is self-contained: it reads the model and root
//! seed from the transcript header, regenerates the same schedule, and
//! re-runs every section on a *replay* backend that verifies each MSR
//! access against the tape. The gate then holds three things at once:
//!
//! 1. **tape-clean** — every section replays with zero divergences, no
//!    overrun and no leftover tape;
//! 2. **oracle-pass** — the replayed runs still hold all three soak
//!    oracles (zero-faults, exposure, stream-equivalence);
//! 3. **sim-differential** — a plain sim run of the same campaign
//!    produces byte-identical telemetry profiles and poll stats.
//!
//! `ci.sh` replays the committed fixture under `results/traces/` on
//! every commit; `tests/determinism.rs` pins the record→replay loop.

use crate::scenario::Scenario;
use crate::soak::{judge, run_level_mode, BootMode, Level, SoakError, Violation, LEVELS};
use plugvolt::poll::PollStats;
use plugvolt_attacks::schedule::{AttackFamily, CampaignSchedule};
use plugvolt_cpu::model::CpuModel;
use plugvolt_hal::error::HalError;
use plugvolt_hal::trace::{
    parse_trace, ReplayCursor, TraceHeader, TraceRecorder, TRACE_SCHEMA, TRACE_SCHEMA_VERSION,
};
use std::fmt;

/// Campaign label of the fixture (also the transcript header label).
pub const FIXTURE_LABEL: &str = "trace/fixture";

/// Errors of the record/replay gate.
#[derive(Debug)]
pub enum TraceGateError {
    /// Transcript serialization/parsing failed.
    Hal(HalError),
    /// The underlying campaign execution failed.
    Soak(SoakError),
    /// The transcript's sections do not line up with the deployment
    /// levels this build runs.
    SectionMismatch {
        /// What the replayer expected (a level label).
        expected: String,
        /// What the transcript had.
        got: String,
    },
    /// Recording refused to ship a fixture that violates the oracles.
    RecordedViolation(Violation),
}

impl fmt::Display for TraceGateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceGateError::Hal(e) => write!(f, "{e}"),
            TraceGateError::Soak(e) => write!(f, "{e}"),
            TraceGateError::SectionMismatch { expected, got } => {
                write!(
                    f,
                    "transcript section mismatch: expected '{expected}', got '{got}'"
                )
            }
            TraceGateError::RecordedViolation(v) => {
                write!(f, "fixture campaign violates an oracle at record time: {v}")
            }
        }
    }
}

impl std::error::Error for TraceGateError {}

impl From<HalError> for TraceGateError {
    fn from(e: HalError) -> Self {
        TraceGateError::Hal(e)
    }
}

impl From<SoakError> for TraceGateError {
    fn from(e: SoakError) -> Self {
        TraceGateError::Soak(e)
    }
}

/// The deterministic fixture campaign: first attack family, drawn from
/// the scenario's `trace/fixture/schedule` stream, with a 300 µs poll
/// period to bound transcript size.
#[must_use]
pub fn fixture_schedule(scn: &Scenario, model: CpuModel) -> CampaignSchedule {
    let spec = model.spec();
    let mut rng = scn.rng("trace/fixture/schedule");
    let mut schedule = CampaignSchedule::generate(AttackFamily::ALL[0], &spec, &mut rng);
    schedule.poll_period_us = 300;
    schedule
}

/// Captured observables of one deployment level, used for the
/// byte-identity comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelCapture {
    /// Deployment-level label (also the transcript section name).
    pub level: &'static str,
    /// Rendered telemetry profile JSON.
    pub profile_json: String,
    /// Final poll stats (polling level only).
    pub poll_stats: Option<PollStats>,
}

/// What [`record_fixture`] produced.
#[derive(Debug, Clone)]
pub struct RecordedFixture {
    /// The JSONL transcript (header, one section per level).
    pub jsonl: String,
    /// Per-level captures of the recorded runs.
    pub captures: Vec<LevelCapture>,
}

/// Records the fixture campaign across all four deployment levels onto
/// one transcript. Refuses to ship a fixture whose campaign violates
/// an oracle (a broken fixture would wedge the CI gate).
///
/// # Errors
///
/// Campaign failures, serialization failures, or a recorded oracle
/// violation.
pub fn record_fixture(scn: &Scenario, model: CpuModel) -> Result<RecordedFixture, TraceGateError> {
    let map = scn.quick_map(model);
    let schedule = fixture_schedule(scn, model);
    let rec = TraceRecorder::new(TraceHeader {
        schema: TRACE_SCHEMA.to_string(),
        version: TRACE_SCHEMA_VERSION,
        model,
        root_seed: scn.root_seed(),
        label: FIXTURE_LABEL.to_string(),
    });
    let mut runs = Vec::with_capacity(LEVELS.len());
    let mut captures = Vec::with_capacity(LEVELS.len());
    for level in LEVELS {
        rec.begin_section(level.label());
        let run = run_level_mode(
            scn,
            model,
            &map,
            &schedule,
            level,
            None,
            BootMode::Record(&rec),
            true,
        )?;
        captures.push(capture_of(level, &run));
        runs.push(run);
    }
    if let Some(v) = judge(&runs) {
        return Err(TraceGateError::RecordedViolation(v));
    }
    Ok(RecordedFixture {
        jsonl: rec.to_jsonl()?,
        captures,
    })
}

fn capture_of(level: Level, run: &crate::soak::RunRecord) -> LevelCapture {
    LevelCapture {
        level: level.label(),
        profile_json: run.profile_json.clone().unwrap_or_default(),
        poll_stats: run.poll_stats.clone(),
    }
}

/// Replay verdict of one transcript section.
#[derive(Debug, Clone)]
pub struct SectionReplay {
    /// Section name (a deployment-level label).
    pub name: String,
    /// Tape events checked off.
    pub consumed: usize,
    /// Mismatches between re-execution and tape.
    pub divergences: usize,
    /// Re-execution accesses past the end of the tape.
    pub overrun: u64,
    /// Tape events the re-execution never reached.
    pub leftover: usize,
}

impl SectionReplay {
    /// Whether the section replayed exactly.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.divergences == 0 && self.overrun == 0 && self.leftover == 0
    }
}

/// The full replay-gate verdict.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Model the transcript was recorded against.
    pub model: CpuModel,
    /// Root seed from the transcript header.
    pub root_seed: u64,
    /// Per-section tape verdicts, in transcript order.
    pub sections: Vec<SectionReplay>,
    /// Oracle verdict of the replayed runs (None = all oracles held).
    pub violation: Option<Violation>,
    /// Captures of the replayed runs.
    pub replay_captures: Vec<LevelCapture>,
    /// Captures of the plain-sim differential runs.
    pub sim_captures: Vec<LevelCapture>,
}

impl ReplayReport {
    /// Whether replay and sim produced byte-identical telemetry
    /// profiles and poll stats, level by level.
    #[must_use]
    pub fn profiles_match(&self) -> bool {
        self.replay_captures == self.sim_captures
    }

    /// The full gate: tape-clean, oracle-pass, sim-differential.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.sections.iter().all(SectionReplay::clean)
            && self.violation.is_none()
            && self.profiles_match()
    }

    /// Human-readable verdict for the CLI.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "replaying {} transcript (model {}, seed {:#x})\n",
            FIXTURE_LABEL, self.model, self.root_seed
        ));
        for s in &self.sections {
            out.push_str(&format!(
                "  section {:<16} {:>5} events  {}\n",
                s.name,
                s.consumed,
                if s.clean() {
                    "clean".to_string()
                } else {
                    format!(
                        "DIVERGED ({} mismatches, {} overrun, {} leftover)",
                        s.divergences, s.overrun, s.leftover
                    )
                }
            ));
        }
        match &self.violation {
            None => out.push_str("  oracles: all held\n"),
            Some(v) => out.push_str(&format!("  oracles: VIOLATION {v}\n")),
        }
        out.push_str(&format!(
            "  sim differential: {}\n",
            if self.profiles_match() {
                "profiles and poll stats byte-identical"
            } else {
                "MISMATCH against plain sim run"
            }
        ));
        out.push_str(if self.passed() {
            "RESULT: replay gate passed\n"
        } else {
            "RESULT: replay gate FAILED\n"
        });
        out
    }
}

/// Replays a JSONL transcript through the replay backend across all
/// deployment levels and runs the sim differential. Self-contained:
/// everything needed (model, seed, schedule stream) comes from the
/// transcript header.
///
/// # Errors
///
/// Schema errors, section/level mismatches, campaign failures.
pub fn replay_trace(jsonl: &str) -> Result<ReplayReport, TraceGateError> {
    let (header, sections) = parse_trace(jsonl)?;
    let scn = Scenario::with_seed(header.root_seed);
    let model = header.model;
    let map = scn.quick_map(model);
    let schedule = fixture_schedule(&scn, model);

    if sections.len() != LEVELS.len() {
        return Err(TraceGateError::SectionMismatch {
            expected: format!("{} sections", LEVELS.len()),
            got: format!("{} sections", sections.len()),
        });
    }

    let mut section_reports = Vec::with_capacity(LEVELS.len());
    let mut replay_captures = Vec::with_capacity(LEVELS.len());
    let mut sim_captures = Vec::with_capacity(LEVELS.len());
    let mut runs = Vec::with_capacity(LEVELS.len());
    for (level, (name, events)) in LEVELS.into_iter().zip(sections) {
        if name != level.label() {
            return Err(TraceGateError::SectionMismatch {
                expected: level.label().to_string(),
                got: name,
            });
        }
        let tape_len = events.len();
        let cursor = ReplayCursor::new(events);
        let run = run_level_mode(
            &scn,
            model,
            &map,
            &schedule,
            level,
            None,
            BootMode::Replay(&cursor),
            true,
        )?;
        section_reports.push(SectionReplay {
            name,
            consumed: cursor.consumed(),
            divergences: cursor.divergences().len(),
            overrun: cursor.overrun(),
            leftover: tape_len - cursor.consumed(),
        });
        replay_captures.push(capture_of(level, &run));
        runs.push(run);

        let sim_run = run_level_mode(
            &scn,
            model,
            &map,
            &schedule,
            level,
            None,
            BootMode::Sim,
            true,
        )?;
        sim_captures.push(capture_of(level, &sim_run));
    }

    Ok(ReplayReport {
        model,
        root_seed: header.root_seed,
        sections: section_reports,
        violation: judge(&runs),
        replay_captures,
        sim_captures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_then_replay_round_trips_clean() {
        let scn = Scenario::new();
        let fixture = record_fixture(&scn, CpuModel::CometLake).expect("records");
        assert_eq!(fixture.captures.len(), 4);
        let report = replay_trace(&fixture.jsonl).expect("replays");
        assert!(report.passed(), "{}", report.render_text());
        // The recorded captures equal the replayed ones too: record,
        // replay and sim are three views of one bit-identical run.
        assert_eq!(fixture.captures, report.replay_captures);
    }

    #[test]
    fn tampered_transcript_is_flagged() {
        let scn = Scenario::new();
        let fixture = record_fixture(&scn, CpuModel::CometLake).expect("records");
        // Flip one written value in the tape: replay must notice.
        let tampered = fixture.jsonl.replacen("\"value\":", "\"value\":9", 1);
        assert_ne!(tampered, fixture.jsonl, "tamper site must exist");
        let report = replay_trace(&tampered).expect("still parses");
        assert!(
            report.sections.iter().any(|s| !s.clean()),
            "tampered tape replayed clean: {}",
            report.render_text()
        );
    }

    #[test]
    fn schedule_is_deterministic() {
        let a = fixture_schedule(&Scenario::new(), CpuModel::CometLake);
        let b = fixture_schedule(&Scenario::new(), CpuModel::CometLake);
        assert_eq!(a, b);
    }
}
