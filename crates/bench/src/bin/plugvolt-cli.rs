//! `plugvolt-cli` — operator-style front end to the reproduction.
//!
//! Mirrors the workflow a vendor/admin would run on real hardware:
//!
//! ```text
//! plugvolt-cli characterize --model comet-lake --out map.json [--coarse] [--workers N]
//! plugvolt-cli inspect      --map map.json
//! plugvolt-cli maximal      --map map.json [--margin 5]
//! plugvolt-cli attack       --model comet-lake [--map map.json --deploy polling|microcode|hardware|ocm-disable]
//! plugvolt-cli energy       --model comet-lake --map map.json
//! plugvolt-cli telemetry    --profile profile.json [--vcd out.vcd]
//! plugvolt-cli bench        [--smoke] [--out BENCH.json] [--baseline BENCH.json]
//! plugvolt-cli bench        --attr [--smoke] [--model M]
//!                           [--trace-out trace.json] [--flame-out stacks.txt]
//! plugvolt-cli soak         [--smoke] [--seed N] [--campaigns N] [--workers N]
//!                           [--model M] [--corpus DIR] [--out report.json]
//!                           [--stream frames.jsonl] [--no-self-test]
//! plugvolt-cli soak         --record fixture.trace.jsonl [--seed N] [--model M]
//! plugvolt-cli soak         --backend replay --trace fixture.trace.jsonl
//! plugvolt-cli soak         --backend host [--reads N] [--period-us N]
//! ```
//!
//! `bench --attr` replaces the perf harness with a traced
//! characterize-grid pass: a per-subsystem hot-path attribution table
//! (the DESIGN.md §5d evidence), an optional Chrome trace-event JSON
//! export (`--trace-out`, loadable in Perfetto or `chrome://tracing`)
//! and an optional collapsed-stack flamegraph (`--flame-out`).
//! `soak --stream` writes one pinned-schema JSONL telemetry frame per
//! campaign (registry counter deltas plus span aggregates; the stream
//! clock is the campaign index, one campaign per simulated
//! millisecond) and forces the sequential campaign path.
//!
//! The `--backend` flag selects the HAL backend behind the machine
//! seam (`plugvolt_hal`): `sim` (default) runs the in-memory register
//! file; `--record` records the deterministic fixture campaign to a
//! pinned-schema JSONL MSR transcript; `--backend replay --trace FILE`
//! re-executes a transcript on the replay backend and gates on
//! tape-clean + oracle-pass + sim-differential byte identity;
//! `--backend host` probes the *read-only* Linux host backend
//! (`/dev/cpu/*/msr` + sysfs cpufreq) and reports polling overhead and
//! worst-case detection latency — it never writes an MSR.
//!
//! The characterization artifact is plain JSON — the same bytes the
//! kernel module consumes — so the stages can run on different machines,
//! exactly like the paper's S1 (vendor/admin) → S2 (deployment) split.
//!
//! Source hygiene is a separate binary: `plugvolt-lint` (in
//! `plugvolt-analysis`) gates the workspace for determinism and
//! MSR-write discipline; run it as
//! `cargo run -p plugvolt-analysis --bin plugvolt-lint -- --workspace`.

use plugvolt::characterize::SweepConfig;
use plugvolt::charmap::CharacterizationMap;
use plugvolt::deploy::Deployment;
use plugvolt::maximal::MaximalSafeState;
use plugvolt::poll::PollConfig;
use plugvolt_attacks::plundervolt::{run_rsa_attack, PlundervoltConfig};
use plugvolt_bench::attr::{render_attribution, run_attribution, AttrOptions};
use plugvolt_bench::experiments::energy_ablation;
use plugvolt_bench::scenario::Scenario;
use plugvolt_bench::text::TextTable;
use plugvolt_cpu::model::CpuModel;
use plugvolt_des::time::{SimDuration, SimTime};
use plugvolt_telemetry::{
    chrome_trace_json, events_to_vcd, flamegraph_collapsed, set_span_tracing_default, Sink,
    StreamCursor, TelemetryProfile, SCHEMA_VERSION,
};
use std::fmt;
use std::io::Write as _;
use std::process::ExitCode;

/// Typed errors for the newer CLI flags (`--attr`, `--trace-out`,
/// `--flame-out`, `--stream`) — structured variants instead of ad-hoc
/// `format!` strings, so callers and tests can match on the failure.
#[derive(Debug)]
enum CliError {
    /// A value-taking flag was passed without its value.
    MissingValue {
        /// The flag in question.
        flag: &'static str,
    },
    /// A flag only meaningful in combination was passed alone.
    RequiresFlag {
        /// The flag in question.
        flag: &'static str,
        /// The flag it requires.
        requires: &'static str,
    },
    /// Stream-file I/O failed.
    StreamIo {
        /// Stream destination path.
        path: String,
        /// Underlying error.
        source: std::io::Error,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::MissingValue { flag } => {
                write!(
                    f,
                    "{flag} requires a value (none given, or the next token is a flag)"
                )
            }
            CliError::RequiresFlag { flag, requires } => {
                write!(f, "{flag} only makes sense together with {requires}")
            }
            CliError::StreamIo { path, source } => {
                write!(f, "cannot write telemetry stream to {path}: {source}")
            }
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::StreamIo { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// The value of a value-taking flag, or a typed [`CliError`] when the
/// flag is present but the value token is missing or looks like
/// another flag.
fn value_of(args: &[String], flag: &'static str) -> Result<Option<String>, CliError> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => Ok(Some(v.clone())),
            _ => Err(CliError::MissingValue { flag }),
        },
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("plugvolt-cli: {e}");
            ExitCode::from(1)
        }
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("");
    let opt = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let flag = |name: &str| args.iter().any(|a| a == name);

    match cmd {
        "characterize" => {
            let model = parse_model(&opt("--model").ok_or("--model required")?)?;
            let out = opt("--out").ok_or("--out required")?;
            let seed = opt("--seed").map_or(Ok(2024), |s| s.parse::<u64>())?;
            let cfg = if flag("--coarse") {
                SweepConfig::coarse()
            } else {
                SweepConfig::default()
            };
            let workers = opt("--workers").map_or(Ok(1), |s| s.parse::<usize>())?;
            let scn = Scenario::with_seed(seed);
            eprintln!(
                "sweeping {model} ({} resolution, {workers} worker{})…",
                if flag("--coarse") { "coarse" } else { "paper" },
                if workers == 1 { "" } else { "s" }
            );
            let run = scn.characterize(model, &cfg, workers)?;
            std::fs::write(&out, serde_json::to_string_pretty(&run.map)?)?;
            eprintln!(
                "{} grid points, {} crashes, {} simulated → {out}",
                run.records.len(),
                run.crashes,
                run.duration
            );
            Ok(())
        }
        "inspect" => {
            let map = load_map(&opt("--map").ok_or("--map required")?)?;
            println!(
                "characterization of {} (microcode {:#x}), sweep floor {} mV",
                map.cpu_name(),
                map.microcode(),
                map.sweep_floor_mv()
            );
            let mut t = TextTable::new(["frequency", "fault onset (mV)", "crash (mV)"]);
            for (f, band) in map.iter() {
                t.row([
                    f.to_string(),
                    band.fault_onset_mv.map_or("-".into(), |o| o.to_string()),
                    band.crash_mv.map_or("-".into(), |c| c.to_string()),
                ]);
            }
            print!("{}", t.render());
            Ok(())
        }
        "maximal" => {
            let map = load_map(&opt("--map").ok_or("--map required")?)?;
            let margin = opt("--margin").map_or(Ok(5), |s| s.parse::<i32>())?;
            match MaximalSafeState::from_map(&map, margin) {
                Some(mss) => {
                    println!(
                        "maximal safe state of {}: {} mV (margin {} mV)",
                        mss.cpu_name, mss.offset_mv, mss.margin_mv
                    );
                    println!("microcode bound / MSR clamp value: {} mV", mss.offset_mv);
                    Ok(())
                }
                None => Err("map certifies nothing (empty?)".into()),
            }
        }
        "attack" => {
            let model = parse_model(&opt("--model").ok_or("--model required")?)?;
            let scn = Scenario::with_seed(42);
            let mut machine = scn.machine(model);
            let deployment = match opt("--deploy").as_deref() {
                None => Deployment::None,
                Some("polling") => Deployment::PollingModule(PollConfig::default()),
                Some("microcode") => Deployment::Microcode {
                    revision: 0xf5,
                    margin_mv: 5,
                },
                Some("hardware") => Deployment::HardwareMsr { margin_mv: 5 },
                Some("ocm-disable") => Deployment::OcmDisable,
                Some(other) => return Err(format!("unknown deployment '{other}'").into()),
            };
            if !matches!(deployment, Deployment::None) {
                let map = load_map(&opt("--map").ok_or("--map required with --deploy")?)?;
                scn.deploy(&mut machine, &map, deployment.clone())?;
                eprintln!("deployed {}", deployment.label());
            }
            let report = run_rsa_attack(&mut machine, &PlundervoltConfig::default(), 1)?;
            println!("{}", serde_json::to_string_pretty(&report)?);
            if machine.trace().dropped() > 0 {
                eprintln!(
                    "note: {} trace records dropped (buffer capacity exceeded)",
                    machine.trace().dropped()
                );
            }
            if report.success {
                eprintln!("RESULT: machine compromised");
            } else {
                eprintln!("RESULT: attack defeated");
            }
            Ok(())
        }
        "energy" => {
            let model = parse_model(&opt("--model").ok_or("--model required")?)?;
            let map = load_map(&opt("--map").ok_or("--map required")?)?;
            let rows = energy_ablation(&Scenario::new(), model, &map)?;
            println!("{}", serde_json::to_string_pretty(&rows)?);
            Ok(())
        }
        "bench" => {
            let smoke = flag("--smoke");
            if flag("--attr") {
                return attr_command(&args, smoke);
            }
            for f in ["--trace-out", "--flame-out"] {
                if args.iter().any(|a| a == f) {
                    return Err(CliError::RequiresFlag {
                        flag: f,
                        requires: "--attr",
                    }
                    .into());
                }
            }
            let out = opt("--out");
            eprintln!(
                "running the deterministic perf harness ({} workloads)…",
                if smoke { "smoke" } else { "full" }
            );
            let report = plugvolt_bench::perf::run(smoke);
            report
                .validate()
                .map_err(|e| format!("bench report failed its own schema: {e}"))?;
            let json = report.to_json();
            match &out {
                Some(path) => {
                    std::fs::write(path, &json)?;
                    eprintln!("report written to {path}");
                }
                None => print!("{json}"),
            }
            for b in &report.benches {
                match b.speedup {
                    Some(s) => eprintln!(
                        "  {:<22} {:>12} ns vs {:>12} ns analytic ({s:.2}x)",
                        b.name,
                        b.measured_ns,
                        b.baseline_ns.unwrap_or(0)
                    ),
                    None => eprintln!(
                        "  {:<22} {:>12} ns for {} ops",
                        b.name, b.measured_ns, b.work_units
                    ),
                }
            }
            if let Some(path) = opt("--baseline") {
                let baseline: plugvolt_bench::perf::BenchReport =
                    serde_json::from_str(&std::fs::read_to_string(&path)?)?;
                baseline
                    .validate()
                    .map_err(|e| format!("baseline {path} failed schema validation: {e}"))?;
                let regressions = report.regressions_against(&baseline);
                if !regressions.is_empty() {
                    return Err(
                        format!("perf regression vs {path}: {}", regressions.join("; ")).into(),
                    );
                }
                eprintln!("no >2x speedup regression vs {path}");
            }
            Ok(())
        }
        "soak" => {
            match value_of(&args, "--backend")?.as_deref() {
                None | Some("sim") => {}
                Some("replay") => return replay_command(&args),
                Some("host") => return host_command(&args),
                Some(other) => {
                    return Err(format!("unknown backend '{other}' (sim | replay | host)").into())
                }
            }
            if let Some(path) = value_of(&args, "--record")? {
                return record_command(&args, &path);
            }
            if args.iter().any(|a| a == "--trace") {
                return Err(CliError::RequiresFlag {
                    flag: "--trace",
                    requires: "--backend replay",
                }
                .into());
            }
            let mut cfg = if flag("--smoke") {
                plugvolt_bench::soak::SoakConfig::smoke()
            } else {
                plugvolt_bench::soak::SoakConfig::default()
            };
            if let Some(n) = opt("--campaigns") {
                cfg.campaigns = n.parse::<u32>()?;
            }
            if let Some(n) = opt("--workers") {
                cfg.workers = n.parse::<usize>()?;
            }
            if let Some(m) = opt("--model") {
                cfg.model = parse_model(&m)?;
            }
            if flag("--no-self-test") {
                cfg.self_test = false;
            }
            let seed =
                opt("--seed").map_or(Ok(plugvolt_bench::scenario::SEED), |s| parse_seed(&s))?;
            let corpus = opt("--corpus");
            let stream_path = value_of(&args, "--stream")?;
            let mut scn = Scenario::with_seed(seed);
            let stream_sink = stream_path.as_ref().map(|_| Sink::new());
            if let Some(sink) = &stream_sink {
                scn = scn.with_telemetry(sink.clone());
            }
            eprintln!(
                "soaking {} with {} campaigns × 4 deployment levels (seed {seed:#x})…",
                cfg.model, cfg.campaigns
            );
            let corpus_dir = corpus.as_deref().map(std::path::Path::new);
            let report = match (&stream_path, &stream_sink) {
                (Some(path), Some(sink)) => {
                    let stream_io = |e: std::io::Error| CliError::StreamIo {
                        path: path.clone(),
                        source: e,
                    };
                    let mut file = std::fs::File::create(path).map_err(stream_io)?;
                    // One campaign advances the stream clock by one
                    // simulated millisecond; span tracing is enabled
                    // globally so campaign machines feed the frames'
                    // span aggregates.
                    let mut cursor = StreamCursor::new(1);
                    let mut frames = 0u64;
                    let mut io_error: Option<std::io::Error> = None;
                    set_span_tracing_default(true);
                    let result = plugvolt_bench::soak::run_soak_streaming(
                        &scn,
                        &cfg,
                        corpus_dir,
                        Some(&mut |campaigns: u32| {
                            let now =
                                SimTime::ZERO + SimDuration::from_millis(u64::from(campaigns));
                            if let Some(frame) = cursor.poll(sink, now) {
                                frames += 1;
                                if let Err(e) = writeln!(file, "{}", frame.to_jsonl()) {
                                    io_error.get_or_insert(e);
                                }
                            }
                        }),
                    );
                    set_span_tracing_default(false);
                    let report = result?;
                    if let Some(e) = io_error {
                        return Err(stream_io(e).into());
                    }
                    let end = SimTime::ZERO + SimDuration::from_millis(u64::from(cfg.campaigns));
                    let frame = cursor.flush(sink, end);
                    writeln!(file, "{}", frame.to_jsonl()).map_err(stream_io)?;
                    frames += 1;
                    eprintln!("{frames} telemetry frames streamed to {path}");
                    report
                }
                _ => plugvolt_bench::soak::run_soak(&scn, &cfg, corpus_dir)?,
            };
            let json = report.to_json();
            match opt("--out") {
                Some(path) => {
                    std::fs::write(&path, &json)?;
                    eprintln!("report written to {path}");
                }
                None => print!("{json}"),
            }
            eprintln!(
                "{} corpus case{} replayed, {} violation{}",
                report.corpus_replayed,
                if report.corpus_replayed == 1 { "" } else { "s" },
                report.violations.len(),
                if report.violations.len() == 1 {
                    ""
                } else {
                    "s"
                },
            );
            for v in &report.violations {
                eprintln!(
                    "  campaign {} ({}): {} — shrunk {} -> {} events{}",
                    v.campaign,
                    v.family,
                    v.violation,
                    v.original_events,
                    v.reproducer.len(),
                    v.corpus_file
                        .as_deref()
                        .map_or(String::new(), |f| format!(" ({f})")),
                );
            }
            for cf in &report.corpus_failures {
                eprintln!("  corpus {}: {}", cf.file, cf.detail);
            }
            if let Some(st) = &report.self_test {
                if st.caught {
                    eprintln!(
                        "self-test: weakened poller (skip every {}th poll) caught, \
                         reproducer shrunk to {} events in {} evals",
                        st.skip_every, st.shrunk_events, st.shrink_evals
                    );
                } else {
                    eprintln!(
                        "self-test: oracle MISSED the weakened poller after {} campaigns",
                        st.attempts
                    );
                }
            }
            if report.passed() {
                eprintln!("RESULT: all oracles held");
                Ok(())
            } else {
                Err("soak oracle violation (see report)".into())
            }
        }
        "telemetry" => {
            let path = opt("--profile").ok_or("--profile required")?;
            let profile: TelemetryProfile = serde_json::from_str(&std::fs::read_to_string(&path)?)?;
            if profile.schema_version != SCHEMA_VERSION {
                eprintln!(
                    "warning: profile schema v{} (this build renders v{SCHEMA_VERSION})",
                    profile.schema_version
                );
            }
            print!("{}", profile.render_table());
            if let Some(vcd_path) = opt("--vcd") {
                std::fs::write(&vcd_path, events_to_vcd(&profile.events))?;
                eprintln!(
                    "{} events rendered to waveform {vcd_path}",
                    profile.events.len()
                );
            }
            Ok(())
        }
        _ => {
            eprintln!(
                "usage: plugvolt-cli <subcommand> [options]\n\
                 \n\
                 \x20 characterize --model M --out map.json [--coarse] [--workers N] [--seed N]\n\
                 \x20 inspect      --map map.json\n\
                 \x20 maximal      --map map.json [--margin MV]\n\
                 \x20 attack       --model M [--map map.json --deploy polling|microcode|hardware|ocm-disable]\n\
                 \x20 energy       --model M --map map.json\n\
                 \x20 telemetry    --profile profile.json [--vcd out.vcd]\n\
                 \x20 bench        [--smoke] [--out BENCH.json] [--baseline BENCH.json]\n\
                 \x20 bench        --attr [--smoke] [--model M] [--trace-out trace.json] [--flame-out stacks.txt]\n\
                 \x20 soak         [--smoke] [--seed N] [--campaigns N] [--workers N] [--model M]\n\
                 \x20              [--corpus DIR] [--out report.json] [--stream frames.jsonl] [--no-self-test]\n\
                 \x20 soak         --record fixture.trace.jsonl [--seed N] [--model M]\n\
                 \x20 soak         --backend replay --trace fixture.trace.jsonl\n\
                 \x20 soak         --backend host [--reads N] [--period-us N]\n\
                 \n\
                 `bench --attr` prints the per-subsystem hot-path attribution table;\n\
                 `--trace-out` exports a Chrome trace-event JSON (load in Perfetto);\n\
                 `soak --stream` appends one pinned-schema telemetry frame per campaign;\n\
                 `soak --record` records the fixture campaign's MSR transcript,\n\
                 `soak --backend replay --trace` re-runs it with differential checks, and\n\
                 `soak --backend host` probes the read-only Linux MSR/cpufreq backend.\n\
                 \n\
                 lint the workspace sources (determinism & MSR-safety gate):\n\
                 \x20 cargo run -p plugvolt-analysis --bin plugvolt-lint -- --workspace"
            );
            Err("missing or unknown subcommand".into())
        }
    }
}

/// The `bench --attr` subcommand: one traced characterize-grid pass,
/// rendered as the per-subsystem attribution table, with optional
/// Chrome-trace and collapsed-stack flamegraph exports.
fn attr_command(args: &[String], smoke: bool) -> Result<(), Box<dyn std::error::Error>> {
    let trace_out = value_of(args, "--trace-out")?;
    let flame_out = value_of(args, "--flame-out")?;
    let model = match value_of(args, "--model")? {
        Some(m) => parse_model(&m)?,
        None => CpuModel::CometLake,
    };
    eprintln!(
        "tracing a {} characterize-grid pass on {model}…",
        if smoke {
            "coarse (smoke)"
        } else {
            "paper-resolution"
        }
    );
    let attr = run_attribution(&AttrOptions {
        model,
        smoke,
        capture_events: trace_out.is_some(),
    })?;
    print!("{}", render_attribution(&attr));
    if let Some(path) = trace_out {
        let process = format!("plugvolt characterize-grid ({})", attr.model);
        std::fs::write(&path, chrome_trace_json(&attr.events, &process))?;
        eprintln!(
            "{} span events exported to {path} (load in Perfetto or chrome://tracing)",
            attr.events.len()
        );
    }
    if let Some(path) = flame_out {
        std::fs::write(&path, flamegraph_collapsed(&attr.rows))?;
        eprintln!("collapsed stacks written to {path} (feed to flamegraph.pl)");
    }
    Ok(())
}

/// The banner echoes seeds in hex; accept them back in either radix so
/// a printed seed is always pasteable.
fn parse_seed(s: &str) -> Result<u64, std::num::ParseIntError> {
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse::<u64>(),
    }
}

/// `soak --record FILE`: records the deterministic fixture campaign
/// (all four deployment levels) onto one MSR transcript and writes the
/// pinned-schema JSONL to `FILE`. Refuses to write a fixture whose
/// campaign violates an oracle.
fn record_command(args: &[String], path: &str) -> Result<(), Box<dyn std::error::Error>> {
    let seed = match value_of(args, "--seed")? {
        Some(s) => parse_seed(&s)?,
        None => plugvolt_bench::scenario::SEED,
    };
    let model = match value_of(args, "--model")? {
        Some(m) => parse_model(&m)?,
        None => CpuModel::CometLake,
    };
    let scn = Scenario::with_seed(seed);
    eprintln!(
        "recording the {} fixture campaign on {model} (seed {seed:#x})…",
        plugvolt_bench::trace::FIXTURE_LABEL
    );
    let fixture = plugvolt_bench::trace::record_fixture(&scn, model)?;
    std::fs::write(path, &fixture.jsonl)?;
    eprintln!(
        "{} transcript lines ({} levels) written to {path}",
        fixture.jsonl.lines().count(),
        fixture.captures.len()
    );
    Ok(())
}

/// `soak --backend replay --trace FILE`: re-executes a recorded MSR
/// transcript on the replay backend and gates on tape-clean sections,
/// the soak oracles, and byte-identical telemetry vs a plain sim run.
fn replay_command(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let path = value_of(args, "--trace")?.ok_or(CliError::RequiresFlag {
        flag: "--backend replay",
        requires: "--trace FILE",
    })?;
    let jsonl = std::fs::read_to_string(&path)?;
    let report = plugvolt_bench::trace::replay_trace(&jsonl)?;
    print!("{}", report.render_text());
    if report.passed() {
        Ok(())
    } else {
        Err(format!("replay gate failed for {path} (see verdict above)").into())
    }
}

/// `soak --backend host`: probes the read-only Linux host backend
/// (`/dev/cpu/*/msr` + sysfs cpufreq) and reports per-core read
/// latency plus the worst-case detection latency a software poller at
/// `--period-us` would see. Never writes an MSR; degrades gracefully
/// without root (unreadable cores are reported, not fatal).
#[cfg(target_os = "linux")]
fn host_command(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let reads = match value_of(args, "--reads")? {
        Some(n) => n.parse::<u32>()?,
        None => 64,
    };
    let period_us = match value_of(args, "--period-us")? {
        Some(n) => n.parse::<f64>()?,
        None => 100.0,
    };
    let report = plugvolt_hal::host::probe_poll_overhead(reads);
    print!("{}", report.render_text(period_us));
    Ok(())
}

/// Stub on non-Linux targets (the host backend is Linux-only).
#[cfg(not(target_os = "linux"))]
fn host_command(_args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    Err("--backend host requires Linux (/dev/cpu/*/msr + sysfs cpufreq)".into())
}

fn parse_model(s: &str) -> Result<CpuModel, String> {
    match s.to_ascii_lowercase().replace('_', "-").as_str() {
        "sky-lake" | "skylake" => Ok(CpuModel::SkyLake),
        "kaby-lake-r" | "kabylaker" | "kabylake-r" => Ok(CpuModel::KabyLakeR),
        "comet-lake" | "cometlake" => Ok(CpuModel::CometLake),
        other => Err(format!(
            "unknown model '{other}' (sky-lake | kaby-lake-r | comet-lake)"
        )),
    }
}

fn load_map(path: &str) -> Result<CharacterizationMap, Box<dyn std::error::Error>> {
    Ok(serde_json::from_str(&std::fs::read_to_string(path)?)?)
}
