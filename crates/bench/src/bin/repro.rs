//! Regenerates every table and figure of *Plug Your Volt* (DAC 2024).
//!
//! ```text
//! repro [--full] <experiment>
//!
//! experiments:
//!   table1    MSR 0x150 bit layout (paper Table 1)
//!   fig1      Eq. 1 terms vs undervolt (paper Figure 1 timing intuition)
//!   fig2      Sky Lake safe/unsafe characterization (paper Figure 2)
//!   fig3      Kaby Lake R characterization (paper Figure 3)
//!   fig4      Comet Lake characterization (paper Figure 4)
//!   table2    SPEC2017-like polling overhead (paper Table 2)
//!   defense   attack × deployment matrix (§4.3 complete prevention)
//!   levels    kernel module vs microcode vs MSR clamp turnaround (§5)
//!   stepping  single/zero-stepping vs deflection vs polling (§4.1)
//!   interval  polling-period ablation: overhead vs turnaround
//!   planes    voltage-plane ablation: core-only vs plane-aware polling
//!   energy    energy cost of denying benign undervolting (RAPL)
//!   units     die-to-die variation: per-unit vs per-generation bounds
//!   attest    attestation policies (§4.1)
//!   all       everything above
//!
//! --full uses the paper's full sweep resolution (slower).
//! --json emits machine-readable JSON to stdout instead of tables
//!        (figures/defense/levels/stepping/interval/planes/energy/units).
//! --telemetry <path> writes a deterministic telemetry profile (JSON)
//!        covering the run: MSR traffic, detection latency, exposure
//!        windows (table2/defense/levels/interval).
//! --stream <path> appends pinned-schema JSONL telemetry snapshot
//!        frames (registry counter deltas plus span aggregates) every
//!        simulated millisecond while the characterization figures
//!        (fig2/fig3/fig4) sweep; each experiment is re-based onto one
//!        monotone stream clock.
//! ```

use plugvolt::characterize::CharacterizationRun;
use plugvolt_bench::experiments::{self, quick_map};
use plugvolt_bench::scenario::Scenario;
use plugvolt_bench::text::TextTable;
use plugvolt_cpu::freq::FreqMhz;
use plugvolt_cpu::model::CpuModel;
use plugvolt_des::time::SimTime;
use plugvolt_msr::oc_mailbox::{encode_offset_request, OcRequest, Plane};
use plugvolt_telemetry::{Sink, StreamCursor};
use plugvolt_workloads::overhead::{run_table2_with, OverheadConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let json = args.iter().any(|a| a == "--json");
    JSON_MODE.store(json, std::sync::atomic::Ordering::Relaxed);
    let tpos = args.iter().position(|a| a == "--telemetry");
    let telemetry_path = tpos.and_then(|i| args.get(i + 1)).cloned();
    if tpos.is_some()
        && telemetry_path
            .as_deref()
            .map_or(true, |p| p.starts_with("--"))
    {
        eprintln!("--telemetry requires a file path argument");
        return ExitCode::from(2);
    }
    let spos = args.iter().position(|a| a == "--stream");
    let stream_path = spos.and_then(|i| args.get(i + 1)).cloned();
    if spos.is_some() && stream_path.as_deref().map_or(true, |p| p.starts_with("--")) {
        eprintln!("--stream requires a file path argument");
        return ExitCode::from(2);
    }
    // The tokens right after --telemetry / --stream are their values,
    // not the command.
    let cmd = args
        .iter()
        .enumerate()
        .find(|(i, a)| {
            !a.starts_with("--")
                && tpos.map_or(true, |t| *i != t + 1)
                && spos.map_or(true, |s| *i != s + 1)
        })
        .map(|(_, a)| a.clone());
    let Some(cmd) = cmd else {
        eprintln!("usage: repro [--full] [--json] [--telemetry <path>] [--stream <path>] <table1|fig1|fig2|fig3|fig4|table2|defense|levels|stepping|interval|planes|energy|units|attest|all>");
        return ExitCode::from(2);
    };
    let sink = (telemetry_path.is_some() || stream_path.is_some()).then(Sink::new);
    let scn = match &sink {
        Some(sink) => Scenario::new().with_telemetry(sink.clone()),
        None => Scenario::new(),
    };
    let mut stream = match (&stream_path, &sink) {
        (Some(path), Some(sink)) => {
            // The stream frames carry span aggregates; the machines of
            // the streamed figures share this sink's tracer.
            sink.tracer().set_enabled(true);
            match StreamWriter::create(path) {
                Ok(w) => Some(w),
                Err(e) => {
                    eprintln!("cannot write telemetry stream to {path}: {e}");
                    return ExitCode::from(1);
                }
            }
        }
        _ => None,
    };
    let run = |name: &str| cmd == "all" || cmd == name;
    let mut matched = cmd == "all";

    if run("table1") {
        matched = true;
        table1();
    }
    if run("fig1") {
        matched = true;
        fig1();
    }
    for (name, model) in [
        ("fig2", CpuModel::SkyLake),
        ("fig3", CpuModel::KabyLakeR),
        ("fig4", CpuModel::CometLake),
    ] {
        if run(name) {
            matched = true;
            figure(&scn, name, model, full, stream.as_mut());
        }
    }
    if run("table2") {
        matched = true;
        table2(&scn, full);
    }
    if run("defense") {
        matched = true;
        defense(&scn);
    }
    if run("levels") {
        matched = true;
        levels(&scn);
    }
    if run("stepping") {
        matched = true;
        stepping(&scn);
    }
    if run("interval") {
        matched = true;
        interval(&scn);
    }
    if run("planes") {
        matched = true;
        planes(&scn);
    }
    if run("energy") {
        matched = true;
        energy(&scn);
    }
    if run("units") {
        matched = true;
        units(&scn);
    }
    if run("attest") {
        matched = true;
        attest(&scn);
    }
    if !matched {
        eprintln!("unknown experiment '{cmd}'");
        return ExitCode::from(2);
    }
    if let (Some(w), Some(sink)) = (stream.as_mut(), &sink) {
        match w.finish(sink) {
            Ok(frames) => eprintln!(
                "{frames} telemetry frames streamed to {}",
                stream_path.as_deref().unwrap_or("?")
            ),
            Err(e) => {
                eprintln!(
                    "cannot write telemetry stream to {}: {e}",
                    stream_path.as_deref().unwrap_or("?")
                );
                return ExitCode::from(1);
            }
        }
    }
    if let (Some(path), Some(sink)) = (telemetry_path, sink) {
        let profile = sink.profile(&cmd);
        if let Err(e) = std::fs::write(&path, profile.to_json() + "\n") {
            eprintln!("failed to write telemetry profile to {path}: {e}");
            return ExitCode::from(1);
        }
        eprintln!(
            "telemetry profile written to {path} ({} events retained, {} dropped; {} trace records dropped)",
            profile.events.len(),
            profile.events_dropped,
            profile.trace_dropped
        );
    }
    ExitCode::SUCCESS
}

/// Streams pinned-schema telemetry frames to a JSONL file while the
/// characterization figures sweep. Each experiment boots an
/// independent machine whose sim clock restarts at zero, so the writer
/// re-bases every experiment onto one monotone stream clock
/// (`base_ps`) before polling the cursor; I/O errors are stashed and
/// surfaced once at [`StreamWriter::finish`].
struct StreamWriter {
    cursor: StreamCursor,
    out: std::fs::File,
    frames: u64,
    base_ps: u64,
    last_ps: u64,
    error: Option<std::io::Error>,
}

impl StreamWriter {
    fn create(path: &str) -> Result<Self, std::io::Error> {
        Ok(StreamWriter {
            cursor: StreamCursor::new(1),
            out: std::fs::File::create(path)?,
            frames: 0,
            base_ps: 0,
            last_ps: 0,
            error: None,
        })
    }

    /// Re-base the stream clock before an experiment: its machine's
    /// sim clock starts over at zero.
    fn begin_experiment(&mut self) {
        self.base_ps = self.last_ps;
    }

    /// Poll the cursor at the machine's current (re-based) sim time,
    /// appending a frame when a snapshot interval elapsed.
    fn observe(&mut self, sink: &Sink, now: SimTime) {
        let abs = self.base_ps + now.as_picos();
        self.last_ps = self.last_ps.max(abs);
        if let Some(frame) = self.cursor.poll(sink, SimTime::from_picos(abs)) {
            self.write(&frame.to_jsonl());
        }
    }

    /// Emit the final unconditional frame and surface any stashed I/O
    /// error; returns the total frame count on success.
    fn finish(&mut self, sink: &Sink) -> Result<u64, std::io::Error> {
        let frame = self.cursor.flush(sink, SimTime::from_picos(self.last_ps));
        self.write(&frame.to_jsonl());
        match self.error.take() {
            Some(e) => Err(e),
            None => Ok(self.frames),
        }
    }

    fn write(&mut self, line: &str) {
        if self.error.is_some() {
            return;
        }
        use std::io::Write as _;
        match writeln!(self.out, "{line}") {
            Ok(()) => self.frames += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

static JSON_MODE: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

fn json_mode() -> bool {
    JSON_MODE.load(std::sync::atomic::Ordering::Relaxed)
}

/// Worker count for the parallel experiment matrices. The merged
/// results are byte-identical for any worker count (pinned by
/// `tests/determinism.rs`), so using every available core is safe.
fn matrix_workers() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// In JSON mode, print the serialized payload and skip the table.
fn emit_json<T: serde::Serialize>(name: &str, payload: &T) -> bool {
    if !json_mode() {
        return false;
    }
    println!(
        "{}",
        serde_json::json!({ "experiment": name, "data": payload })
    );
    true
}

fn banner(title: &str) {
    if !json_mode() {
        println!("\n=== {title} ===\n");
    }
}

fn table1() {
    banner("Table 1: MSR 0x150 (overclocking mailbox) bit layout");
    let mut t = TextTable::new(["bits", "function", "explanation"]);
    t.row(["0-20", "-", "reserved"]);
    t.row([
        "21-31",
        "offset",
        "voltage offset vs base voltage, 1/1024 V units, 11-bit two's complement",
    ]);
    t.row(["32", "write-enable", "1 = apply offset, 0 = read request"]);
    t.row(["33-39", "-", "reserved (command byte 0x11 spans 32-39)"]);
    t.row([
        "40-42",
        "plane select",
        "0=core 1=gpu 2=cache 3=uncore 4=analog-io",
    ]);
    t.row(["43-62", "-", "reserved"]);
    t.row(["63", "run/busy", "must be 1 for the write to be accepted"]);
    print!("{}", t.render());

    println!("\nAlgorithm 1 encodings (offset_voltage):");
    let mut t = TextTable::new(["offset (mV)", "plane", "raw value", "decodes back to"]);
    for (off, plane) in [(-50, Plane::Core), (-150, Plane::Core), (-250, Plane::Gpu)] {
        let raw = encode_offset_request(off, plane.index());
        let back = OcRequest::decode(raw).expect("well-formed");
        t.row([
            off.to_string(),
            plane.to_string(),
            format!("{raw:#018x}"),
            format!("{} mV on {}", back.offset_mv(), back.plane()),
        ]);
    }
    print!("{}", t.render());
}

fn fig1() {
    banner("Figure 1: Eq. 1 interplay under undervolting (Sky Lake @ 3.6 GHz)");
    let series = experiments::fig1_series(CpuModel::SkyLake, FreqMhz(3_600), 260);
    let mut t = TextTable::new([
        "offset (mV)",
        "T_src+T_prop (ps)",
        "T_clk-T_setup-T_eps (ps)",
        "slack (ps)",
        "state",
    ]);
    for p in series.iter().step_by(4) {
        t.row([
            p.offset_mv.to_string(),
            format!("{:.1}", p.path_ps),
            format!("{:.1}", p.available_ps),
            format!("{:+.1}", p.slack_ps),
            p.state.to_string(),
        ]);
    }
    print!("{}", t.render());
}

fn figure(
    scn: &Scenario,
    name: &str,
    model: CpuModel,
    full: bool,
    stream: Option<&mut StreamWriter>,
) {
    let spec = model.spec();
    banner(&format!(
        "{}: safe/unsafe characterization of {} ({}, microcode {:#x})",
        name.to_uppercase(),
        spec.codename,
        spec.name,
        spec.microcode
    ));
    let run: CharacterizationRun = match stream {
        Some(w) => {
            w.begin_experiment();
            experiments::figure_characterization_observed(scn, model, full, &mut |m| {
                w.observe(m.telemetry(), m.now());
            })
        }
        None => experiments::figure_characterization(scn, model, full),
    }
    .expect("sweep completes");
    if emit_json(name, &run.map) {
        return;
    }
    let mut t = TextTable::new([
        "frequency",
        "nominal (mV)",
        "first faults at (mV)",
        "crash at (mV)",
        "unsafe band width (mV)",
    ]);
    for (f, band) in run.map.iter() {
        let width = match (band.fault_onset_mv, band.crash_mv) {
            (Some(o), Some(c)) => (o - c).to_string(),
            _ => "-".to_owned(),
        };
        t.row([
            f.to_string(),
            format!("{:.0}", spec.nominal_voltage_mv(f)),
            band.fault_onset_mv
                .map_or("none in sweep".into(), |o| o.to_string()),
            band.crash_mv
                .map_or("none in sweep".into(), |c| c.to_string()),
            width,
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nsweep: {} grid points, {} crashes/resets, {} simulated",
        run.records.len(),
        run.crashes,
        run.duration
    );
    if let Some(mss) = run.map.maximal_safe_offset_mv(0) {
        println!("maximal safe state: {mss} mV (deepest offset safe at every frequency)");
    }
}

fn table2(scn: &Scenario, full: bool) {
    banner("Table 2: polling-countermeasure overhead on SPEC2017-like suite (Comet Lake)");
    let cfg = OverheadConfig {
        work_divisor: if full { 1 } else { 20 },
        ..OverheadConfig::default()
    };
    let table = run_table2_with(&cfg, scn.telemetry()).expect("harness completes");
    if emit_json("table2", &table) {
        return;
    }
    let mut t = TextTable::new([
        "benchmark",
        "base w/o poll",
        "base w/ poll",
        "slowdown %",
        "peak w/o poll",
        "peak w/ poll",
        "slowdown %",
    ]);
    for r in &table.rows {
        t.row([
            r.name.clone(),
            format!("{:.2}", r.base_without),
            format!("{:.2}", r.base_with),
            format!("{:+.2}%", r.base_slowdown_pct),
            format!("{:.2}", r.peak_without),
            format!("{:.2}", r.peak_with),
            format!("{:+.2}%", r.peak_slowdown_pct),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nmean slowdown: base {:+.3}%, peak {:+.3}%, mean |slowdown| {:.3}% (paper: 0.28%)",
        table.mean_base_slowdown_pct, table.mean_peak_slowdown_pct, table.mean_abs_slowdown_pct
    );
    if !full {
        println!("(scaled run: pass --full for reference-length workloads)");
    }
}

fn defense(scn: &Scenario) {
    banner("Defense matrix (§4.3): every attack vs every deployment (Comet Lake)");
    let model = CpuModel::CometLake;
    let map = quick_map(model);
    let cells =
        experiments::defense_matrix(scn, model, &map, matrix_workers()).expect("matrix completes");
    if emit_json("defense", &cells) {
        return;
    }
    let mut t = TextTable::new([
        "deployment",
        "attack",
        "exploit succeeded",
        "faulty events",
        "detections",
        "benign DVFS kept",
    ]);
    for c in &cells {
        t.row([
            c.deployment.clone(),
            c.attack.clone(),
            if c.success { "YES (broken)" } else { "no" }.to_owned(),
            c.faulty_events.to_string(),
            c.detections.to_string(),
            if c.benign_dvfs_preserved { "yes" } else { "NO" }.to_owned(),
        ]);
    }
    print!("{}", t.render());
}

fn levels(scn: &Scenario) {
    banner("Deployment levels (§5): turnaround / exposure under a -250 mV attack write");
    let model = CpuModel::CometLake;
    let map = quick_map(model);
    let rows = experiments::deployment_levels(scn, model, &map, matrix_workers())
        .expect("levels complete");
    if emit_json("levels", &rows) {
        return;
    }
    let mut t = TextTable::new([
        "deployment",
        "neutralize latency",
        "max effective undervolt (mV)",
        "ever in unsafe state",
        "victim faults in 5 ms",
    ]);
    for r in &rows {
        t.row([
            r.deployment.clone(),
            r.neutralize_latency
                .map_or("never".into(), |d| d.to_string()),
            format!("{:.1}", r.max_effective_undervolt_mv),
            r.ever_unsafe.to_string(),
            r.victim_faults.to_string(),
        ]);
    }
    print!("{}", t.render());
}

fn stepping(scn: &Scenario) {
    banner("Threat model (§4.1): stepping adversaries vs deflection vs polling");
    let model = CpuModel::CometLake;
    let map = quick_map(model);
    let rows = experiments::stepping_experiment(scn, model, &map).expect("experiment completes");
    if emit_json("stepping", &rows) {
        return;
    }
    let mut t = TextTable::new([
        "defense",
        "adversary stepping",
        "exploit succeeded",
        "trap fired",
    ]);
    for r in &rows {
        t.row([
            r.defense.clone(),
            r.stepping.clone(),
            if r.exploit_succeeded {
                "YES (broken)"
            } else {
                "no"
            }
            .to_owned(),
            r.trap_fired.to_string(),
        ]);
    }
    print!("{}", t.render());
}

fn interval(scn: &Scenario) {
    banner("Ablation: polling period vs overhead vs turnaround (Comet Lake @ f_max)");
    let model = CpuModel::CometLake;
    let map = quick_map(model);
    let rows =
        experiments::interval_sweep(scn, model, &map, matrix_workers()).expect("sweep completes");
    if emit_json("interval", &rows) {
        return;
    }
    let mut t = TextTable::new(["period", "overhead %", "detect latency", "rail ever moved"]);
    for r in &rows {
        t.row([
            r.period.to_string(),
            format!("{:.3}", r.overhead_pct),
            r.detect_latency.map_or("-".into(), |d| d.to_string()),
            r.rail_moved.to_string(),
        ]);
    }
    print!("{}", t.render());
    println!("\n(the VR command latency is 800us: any period comfortably below it");
    println!(" neutralizes the write before the rail moves at all)");
}

fn planes(scn: &Scenario) {
    banner("Ablation: voltage planes watched by the polling module (Comet Lake)");
    let model = CpuModel::CometLake;
    let map = quick_map(model);
    let rows = experiments::plane_ablation(scn, model, &map).expect("ablation completes");
    if emit_json("planes", &rows) {
        return;
    }
    let mut t = TextTable::new([
        "planes polled",
        "idle overhead %",
        "core-plane attack",
        "cache-plane attack",
    ]);
    for r in &rows {
        t.row([
            r.planes.clone(),
            format!("{:.3}", r.overhead_pct),
            if r.core_attack_succeeded {
                "BROKEN"
            } else {
                "blocked"
            }
            .to_owned(),
            if r.cache_attack_succeeded {
                "BROKEN"
            } else {
                "blocked"
            }
            .to_owned(),
        ]);
    }
    print!("{}", t.render());
    println!(
        "
(Algorithm 3 as written reads the mailbox response register once per"
    );
    println!(" core; explicit per-plane read commands close the cache plane at the");
    println!(" cost of two extra MSR accesses per plane per core per tick)");
}

fn energy(scn: &Scenario) {
    banner("Energy: what denying benign undervolting costs (Comet Lake, RAPL)");
    let model = CpuModel::CometLake;
    let map = quick_map(model);
    let rows = experiments::energy_ablation(scn, model, &map).expect("ablation completes");
    if emit_json("energy", &rows) {
        return;
    }
    let mut t = TextTable::new([
        "configuration",
        "avg power (W)",
        "energy/500ms (J)",
        "savings",
    ]);
    for r in &rows {
        t.row([
            r.config.clone(),
            format!("{:.2}", r.avg_power_w),
            format!("{:.3}", r.joules),
            format!("{:.1}%", r.savings_pct),
        ]);
    }
    print!("{}", t.render());
    println!(
        "
(the paper's countermeasure keeps this saving available while SGX"
    );
    println!(" runs; Intel's access-control fix forfeits it)");
}

fn units(scn: &Scenario) {
    banner("Die-to-die variation: per-unit vs per-generation safe bounds (Comet Lake)");
    let study =
        experiments::unit_variation_study(scn, CpuModel::CometLake, 8).expect("study completes");
    if emit_json("units", &study) {
        return;
    }
    let mut t = TextTable::new(["unit", "own maximal safe state (mV)", "onset @ f_max (mV)"]);
    for r in &study.rows {
        t.row([
            r.unit.to_string(),
            r.own_mss_mv.to_string(),
            r.onset_at_fmax_mv.map_or("-".into(), |o| o.to_string()),
        ]);
    }
    print!("{}", t.render());
    println!(
        "
generation-wide bound (worst unit): {} mV",
        study.generation_mss_mv
    );
    println!(
        "mean benign headroom forfeited vs per-unit maps: {:.1} mV",
        study.mean_headroom_lost_mv
    );
    println!(
        "generation map protects every unit: {}",
        study.generation_map_protects_all
    );
    println!(
        "
(the Sec. 5 hardware deployments must fuse the generation bound;"
    );
    println!(" the kernel-module level can use each unit's own map)");
}

fn attest(scn: &Scenario) {
    banner("Attestation policies (§4.1)");
    let model = CpuModel::CometLake;
    let map = quick_map(model);
    let rows = experiments::attestation_matrix(scn, model, &map).expect("matrix completes");
    if emit_json("attest", &rows) {
        return;
    }
    let mut t = TextTable::new([
        "configuration",
        "paper verifier accepts",
        "Intel verifier accepts",
        "benign DVFS works",
    ]);
    for r in &rows {
        t.row([
            r.config.clone(),
            r.plugvolt_ok.to_string(),
            r.intel_ok.to_string(),
            r.benign_dvfs.to_string(),
        ]);
    }
    print!("{}", t.render());
}
