//! The Table 2 harness: polling-countermeasure overhead on the suite.
//!
//! For every benchmark the harness measures base and peak rates on a
//! clean machine and on an identical machine with the polling module
//! loaded, and reports the per-benchmark slowdown plus the suite mean —
//! the paper's headline 0.28 % figure.
//!
//! Sign convention: `slowdown_pct = (rate_without − rate_with) /
//! rate_without × 100`, i.e. **positive = the module costs
//! performance**. (The paper prints the same quantity with a leading
//! minus sign; magnitudes are comparable.)

use crate::rate::{run_rate, RateScore};
use crate::suite::{Benchmark, Tuning, SUITE};
use plugvolt::characterize::analytic_map;
use plugvolt::charmap::CharacterizationMap;
use plugvolt::poll::{PollConfig, PollingModule};
use plugvolt_cpu::model::CpuModel;
use plugvolt_kernel::machine::{Machine, MachineError};
use plugvolt_telemetry::Sink;
use serde::{Deserialize, Serialize};

/// Harness configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverheadConfig {
    /// CPU model to run on (the paper uses Comet Lake).
    pub model: CpuModel,
    /// Run seed.
    pub seed: u64,
    /// Polling configuration under test.
    pub poll: PollConfig,
    /// Work divisor (1 = full reference runs; tests use 100+).
    pub work_divisor: u64,
}

impl Default for OverheadConfig {
    fn default() -> Self {
        OverheadConfig {
            model: CpuModel::CometLake,
            seed: 2024,
            poll: PollConfig::default(),
            work_divisor: 1,
        }
    }
}

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Benchmark name.
    pub name: String,
    /// Base rate without polling.
    pub base_without: f64,
    /// Base rate with polling.
    pub base_with: f64,
    /// Base slowdown in percent (positive = module costs performance).
    pub base_slowdown_pct: f64,
    /// Peak rate without polling.
    pub peak_without: f64,
    /// Peak rate with polling.
    pub peak_with: f64,
    /// Peak slowdown in percent.
    pub peak_slowdown_pct: f64,
}

/// The full Table 2 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2 {
    /// Per-benchmark rows.
    pub rows: Vec<Table2Row>,
    /// Mean base slowdown (percent).
    pub mean_base_slowdown_pct: f64,
    /// Mean peak slowdown (percent).
    pub mean_peak_slowdown_pct: f64,
    /// Mean of |slowdown| across base and peak — the paper's "0.28 %".
    pub mean_abs_slowdown_pct: f64,
}

fn slowdown_pct(without: f64, with: f64) -> f64 {
    (without - with) / without * 100.0
}

fn scaled(bench: &Benchmark, divisor: u64) -> Benchmark {
    Benchmark {
        instructions: (bench.instructions / divisor.max(1)).max(1_000_000),
        ..*bench
    }
}

/// Measures one benchmark's four rates (base/peak × without/with).
///
/// # Errors
///
/// Propagates machine errors.
pub fn measure_benchmark(
    bench: &Benchmark,
    cfg: &OverheadConfig,
    map: &CharacterizationMap,
) -> Result<Table2Row, MachineError> {
    measure_benchmark_with(bench, cfg, map, None)
}

/// [`measure_benchmark`] with an optional telemetry sink shared by the
/// four machines it boots (base/peak × without/with polling).
///
/// # Errors
///
/// Propagates machine errors.
pub fn measure_benchmark_with(
    bench: &Benchmark,
    cfg: &OverheadConfig,
    map: &CharacterizationMap,
    telemetry: Option<&Sink>,
) -> Result<Table2Row, MachineError> {
    let b = scaled(bench, cfg.work_divisor);
    let rates = |with_polling: bool, tuning: Tuning| -> Result<RateScore, MachineError> {
        // Each of the four measurements is an independent "run" with its
        // own measurement noise, like four separate SPEC invocations.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in bench.name.bytes() {
            h = (h ^ u64::from(byte)).wrapping_mul(0x100_0000_01b3);
        }
        h ^= u64::from(with_polling) << 1 | u64::from(tuning == Tuning::Peak);
        // workloads sits below bench in the dependency graph, so the
        // Scenario layer is out of reach here; the caller supplies the
        // root seed and this FNV mix plays the role of a labelled
        // derivation (one stream per benchmark × configuration).
        // plugvolt-lint: allow(machine-construction-discipline)
        let mut machine = Machine::new(cfg.model, cfg.seed ^ h);
        if let Some(sink) = telemetry {
            machine.set_telemetry(sink.clone());
        }
        if with_polling {
            let (module, _stats) = PollingModule::new(map.clone(), cfg.poll.clone());
            machine.load_module(Box::new(module))?;
        }
        let score = run_rate(&mut machine, &b, tuning);
        if telemetry.is_some() {
            machine.publish_trace_drops();
        }
        score
    };
    let base_without = rates(false, Tuning::Base)?.score;
    let base_with = rates(true, Tuning::Base)?.score;
    let peak_without = rates(false, Tuning::Peak)?.score;
    let peak_with = rates(true, Tuning::Peak)?.score;
    Ok(Table2Row {
        name: bench.name.to_owned(),
        base_without,
        base_with,
        base_slowdown_pct: slowdown_pct(base_without, base_with),
        peak_without,
        peak_with,
        peak_slowdown_pct: slowdown_pct(peak_without, peak_with),
    })
}

/// Runs the whole Table 2 reproduction.
///
/// # Errors
///
/// Propagates machine errors.
pub fn run_table2(cfg: &OverheadConfig) -> Result<Table2, MachineError> {
    run_table2_with(cfg, None)
}

/// [`run_table2`] with an optional telemetry sink shared across the
/// whole suite (every machine of every benchmark records into it).
///
/// # Errors
///
/// Propagates machine errors.
pub fn run_table2_with(
    cfg: &OverheadConfig,
    telemetry: Option<&Sink>,
) -> Result<Table2, MachineError> {
    let map = analytic_map(&cfg.model.spec());
    let mut rows = Vec::with_capacity(SUITE.len());
    for bench in &SUITE {
        rows.push(measure_benchmark_with(bench, cfg, &map, telemetry)?);
    }
    let n = rows.len() as f64;
    let mean_base = rows.iter().map(|r| r.base_slowdown_pct).sum::<f64>() / n;
    let mean_peak = rows.iter().map(|r| r.peak_slowdown_pct).sum::<f64>() / n;
    let mean_abs = rows
        .iter()
        .flat_map(|r| [r.base_slowdown_pct, r.peak_slowdown_pct])
        .map(f64::abs)
        .sum::<f64>()
        / (2.0 * n);
    Ok(Table2 {
        rows,
        mean_base_slowdown_pct: mean_base,
        mean_peak_slowdown_pct: mean_peak,
        mean_abs_slowdown_pct: mean_abs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::find;

    fn cfg() -> OverheadConfig {
        OverheadConfig {
            work_divisor: 200,
            ..OverheadConfig::default()
        }
    }

    #[test]
    fn single_benchmark_overhead_is_small_and_real() {
        let c = cfg();
        let map = analytic_map(&c.model.spec());
        let row = measure_benchmark(find("bwaves").unwrap(), &c, &map).unwrap();
        // Rates are in the anchor's neighbourhood.
        assert!((row.base_without - 628.59).abs() / 628.59 < 0.01);
        // Slowdown within noise ± real overhead: |x| < 1.5 %.
        assert!(row.base_slowdown_pct.abs() < 1.5, "{row:?}");
        assert!(row.peak_slowdown_pct.abs() < 1.5, "{row:?}");
    }

    #[test]
    fn polling_costs_rate_on_average() {
        // Individual rows jitter, but the suite mean must be positive
        // (the module really steals cycles) and well under 1 %.
        let table = run_table2(&cfg()).unwrap();
        assert_eq!(table.rows.len(), 23);
        assert!(
            table.mean_base_slowdown_pct > 0.0,
            "mean base {}",
            table.mean_base_slowdown_pct
        );
        assert!(
            table.mean_base_slowdown_pct < 1.0,
            "mean base {}",
            table.mean_base_slowdown_pct
        );
        // The paper's headline: ≈ 0.28 %. Accept the right regime.
        assert!(
            (0.05..0.8).contains(&table.mean_abs_slowdown_pct),
            "mean abs {}",
            table.mean_abs_slowdown_pct
        );
    }

    #[test]
    fn slowdown_sign_convention() {
        assert!(slowdown_pct(100.0, 99.0) > 0.0);
        assert!(slowdown_pct(100.0, 101.0) < 0.0);
    }
}
