//! # plugvolt-workloads
//!
//! The SPEC CPU2017-like workload suite and the Table 2 overhead harness
//! of the *Plug Your Volt* (DAC 2024) reproduction.
//!
//! SPEC CPU2017 is proprietary, so [`suite`] ships 23 synthetic
//! benchmarks with the paper's names, fp/int split, per-benchmark
//! instruction mixes and the paper's without-polling rates as
//! calibration anchors. [`rate`] measures SPEC-style rate scores on the
//! simulated machine; [`overhead`] regenerates Table 2 (with/without
//! the polling countermeasure, base and peak tunings).
//!
//! # Examples
//!
//! ```no_run
//! use plugvolt_workloads::overhead::{run_table2, OverheadConfig};
//!
//! let table = run_table2(&OverheadConfig::default())?;
//! println!("mean overhead: {:.2}%", table.mean_abs_slowdown_pct);
//! # Ok::<(), plugvolt_kernel::machine::MachineError>(())
//! ```

#![warn(missing_docs)]

pub mod overhead;
pub mod rate;
pub mod suite;

/// Convenient glob-import of the commonly used names.
pub mod prelude {
    pub use crate::overhead::{measure_benchmark, run_table2, OverheadConfig, Table2, Table2Row};
    pub use crate::rate::{nominal_copy_time, reference_time, run_rate, RateScore};
    pub use crate::suite::{find, Benchmark, Category, Tuning, SUITE};
}
