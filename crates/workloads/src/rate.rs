//! SPEC-style rate measurement on the simulated machine.
//!
//! A *rate* run launches one copy of a benchmark per core and scores
//! `copies × reference_time / elapsed`. Reference times are calibrated
//! (see [`crate::suite`]) so the unloaded Comet Lake reproduces the
//! paper's Table 2 anchors; any kernel-module overhead then shows up as
//! a (small) rate drop, exactly as it did on the authors' bench. A
//! seeded ±0.4 % measurement jitter models SPEC run-to-run variance.

use crate::suite::{Benchmark, Tuning};
use plugvolt_cpu::core::CoreId;
use plugvolt_cpu::freq::FreqMhz;
use plugvolt_des::time::SimDuration;
use plugvolt_kernel::machine::{Machine, MachineError};
use serde::{Deserialize, Serialize};

/// Relative half-width of the measurement jitter (run-to-run variance).
pub const JITTER: f64 = 0.004;

/// Result of one rate run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateScore {
    /// Benchmark name.
    pub name: String,
    /// Tuning used.
    pub tuning: Tuning,
    /// The SPEC-style rate score.
    pub score: f64,
    /// Copies run (= cores used).
    pub copies: usize,
    /// Longest per-copy wall time.
    pub elapsed: SimDuration,
    /// Fraction of wall time stolen by kernel modules.
    pub stolen_fraction: f64,
    /// Faulted instructions observed (must be 0 on a healthy machine).
    pub faults: u64,
}

/// Analytic per-copy compute time for a benchmark at `freq` (no module
/// overhead, no jitter) — the calibration baseline.
#[must_use]
pub fn nominal_copy_time(bench: &Benchmark, tuning: Tuning, freq: FreqMhz) -> SimDuration {
    let total = bench.instructions_for(tuning);
    let weight_sum: u64 = bench.mix.iter().map(|&(_, w)| u64::from(w)).sum();
    let mut t = SimDuration::ZERO;
    for &(class, w) in bench.mix {
        let n = total * u64::from(w) / weight_sum;
        t += SimDuration::from_cycles((n as f64 * class.cpi()).ceil() as u64, freq.mhz());
    }
    t
}

/// The calibrated reference time: chosen so `copies × ref / nominal_time`
/// equals the paper's anchor rate on an unloaded machine.
#[must_use]
pub fn reference_time(bench: &Benchmark, tuning: Tuning, freq: FreqMhz, copies: usize) -> f64 {
    bench.paper_rate(tuning) * nominal_copy_time(bench, tuning, freq).as_secs_f64() / copies as f64
}

/// Runs one rate measurement: one copy per core, all cores.
///
/// # Errors
///
/// Propagates machine errors (a crashed package fails the run).
pub fn run_rate(
    machine: &mut Machine,
    bench: &Benchmark,
    tuning: Tuning,
) -> Result<RateScore, MachineError> {
    let copies = machine.cpu().core_count();
    let freq = machine.cpu().core_freq(CoreId(0))?;
    let total = bench.instructions_for(tuning);
    let weight_sum: u64 = bench.mix.iter().map(|&(_, w)| u64::from(w)).sum();

    let mut worst = SimDuration::ZERO;
    let mut stolen_total = SimDuration::ZERO;
    let mut wall_total = SimDuration::ZERO;
    let mut faults = 0u64;
    for c in 0..copies {
        let core = CoreId(c);
        let mut copy_wall = SimDuration::ZERO;
        for &(class, w) in bench.mix {
            let n = total * u64::from(w) / weight_sum;
            let run = machine.run_workload(core, class, n)?;
            copy_wall += run.wall;
            stolen_total += run.stolen;
            wall_total += run.wall;
            faults += run.faults;
        }
        worst = worst.max(copy_wall);
    }

    // Run-to-run measurement noise (seeded, deterministic).
    let jitter = 1.0 + JITTER * (2.0 * machine.rng().next_f64() - 1.0);
    let ref_time = reference_time(bench, tuning, freq, copies);
    let score = copies as f64 * ref_time / worst.as_secs_f64() * jitter;

    Ok(RateScore {
        name: bench.name.to_owned(),
        tuning,
        score,
        copies,
        elapsed: worst,
        stolen_fraction: if wall_total.is_zero() {
            0.0
        } else {
            stolen_total.as_picos() as f64 / wall_total.as_picos() as f64
        },
        faults,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::find;
    use plugvolt_cpu::model::CpuModel;

    fn small(bench: &Benchmark) -> Benchmark {
        // Shrink the work 100× so unit tests stay fast; rates are
        // work-invariant because the reference scales along.
        Benchmark {
            instructions: bench.instructions / 100,
            ..*bench
        }
    }

    #[test]
    fn unloaded_machine_reproduces_anchor_rate() {
        let mut m = Machine::new(CpuModel::CometLake, 3);
        let b = small(find("bwaves").unwrap());
        let r = run_rate(&mut m, &b, Tuning::Base).unwrap();
        let rel = (r.score - b.paper_base_rate).abs() / b.paper_base_rate;
        assert!(
            rel < 0.006,
            "score {} vs anchor {}",
            r.score,
            b.paper_base_rate
        );
        assert_eq!(r.faults, 0);
        assert_eq!(r.stolen_fraction, 0.0);
        assert_eq!(r.copies, 4);
    }

    #[test]
    fn peak_tuning_reproduces_peak_anchor() {
        let mut m = Machine::new(CpuModel::CometLake, 3);
        let b = small(find("namd").unwrap());
        let r = run_rate(&mut m, &b, Tuning::Peak).unwrap();
        let rel = (r.score - b.paper_peak_rate).abs() / b.paper_peak_rate;
        assert!(
            rel < 0.006,
            "score {} vs anchor {}",
            r.score,
            b.paper_peak_rate
        );
    }

    #[test]
    fn jitter_varies_between_runs_but_is_seeded() {
        let b = small(find("xz").unwrap());
        let score = |seed| {
            let mut m = Machine::new(CpuModel::CometLake, seed);
            run_rate(&mut m, &b, Tuning::Base).unwrap().score
        };
        assert_ne!(score(1), score(2), "different seeds, different jitter");
        assert_eq!(score(1), score(1), "same seed, same score");
    }

    #[test]
    fn nominal_time_scales_with_frequency() {
        let b = find("gcc").unwrap();
        let slow = nominal_copy_time(b, Tuning::Base, FreqMhz(1_000));
        let fast = nominal_copy_time(b, Tuning::Base, FreqMhz(2_000));
        assert!(slow.as_picos() > fast.as_picos() * 19 / 10);
    }

    #[test]
    fn reference_time_is_positive_for_all_benchmarks() {
        for b in &crate::suite::SUITE {
            for tuning in [Tuning::Base, Tuning::Peak] {
                let r = reference_time(b, tuning, FreqMhz(1_800), 4);
                assert!(r > 0.0, "{} {tuning:?}", b.name);
            }
        }
    }
}
